"""Noise-aware comparison semantics of ``repro.bench.compare``."""

from __future__ import annotations

from repro.bench.compare import compare_reports, speedup_summary
from repro.bench.results import BenchReport, ScenarioRecord

import pytest


def record(name: str, wall_s: list[float], **kwargs) -> ScenarioRecord:
    return ScenarioRecord(
        name=name,
        description=f"{name} scenario",
        scale="custom",
        seed=0,
        warmup=1,
        repeat=len(wall_s),
        wall_s=wall_s,
        cpu_s=list(wall_s),
        **kwargs,
    )


def report(label: str, *records: ScenarioRecord) -> BenchReport:
    return BenchReport(label=label, scenarios={r.name: r for r in records})


class TestVerdicts:
    def test_identical_runs_pass(self):
        base = report("base", record("a", [1.0, 1.0, 1.0]))
        result = compare_reports(base, report("cand", record("a", [1.0, 1.0, 1.0])))
        assert result.ok
        assert result.rows[0].status == "ok"

    def test_injected_slowdown_regresses(self):
        base = report("base", record("a", [1.0, 1.0, 1.0]))
        slow = report("cand", record("a", [1.5, 1.5, 1.5]))
        result = compare_reports(base, slow, threshold=0.10)
        assert not result.ok
        assert result.rows[0].status == "regressed"

    def test_speedup_reported_as_faster(self):
        base = report("base", record("a", [1.0, 1.0, 1.0]))
        fast = report("cand", record("a", [0.5, 0.5, 0.5]))
        result = compare_reports(base, fast)
        assert result.ok
        assert result.rows[0].status == "faster"

    def test_regression_exactly_at_threshold_passes(self):
        # The bound is strict: candidate == baseline * (1 + threshold)
        # does NOT regress.  Identical samples keep cv = 0 so the
        # effective threshold is exactly the configured one.
        base = report("base", record("a", [1.0, 1.0, 1.0]))
        at_bound = report("cand", record("a", [1.1, 1.1, 1.1]))
        result = compare_reports(base, at_bound, threshold=0.10, noise_factor=0.0)
        assert result.ok, result.format_table()
        assert result.rows[0].status == "ok"

    def test_just_over_threshold_fails(self):
        base = report("base", record("a", [1.0, 1.0, 1.0]))
        over = report("cand", record("a", [1.100001, 1.100001, 1.100001]))
        result = compare_reports(base, over, threshold=0.10, noise_factor=0.0)
        assert not result.ok

    def test_missing_scenario_fails(self):
        base = report("base", record("a", [1.0]), record("b", [1.0]))
        cand = report("cand", record("a", [1.0]))
        result = compare_reports(base, cand)
        assert not result.ok
        assert [r.name for r in result.missing] == ["b"]
        assert "MISSING" in result.format_table()

    def test_added_scenario_is_informational(self):
        base = report("base", record("a", [1.0]))
        cand = report("cand", record("a", [1.0]), record("new", [2.0]))
        result = compare_reports(base, cand)
        assert result.ok
        added = next(r for r in result.rows if r.name == "new")
        assert added.status == "added"
        assert "added" in result.format_table()


class TestNoiseAwareness:
    def test_noisy_scenario_earns_wider_band(self):
        # cv ~ 26% with these samples; noise_factor 3 widens the band far
        # past the 50% slowdown that a quiet scenario would flag.
        base = report("base", record("a", [1.0, 1.5, 2.0]))
        cand = report("cand", record("a", [1.5, 2.0, 2.5]))
        strict = compare_reports(base, cand, threshold=0.10, noise_factor=0.0)
        lenient = compare_reports(base, cand, threshold=0.10, noise_factor=3.0)
        assert not strict.ok
        assert lenient.ok

    def test_negative_threshold_rejected(self):
        base = report("base", record("a", [1.0]))
        with pytest.raises(ValueError):
            compare_reports(base, base, threshold=-0.1)
        with pytest.raises(ValueError):
            compare_reports(base, base, noise_factor=-1.0)


class TestSummaries:
    def test_speedup_summary_shared_scenarios_only(self):
        base = report("base", record("a", [2.0]), record("b", [1.0]))
        cand = report("cand", record("a", [1.0]), record("c", [1.0]))
        assert speedup_summary(base, cand) == {"a": 2.0}

    def test_format_table_verdict_line(self):
        base = report("base", record("a", [1.0]))
        ok = compare_reports(base, base)
        assert ok.format_table().endswith("bench compare: PASS")
        bad = compare_reports(base, report("cand", record("a", [9.0])))
        assert "FAIL" in bad.format_table().splitlines()[-1]
