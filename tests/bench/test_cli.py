"""Exit codes and file handling of ``biggerfish bench``."""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main
from repro.bench.results import SCHEMA_VERSION, BenchFormatError, BenchReport, ScenarioRecord


def write_report(tmp_path, label: str, wall_by_name: dict[str, list[float]]):
    report = BenchReport(
        label=label,
        scenarios={
            name: ScenarioRecord(
                name=name,
                description="",
                scale="custom",
                seed=0,
                warmup=0,
                repeat=len(wall),
                wall_s=wall,
                cpu_s=list(wall),
            )
            for name, wall in wall_by_name.items()
        },
    )
    return report.write(tmp_path)


class TestCompareExitCodes:
    def test_identical_reports_pass(self, tmp_path, capsys):
        base = write_report(tmp_path, "base", {"a": [1.0, 1.0]})
        cand = write_report(tmp_path, "cand", {"a": [1.0, 1.0]})
        assert main(["--compare", str(base), "--against", str(cand)]) == 0
        assert "bench compare: PASS" in capsys.readouterr().out

    def test_injected_slowdown_exits_one(self, tmp_path, capsys):
        base = write_report(tmp_path, "base", {"a": [1.0, 1.0]})
        cand = write_report(tmp_path, "cand", {"a": [2.0, 2.0]})
        assert main(["--compare", str(base), "--against", str(cand)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_scenario_exits_one(self, tmp_path, capsys):
        base = write_report(tmp_path, "base", {"a": [1.0], "b": [1.0]})
        cand = write_report(tmp_path, "cand", {"a": [1.0]})
        assert main(["--compare", str(base), "--against", str(cand)]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_exactly_at_threshold_exits_zero(self, tmp_path):
        base = write_report(tmp_path, "base", {"a": [1.0, 1.0]})
        cand = write_report(tmp_path, "cand", {"a": [1.1, 1.1]})
        argv = ["--compare", str(base), "--against", str(cand)]
        assert main(argv + ["--threshold", "0.10", "--noise-factor", "0"]) == 0


class TestFormatErrors:
    def test_nonexistent_baseline_exits_two(self, tmp_path, capsys):
        cand = write_report(tmp_path, "cand", {"a": [1.0]})
        code = main(["--compare", str(tmp_path / "nope.json"), "--against", str(cand)])
        assert code == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_malformed_json_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bench_bad.json"
        bad.write_text("{ not json")
        cand = write_report(tmp_path, "cand", {"a": [1.0]})
        assert main(["--compare", str(bad), "--against", str(cand)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_old_schema_exits_two(self, tmp_path, capsys):
        base = write_report(tmp_path, "base", {"a": [1.0]})
        data = json.loads(base.read_text())
        data["schema"] = SCHEMA_VERSION - 1
        base.write_text(json.dumps(data))
        cand = write_report(tmp_path, "cand", {"a": [1.0]})
        assert main(["--compare", str(base), "--against", str(cand)]) == 2
        err = capsys.readouterr().err
        assert "schema version" in err
        assert "re-record" in err

    def test_empty_scenarios_rejected(self, tmp_path):
        empty = tmp_path / "bench_empty.json"
        empty.write_text(json.dumps({"schema": SCHEMA_VERSION, "scenarios": {}}))
        with pytest.raises(BenchFormatError, match="no scenarios"):
            BenchReport.load(empty)

    def test_scenario_without_samples_rejected(self, tmp_path):
        broken = tmp_path / "bench_broken.json"
        broken.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "scenarios": {"a": {"name": "a", "wall_s": [], "cpu_s": []}},
                }
            )
        )
        with pytest.raises(BenchFormatError, match="wall_s"):
            BenchReport.load(broken)


class TestUsage:
    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["definitely.not.a.scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_against_requires_compare(self, capsys):
        assert main(["--against", "whatever.json"]) == 2
        assert "--against requires --compare" in capsys.readouterr().err

    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "sim.synthesize" in out
        assert "ml.features" in out
        assert "e2e.table1_smoke" in out

    def test_invalid_repeat_exits_two(self, capsys):
        assert main(["--repeat", "0", "ml.features"]) == 2
        assert capsys.readouterr().err


class TestRunnerDispatch:
    def test_biggerfish_bench_dispatches(self, capsys):
        from repro.experiments.runner import main as runner_main

        assert runner_main(["bench", "--list"]) == 0
        assert "sim.synthesize" in capsys.readouterr().out


class TestSmokeRun:
    def test_ml_features_runs_and_saves(self, tmp_path, capsys):
        code = main(
            [
                "ml.features",
                "--repeat",
                "2",
                "--warmup",
                "0",
                "--no-obs",
                "--label",
                "smoke",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        path = tmp_path / "bench_smoke.json"
        assert path.exists()
        report = BenchReport.load(path)
        record = report.scenarios["ml.features"]
        assert len(record.wall_s) == 2
        assert record.best_s > 0
        assert record.meta  # scenarios report what they measured
