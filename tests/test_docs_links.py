"""Tier-1 gate: every markdown link in the shipped docs resolves.

Runs ``tools/check_links.py`` in-process over its default file set
(``README.md`` + ``docs/*.md``) so a broken relative link or dangling
anchor fails the test suite, not just the CI docs job.  The unit tests
below pin the slugification rules the checker relies on.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_links", REPO_ROOT / "tools" / "check_links.py"
)
check_links = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_links)


class TestSlugification:
    def test_plain_heading(self):
        assert check_links.github_slug("Streaming reads", {}) == "streaming-reads"

    def test_punctuation_and_code(self):
        seen = {}
        slug = check_links.github_slug(
            "Sharded dataset stores (`repro.data`)", seen
        )
        assert slug == "sharded-dataset-stores-reprodata"

    def test_duplicate_headings_get_suffixes(self):
        seen = {}
        assert check_links.github_slug("Setup", seen) == "setup"
        assert check_links.github_slug("Setup", seen) == "setup-1"
        assert check_links.github_slug("Setup", seen) == "setup-2"


class TestChecker:
    def test_broken_link_detected(self, tmp_path, monkeypatch):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](no-such-file.md)\n", encoding="utf-8")
        monkeypatch.setattr(check_links, "REPO_ROOT", tmp_path)
        problems = check_links.check_file(doc, {})
        assert len(problems) == 1
        assert "no-such-file.md" in problems[0]

    def test_bad_anchor_detected(self, tmp_path, monkeypatch):
        target = tmp_path / "target.md"
        target.write_text("# Real heading\n", encoding="utf-8")
        doc = tmp_path / "doc.md"
        doc.write_text("see [x](target.md#wrong-anchor)\n", encoding="utf-8")
        monkeypatch.setattr(check_links, "REPO_ROOT", tmp_path)
        problems = check_links.check_file(doc, {})
        assert len(problems) == 1
        assert "wrong-anchor" in problems[0]

    def test_good_anchor_and_fenced_examples_pass(self, tmp_path, monkeypatch):
        target = tmp_path / "target.md"
        target.write_text("# Real heading\n", encoding="utf-8")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "see [x](target.md#real-heading)\n"
            "```\n[not a link](fenced-away.md)\n```\n"
            "and `[inline](code-span.md)` too\n",
            encoding="utf-8",
        )
        monkeypatch.setattr(check_links, "REPO_ROOT", tmp_path)
        assert check_links.check_file(doc, {}) == []

    def test_external_links_skipped(self, tmp_path, monkeypatch):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[a](https://example.com/x) [b](mailto:x@example.com)\n",
            encoding="utf-8",
        )
        monkeypatch.setattr(check_links, "REPO_ROOT", tmp_path)
        assert check_links.check_file(doc, {}) == []


def test_repo_docs_have_no_broken_links(capsys):
    """The actual gate: README.md and every docs/*.md file is clean."""
    status = check_links.main([])
    out = capsys.readouterr().out
    assert status == 0, f"broken documentation links:\n{out}"


def test_checker_rejects_missing_file():
    assert check_links.main([str(REPO_ROOT / "does-not-exist.md")]) == 2


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
