"""Tests for the shard on-disk format (repro.data.format)."""

import zipfile

import numpy as np
import pytest

from repro.data.format import (
    LABELS_MEMBER,
    META_MEMBER,
    X_MEMBER,
    ShardFormatError,
    open_x_mmap,
    read_labels,
    read_meta,
    shard_checksum,
    write_shard,
)


def make_shard(path, n_rows=6, length=10, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n_rows, length))
    labels = [f"site{i % 3}.com" for i in range(n_rows)]
    meta = {"seed": seed, "note": "test"}
    info = write_shard(path, x, labels, meta)
    return x, labels, meta, info


class TestWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "shard.npz"
        x, labels, meta, info = make_shard(path)
        assert info.n_rows == 6
        assert info.n_bytes == path.stat().st_size
        assert read_meta(path) == meta
        np.testing.assert_array_equal(read_labels(path), np.array(labels))
        np.testing.assert_array_equal(np.asarray(open_x_mmap(path)), x)

    def test_checksum_covers_file_bytes(self, tmp_path):
        path = tmp_path / "shard.npz"
        _, _, _, info = make_shard(path)
        assert shard_checksum(path) == info.sha256

    def test_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        make_shard(a, seed=5)
        make_shard(b, seed=5)
        assert a.read_bytes() == b.read_bytes()

    def test_rejects_empty_and_misshapen(self, tmp_path):
        path = tmp_path / "bad.npz"
        with pytest.raises(ShardFormatError):
            write_shard(path, np.empty((0, 4)), [], {})
        with pytest.raises(ShardFormatError):
            write_shard(path, np.ones(4), ["a"] * 4, {})
        with pytest.raises(ShardFormatError):
            write_shard(path, np.ones((2, 4)), ["a"], {})

    def test_readable_by_plain_numpy(self, tmp_path):
        path = tmp_path / "shard.npz"
        x, labels, _, _ = make_shard(path)
        with np.load(path, allow_pickle=False) as archive:
            np.testing.assert_array_equal(archive["x"], x)
            assert [str(l) for l in archive["labels"]] == labels


class TestMmap:
    def test_zero_copy_handle(self, tmp_path):
        path = tmp_path / "shard.npz"
        x, _, _, _ = make_shard(path, n_rows=8, length=32)
        mapped = open_x_mmap(path)
        assert isinstance(mapped, np.memmap)
        np.testing.assert_array_equal(np.asarray(mapped), x)

    def test_x_member_is_stored_uncompressed(self, tmp_path):
        path = tmp_path / "shard.npz"
        make_shard(path)
        with zipfile.ZipFile(path) as archive:
            assert archive.getinfo(X_MEMBER).compress_type == zipfile.ZIP_STORED
            assert archive.getinfo(LABELS_MEMBER).compress_type == zipfile.ZIP_DEFLATED
            assert archive.getinfo(META_MEMBER).compress_type == zipfile.ZIP_DEFLATED

    def test_fallback_on_compressed_x(self, tmp_path):
        # A schema-compatible shard from a foreign writer that compressed
        # x.npy must still read, just without the zero-copy path.
        path = tmp_path / "foreign.npz"
        rng = np.random.default_rng(1)
        x = rng.random((3, 5))
        np.savez_compressed(
            path, **{X_MEMBER[:-4]: x}
        )  # np.savez appends .npy to member names
        loaded = open_x_mmap(path)
        assert not isinstance(loaded, np.memmap)
        np.testing.assert_array_equal(loaded, x)

    def test_missing_member(self, tmp_path):
        path = tmp_path / "hollow.npz"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("other.npy", b"not traces")
        with pytest.raises(ShardFormatError):
            open_x_mmap(path)
        with pytest.raises(ShardFormatError):
            read_labels(path)
        with pytest.raises(ShardFormatError):
            read_meta(path)

    def test_labels_read_without_touching_x(self, tmp_path):
        # Truncate the file through the middle of x.npy: labels/meta live
        # after it in the archive, so this is only provable structurally —
        # corrupt x payload bytes, keep the directory, and read labels.
        path = tmp_path / "shard.npz"
        x, labels, meta, _ = make_shard(path, n_rows=64, length=256)
        blob = bytearray(path.read_bytes())
        # Scribble over the middle of the stored x payload.
        start = blob.find(b"\x93NUMPY") + 200
        blob[start : start + 1024] = b"\x00" * 1024
        path.write_bytes(bytes(blob))
        assert read_meta(path) == meta
        np.testing.assert_array_equal(read_labels(path), np.array(labels))
