"""Tests for store building, reading, streaming and merging."""

import json

import numpy as np
import pytest

from repro.data import (
    DataError,
    DatasetConfig,
    DatasetManifest,
    ShardedDataset,
    build_dataset,
    merge_stores,
    verify_store,
)
from repro.data.manifest import MANIFEST_NAME
from repro.data.writer import collector_for, config_sites, partition_sites

CONFIG = DatasetConfig(n_sites=4, traces_per_site=2, trace_seconds=0.4)


@pytest.fixture(scope="module")
def reference():
    """The rows the CONFIG store must hold, collected in memory once."""
    collector = collector_for(CONFIG)
    x, labels = collector.collect(config_sites(CONFIG), CONFIG.traces_per_site).stacked()
    return x, labels


def build(tmp_path, name="store", shard_sites=2, **kwargs):
    store_dir = tmp_path / name
    manifest = build_dataset(store_dir, CONFIG, shard_sites=shard_sites, **kwargs)
    return store_dir, manifest


class TestBuild:
    def test_build_matches_memory_collection(self, tmp_path, reference):
        store_dir, manifest = build(tmp_path)
        assert manifest.status == "complete"
        assert manifest.n_rows == 8
        assert len(manifest.shards) == 2
        x, labels = ShardedDataset(store_dir).stacked()
        np.testing.assert_array_equal(x, reference[0])
        assert labels == reference[1]

    def test_parallel_build_is_bit_identical(self, tmp_path):
        from repro.engine.engine import ExecutionEngine

        serial_dir, _ = build(tmp_path, "serial", shard_sites=1)
        parallel_dir, _ = build(
            tmp_path, "parallel", shard_sites=1, engine=ExecutionEngine(jobs=2)
        )
        for entry in DatasetManifest.load(serial_dir).shards:
            assert (serial_dir / entry.name).read_bytes() == (
                parallel_dir / entry.name
            ).read_bytes()

    def test_verify_passes_on_fresh_store(self, tmp_path):
        store_dir, _ = build(tmp_path)
        assert verify_store(store_dir) == []

    def test_partition_sites(self):
        assert partition_sites(5, 2) == [(0, 2), (2, 4), (4, 5)]
        assert partition_sites(2, 8) == [(0, 2)]


class TestResume:
    def test_resume_skips_valid_shards(self, tmp_path):
        store_dir, first = build(tmp_path)
        mtimes = {
            entry.name: (store_dir / entry.name).stat().st_mtime_ns
            for entry in first.shards
        }
        (store_dir / "shard-0001.npz").unlink()
        second = build_dataset(store_dir, CONFIG, shard_sites=2)
        assert verify_store(store_dir) == []
        # The surviving shard was not rewritten.
        kept = store_dir / "shard-0000.npz"
        assert kept.stat().st_mtime_ns == mtimes["shard-0000.npz"]
        assert second.shard_by_name() == first.shard_by_name()

    def test_resume_rejects_config_mismatch(self, tmp_path):
        store_dir, _ = build(tmp_path)
        other = DatasetConfig(n_sites=4, traces_per_site=3, trace_seconds=0.4)
        with pytest.raises(DataError):
            build_dataset(store_dir, other, shard_sites=2)

    def test_adopts_orphan_shard_from_interrupted_build(self, tmp_path):
        donor_dir, _ = build(tmp_path, "donor")
        # Simulate a crash after shard-0000 landed but before any
        # manifest write: shard file present, no manifest at all.
        store_dir = tmp_path / "interrupted"
        store_dir.mkdir()
        (store_dir / "shard-0000.npz").write_bytes(
            (donor_dir / "shard-0000.npz").read_bytes()
        )
        orphan_mtime = (store_dir / "shard-0000.npz").stat().st_mtime_ns
        build_dataset(store_dir, CONFIG, shard_sites=2)
        assert verify_store(store_dir) == []
        assert (store_dir / "shard-0000.npz").stat().st_mtime_ns == orphan_mtime

    def test_rebuilds_corrupt_shard(self, tmp_path):
        store_dir, _ = build(tmp_path)
        path = store_dir / "shard-0000.npz"
        path.write_bytes(path.read_bytes()[:-7] + b"corrupt")
        assert verify_store(store_dir) != []
        build_dataset(store_dir, CONFIG, shard_sites=2)
        assert verify_store(store_dir) == []


class TestReader:
    def test_labels_and_classes_are_lazy_and_complete(self, tmp_path, reference):
        store_dir, _ = build(tmp_path)
        store = ShardedDataset(store_dir)
        assert store.labels.tolist() == reference[1]
        assert store.classes == sorted(set(reference[1]))

    def test_shard_x_is_memmap(self, tmp_path):
        store_dir, _ = build(tmp_path)
        assert isinstance(ShardedDataset(store_dir).shard_x(0), np.memmap)

    def test_rows_gather_across_shards(self, tmp_path, reference):
        store_dir, _ = build(tmp_path, shard_sites=1)
        store = ShardedDataset(store_dir)
        picks = [7, 0, 3, 5]
        np.testing.assert_array_equal(store.rows(picks), reference[0][picks])
        with pytest.raises(IndexError):
            store.rows([8])

    def test_to_trace_dataset(self, tmp_path, reference):
        store_dir, _ = build(tmp_path)
        dataset = ShardedDataset(store_dir).to_trace_dataset()
        np.testing.assert_array_equal(dataset.x, reference[0])
        assert dataset.labels == reference[1]
        assert dataset.metadata["config"] == CONFIG.as_dict()

    def test_refuses_incomplete_store(self, tmp_path):
        store_dir, _ = build(tmp_path)
        manifest = DatasetManifest.load(store_dir)
        manifest.status = "building"
        manifest.save(store_dir)
        with pytest.raises(DataError):
            ShardedDataset(store_dir)


class TestStreaming:
    def test_batches_bit_identical_across_shard_layouts(self, tmp_path):
        fine_dir, _ = build(tmp_path, "fine", shard_sites=1)
        coarse_dir, _ = build(tmp_path, "coarse", shard_sites=4)
        fine = list(ShardedDataset(fine_dir).stream_batches(3, seed=11))
        coarse = list(ShardedDataset(coarse_dir).stream_batches(3, seed=11))
        assert len(fine) == len(coarse) == 3  # 8 rows / batch 3
        for (fx, fl), (cx, cl) in zip(fine, coarse):
            np.testing.assert_array_equal(fx, cx)
            np.testing.assert_array_equal(fl, cl)

    def test_epoch_and_seed_change_order(self, tmp_path):
        store_dir, _ = build(tmp_path)
        store = ShardedDataset(store_dir)
        assert not np.array_equal(store.stream_order(0), store.stream_order(1))
        assert not np.array_equal(store.stream_order(0, 0), store.stream_order(0, 1))

    def test_covers_every_row_once(self, tmp_path, reference):
        store_dir, _ = build(tmp_path)
        store = ShardedDataset(store_dir)
        seen = np.concatenate(
            [x for x, _ in store.stream_batches(3, seed=4)]
        )
        assert seen.shape == reference[0].shape
        order = store.stream_order(4)
        np.testing.assert_array_equal(seen, reference[0][order])

    def test_drop_last(self, tmp_path):
        store_dir, _ = build(tmp_path)
        batches = list(
            ShardedDataset(store_dir).stream_batches(3, seed=0, drop_last=True)
        )
        assert [len(x) for x, _ in batches] == [3, 3]


class TestMerge:
    def test_merge_concatenates(self, tmp_path, reference):
        a_dir, _ = build(tmp_path, "a", shard_sites=2)
        b_dir, _ = build(tmp_path, "b", shard_sites=4)
        merged_dir = tmp_path / "merged"
        manifest = merge_stores([a_dir, b_dir], merged_dir)
        assert manifest.n_rows == 16
        assert manifest.config.n_sites == 8
        assert verify_store(merged_dir) == []
        x, labels = ShardedDataset(merged_dir).stacked()
        np.testing.assert_array_equal(x, np.concatenate([reference[0]] * 2))
        assert labels == reference[1] * 2

    def test_merge_site_ranges_are_disjoint(self, tmp_path):
        a_dir, _ = build(tmp_path, "a")
        b_dir, _ = build(tmp_path, "b")
        manifest = merge_stores([a_dir, b_dir], tmp_path / "merged")
        ranges = [(e.site_start, e.site_stop) for e in manifest.shards]
        assert ranges == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_merge_rejects_shape_mismatch(self, tmp_path):
        a_dir, _ = build(tmp_path, "a")
        other = DatasetConfig(n_sites=2, traces_per_site=2, trace_seconds=0.8)
        build_dataset(tmp_path / "b", other)
        with pytest.raises(DataError):
            merge_stores([a_dir, tmp_path / "b"], tmp_path / "merged")

    def test_merge_rejects_existing_store(self, tmp_path):
        a_dir, _ = build(tmp_path, "a")
        b_dir, _ = build(tmp_path, "b")
        with pytest.raises(DataError):
            merge_stores([a_dir, b_dir], a_dir)


class TestManifestValidation:
    def test_unknown_schema_version(self, tmp_path):
        store_dir, _ = build(tmp_path)
        path = store_dir / MANIFEST_NAME
        data = json.loads(path.read_text())
        data["schema_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(DataError, match="schema"):
            DatasetManifest.load(store_dir)

    def test_unknown_config_field(self, tmp_path):
        store_dir, _ = build(tmp_path)
        path = store_dir / MANIFEST_NAME
        data = json.loads(path.read_text())
        data["config"]["surprise"] = 1
        path.write_text(json.dumps(data))
        with pytest.raises(DataError, match="unknown dataset config"):
            DatasetManifest.load(store_dir)

    def test_not_a_store(self, tmp_path):
        with pytest.raises(DataError, match="not a dataset store"):
            DatasetManifest.load(tmp_path)

    def test_verify_reports_tampering(self, tmp_path):
        store_dir, _ = build(tmp_path)
        path = store_dir / "shard-0001.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        problems = verify_store(store_dir)
        assert len(problems) == 1
        assert "checksum" in problems[0]

    def test_verify_reports_missing_shard(self, tmp_path):
        store_dir, _ = build(tmp_path)
        (store_dir / "shard-0000.npz").unlink()
        assert any("missing" in p for p in verify_store(store_dir))

    def test_config_validation(self):
        with pytest.raises(DataError):
            DatasetConfig(n_sites=0, traces_per_site=1)
        with pytest.raises(DataError):
            DatasetConfig(n_sites=1, traces_per_site=1, period_ms=0.0)
