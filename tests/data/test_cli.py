"""Tests for the ``biggerfish data`` CLI and its runner dispatch."""

import numpy as np
import pytest

from repro.data import DatasetConfig, ShardedDataset, build_dataset
from repro.data.cli import main as data_main
from repro.experiments.runner import main as runner_main

CONFIG_ARGS = ["--sites", "3", "--traces", "2", "--trace-seconds", "0.4"]


def test_build_ls_verify(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert data_main(["build", store, *CONFIG_ARGS, "--shard-sites", "2"]) == 0
    out = capsys.readouterr().out
    assert "6 rows" in out

    assert data_main(["ls", store, "--shards"]) == 0
    out = capsys.readouterr().out
    assert "status:         complete" in out
    assert "shard-0000.npz" in out and "shard-0001.npz" in out

    assert data_main(["verify", store]) == 0
    assert "OK" in capsys.readouterr().out


def test_build_resumes(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert data_main(["build", store, *CONFIG_ARGS, "--shard-sites", "1"]) == 0
    capsys.readouterr()
    assert data_main(["build", store, *CONFIG_ARGS, "--shard-sites", "1"]) == 0
    err = capsys.readouterr().err
    assert "skipping" in err


def test_verify_fails_on_corruption(tmp_path, capsys):
    store = tmp_path / "store"
    assert data_main(["build", str(store), *CONFIG_ARGS]) == 0
    shard = store / "shard-0000.npz"
    blob = bytearray(shard.read_bytes())
    blob[-1] ^= 0xFF
    shard.write_bytes(bytes(blob))
    assert data_main(["verify", str(store)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_merge_command(tmp_path, capsys):
    a, b, out = str(tmp_path / "a"), str(tmp_path / "b"), str(tmp_path / "m")
    assert data_main(["build", a, *CONFIG_ARGS]) == 0
    assert data_main(["build", b, *CONFIG_ARGS]) == 0
    assert data_main(["merge", out, a, b]) == 0
    assert "12 rows" in capsys.readouterr().out


def test_config_mismatch_is_usage_error(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert data_main(["build", store, *CONFIG_ARGS]) == 0
    assert data_main(["build", store, "--sites", "5", "--traces", "2"]) == 2
    assert "different" in capsys.readouterr().err


def test_ls_on_non_store_fails(tmp_path, capsys):
    assert data_main(["ls", str(tmp_path)]) == 1
    assert "not a dataset store" in capsys.readouterr().err


def test_no_subcommand_prints_help(capsys):
    assert data_main([]) == 2
    assert "build" in capsys.readouterr().out


def test_runner_dispatches_data(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert runner_main(["data", "build", store, *CONFIG_ARGS]) == 0
    assert runner_main(["data", "verify", store]) == 0


def test_train_from_store(tmp_path, capsys):
    from repro.ml.artifact import load_artifact, load_info
    from repro.serve.cli import main as serve_main

    store = tmp_path / "store"
    config = DatasetConfig(n_sites=3, traces_per_site=4, trace_seconds=0.4)
    build_dataset(store, config, shard_sites=1)
    out = tmp_path / "model"
    assert serve_main(["train", "--out", str(out), "--dataset", str(store)]) == 0
    info = load_info(out)
    assert info.provenance["dataset_config"] == config.as_dict()
    assert info.provenance["n_traces"] == 12
    assert sorted(info.classes) == ShardedDataset(store).classes
    # The artifact is usable end to end.
    model = load_artifact(out)
    x, _ = ShardedDataset(store).stacked()
    assert model.predict_proba(x).shape == (12, 3)


def test_loadgen_vectors_from_store(tmp_path):
    from repro.serve.loadgen import vectors_from_store

    store = tmp_path / "store"
    build_dataset(
        store, DatasetConfig(n_sites=2, traces_per_site=3, trace_seconds=0.4)
    )
    everything = vectors_from_store(store)
    assert len(everything) == 6
    sample = vectors_from_store(store, 4, seed=9)
    assert len(sample) == 4
    again = vectors_from_store(store, 4, seed=9)
    np.testing.assert_array_equal(np.stack(sample), np.stack(again))
    with pytest.raises(ValueError):
        vectors_from_store(store, 0)
