"""Tests for timer-based defenses."""

import pytest

from repro.defenses.timer_defense import quantized_defense, randomized_defense
from repro.sim.events import MS
from repro.timers.spec import TimerKind


class TestQuantizedDefense:
    def test_default_is_tor_resolution(self):
        defense = quantized_defense()
        assert defense.spec.kind is TimerKind.QUANTIZED
        assert defense.spec.resolution_ns == 100 * MS

    def test_custom_resolution(self):
        defense = quantized_defense(resolution_ms=10.0)
        assert defense.spec.resolution_ns == 10 * MS

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            quantized_defense(resolution_ms=0)

    def test_buildable(self):
        timer = quantized_defense().spec.build()
        assert timer.read(150 * MS) == 100 * MS


class TestRandomizedDefense:
    def test_published_defaults(self):
        defense = randomized_defense()
        assert defense.spec.kind is TimerKind.RANDOMIZED
        assert defense.spec.resolution_ns == 1 * MS
        assert defense.spec.alpha_range == (5, 25)
        assert defense.spec.beta_range == (5, 25)
        assert defense.spec.threshold_ns == 100 * MS

    def test_custom_parameters(self):
        defense = randomized_defense(delta_ms=2.0, threshold_ms=50.0)
        assert defense.spec.resolution_ns == 2 * MS
        assert defense.spec.threshold_ns == 50 * MS

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            randomized_defense(delta_ms=0)
        with pytest.raises(ValueError):
            randomized_defense(threshold_ms=-1)

    def test_description_present(self):
        assert "random" in randomized_defense().description.lower()
