"""Tests for the spurious-interrupt countermeasure."""

import numpy as np
import pytest

from repro.defenses.interrupt_noise import (
    PAGE_LOAD_OVERHEAD,
    SpuriousInterruptInjector,
    interrupt_noise_hooks,
)
from repro.sim.events import SEC
from repro.sim.interrupts import InterruptType
from repro.sim.machine import MachineConfig

HORIZON = 5 * SEC


class TestInjector:
    def test_injects_on_every_core(self, rng):
        machine = MachineConfig(n_cores=4)
        batches = SpuriousInterruptInjector().inject(machine, HORIZON, rng)
        cores = {core for core, _ in batches}
        assert cores == {0, 1, 2, 3}

    def test_spurious_type_and_cause(self, rng):
        machine = MachineConfig()
        for _, batch in SpuriousInterruptInjector().inject(machine, HORIZON, rng):
            assert batch.itype is InterruptType.SPURIOUS
            assert batch.cause == "defense_noise"

    def test_thousands_of_interrupts(self, rng):
        """§6.2: the extension generates thousands of interrupts."""
        machine = MachineConfig()
        batches = SpuriousInterruptInjector().inject(machine, HORIZON, rng)
        total = sum(len(batch) for _, batch in batches)
        assert total > 4_000

    def test_times_sorted_within_horizon(self, rng):
        machine = MachineConfig()
        for _, batch in SpuriousInterruptInjector().inject(machine, HORIZON, rng):
            assert np.all(np.diff(batch.times) >= 0)
            assert batch.times.max() <= HORIZON

    def test_rate_parameter_scales_volume(self, rng):
        machine = MachineConfig()
        light = SpuriousInterruptInjector(ping_rate_hz=200.0)
        heavy = SpuriousInterruptInjector(ping_rate_hz=8_000.0)
        n_light = sum(
            len(b) for _, b in light.inject(machine, HORIZON, np.random.default_rng(0))
        )
        n_heavy = sum(
            len(b) for _, b in heavy.inject(machine, HORIZON, np.random.default_rng(0))
        )
        assert n_heavy > 5 * n_light

    def test_validation(self):
        with pytest.raises(ValueError):
            SpuriousInterruptInjector(ping_rate_hz=-1)
        with pytest.raises(ValueError):
            SpuriousInterruptInjector(burst_fraction=2.0)


class TestHooks:
    def test_page_load_overhead_is_papers(self):
        """3.12 s -> 3.61 s: +15.7 %."""
        assert PAGE_LOAD_OVERHEAD == pytest.approx(1.157, abs=0.001)

    def test_hooks_carry_injector_and_stretch(self):
        hooks = interrupt_noise_hooks()
        assert hooks.interrupt_injector is not None
        assert hooks.load_stretch == pytest.approx(PAGE_LOAD_OVERHEAD)
