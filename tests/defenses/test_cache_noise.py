"""Tests for the cache-sweep noise countermeasure."""

import pytest

from repro.defenses.cache_noise import CacheSweepNoise, cache_noise_hooks
from repro.sim.events import SEC
from repro.workload.phases import BurstKind

HORIZON = 5 * SEC


class TestCacheSweepNoise:
    def test_hooks_cover_whole_trace(self):
        hooks = CacheSweepNoise().hooks(HORIZON)
        assert len(hooks.extra_timelines) == 1
        sweeping = hooks.extra_timelines[0]
        assert sweeping.bursts[0].duration_ns == HORIZON
        assert sweeping.bursts[0].kind is BurstKind.MEMORY

    def test_occupancy_floor_set(self):
        hooks = CacheSweepNoise(occupancy_floor=0.6).hooks(HORIZON)
        assert hooks.occupancy_floor == 0.6

    def test_no_interrupt_injection(self):
        """The cache defender generates memory traffic, not interrupts —
        which is exactly why it fails to stop either attack (Table 2)."""
        hooks = CacheSweepNoise().hooks(HORIZON)
        assert hooks.interrupt_injector is None
        assert hooks.load_stretch == 1.0

    def test_cpu_footprint_is_small(self):
        noise = CacheSweepNoise()
        assert noise.cpu_intensity < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheSweepNoise(occupancy_floor=1.5)
        with pytest.raises(ValueError):
            CacheSweepNoise(cpu_intensity=0.0)

    def test_default_hooks_helper(self):
        hooks = cache_noise_hooks(HORIZON)
        assert hooks.occupancy_floor == CacheSweepNoise().occupancy_floor
