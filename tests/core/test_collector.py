"""Tests for trace collection."""

import numpy as np
import pytest

from repro.core.attacker import SweepCountingAttacker
from repro.core.collector import NoiseHooks, TraceCollector
from repro.defenses.interrupt_noise import SpuriousInterruptInjector
from repro.sim.events import MS, SEC
from repro.sim.machine import MachineConfig
from repro.timers.spec import NATIVE_TIMER, RANDOMIZED_DEFENSE_TIMER
from repro.workload.browser import CHROME, LINUX, Browser
from repro.workload.phases import ActivityBurst, ActivityTimeline, BurstKind
from repro.workload.website import profile_for

SHORT_CHROME = Browser(
    name=CHROME.name,
    timer=CHROME.timer,
    trace_seconds=3.0,
    measurement_noise=CHROME.measurement_noise,
)


@pytest.fixture(scope="module")
def collector():
    return TraceCollector(MachineConfig(os=LINUX), SHORT_CHROME, seed=5)


@pytest.fixture(scope="module")
def site():
    return profile_for("nytimes.com")


class TestCollectTrace:
    def test_trace_covers_horizon(self, collector, site):
        trace = collector.collect(site)[0]
        assert trace.observed_starts.max() <= SHORT_CHROME.horizon_ns
        # With P = 5 ms over 3 s, close to 600 periods fit.
        assert len(trace) > 500

    def test_counters_non_negative_integers(self, collector, site):
        trace = collector.collect(site)[0]
        assert trace.counters.min() >= 0
        np.testing.assert_array_equal(trace.counters, np.floor(trace.counters))

    def test_counter_band_matches_paper(self, collector, site):
        """Fig 3's 21k-27k band (at P=5ms), allowing turbo headroom."""
        vector = collector.collect(site)[0].to_vector()
        assert 24_000 <= vector.max() <= 29_000
        # Typical values sit in the paper's band; isolated periods can
        # dip further when a long gap spans a period boundary.
        assert 18_000 <= vector.mean() <= 27_500
        assert np.percentile(vector, 5) >= 12_000

    def test_label_and_attacker_recorded(self, collector, site):
        trace = collector.collect(site)[0]
        assert trace.label == "nytimes.com"
        assert trace.attacker == "loop-counting"

    def test_deterministic_per_trace_index(self, collector, site):
        a = collector.collect(site, start_index=3)[0]
        b = collector.collect(site, start_index=3)[0]
        np.testing.assert_array_equal(a.counters, b.counters)

    def test_trace_indices_differ(self, collector, site):
        a = collector.collect(site, start_index=0)[0]
        b = collector.collect(site, start_index=1)[0]
        assert not np.array_equal(a.counters, b.counters)

    def test_sweep_attacker_counts_small(self, site):
        collector = TraceCollector(
            MachineConfig(os=LINUX), SHORT_CHROME,
            attacker=SweepCountingAttacker(), seed=5,
        )
        vector = collector.collect(site)[0].to_vector()
        assert vector.max() <= 60

    def test_native_timer_period_boundaries_exact(self, site):
        collector = TraceCollector(
            MachineConfig(os=LINUX), SHORT_CHROME, timer=NATIVE_TIMER, seed=5
        )
        trace = collector.collect(site)[0]
        starts = trace.observed_starts
        diffs = np.diff(starts)
        # Precise timer: periods are P plus only gap spill-over.
        assert diffs.min() >= collector.period_ns - 1e-6
        assert np.median(diffs) < collector.period_ns * 1.2

    def test_randomized_timer_trace_still_terminates(self, site):
        collector = TraceCollector(
            MachineConfig(os=LINUX), SHORT_CHROME,
            timer=RANDOMIZED_DEFENSE_TIMER, seed=5,
        )
        trace = collector.collect(site)[0]
        assert len(trace) > 5


class TestNoiseHooks:
    def test_occupancy_floor_applied(self, site):
        collector = TraceCollector(
            MachineConfig(os=LINUX), SHORT_CHROME,
            attacker=SweepCountingAttacker(), seed=5,
        )
        quiet = collector.collect(site)[0]
        noisy = collector.collect(
            site, noise=NoiseHooks(occupancy_floor=0.9)
        )[0]
        # High occupancy floor slows every sweep -> lower counters.
        assert noisy.to_vector().mean() < quiet.to_vector().mean()

    def test_interrupt_injector_reduces_counters(self, collector, site):
        quiet = collector.collect(site)[0]
        noisy = collector.collect(
            site,
            noise=NoiseHooks(interrupt_injector=SpuriousInterruptInjector()),
        )[0]
        assert noisy.to_vector().mean() < quiet.to_vector().mean()

    def test_extra_timelines_merge(self, collector, site):
        background = ActivityTimeline(
            [ActivityBurst(0, SHORT_CHROME.horizon_ns, BurstKind.COMPUTE, 0.8)],
            SHORT_CHROME.horizon_ns,
        )
        quiet = collector.collect(site)[0]
        noisy = collector.collect(
            site, noise=NoiseHooks(extra_timelines=(background,))
        )[0]
        assert noisy.to_vector().mean() < quiet.to_vector().mean()


class TestCollect:
    def test_shapes_and_labels(self, collector):
        sites = [profile_for("amazon.com"), profile_for("weather.com")]
        x, labels = collector.collect(sites, traces_per_site=3).stacked()
        assert x.shape == (6, collector.spec.n_samples)
        assert labels == ["amazon.com"] * 3 + ["weather.com"] * 3

    def test_custom_labels(self, collector):
        sites = [profile_for("amazon.com")]
        batch = collector.collect(sites, 2, labels=["custom"])
        _, labels = batch.stacked()
        assert labels == ["custom", "custom"]

    def test_zero_traces_rejected(self, collector):
        with pytest.raises(ValueError):
            collector.collect([profile_for("amazon.com")], 0)

    def test_empty_sites_rejected(self, collector):
        with pytest.raises(ValueError, match="at least one site"):
            collector.collect([], 1)

    def test_label_count_mismatch_rejected(self, collector):
        with pytest.raises(ValueError):
            collector.collect([profile_for("amazon.com")], 1, labels=["a", "b"])

    def test_batch_is_sequence(self, collector, site):
        batch = collector.collect(site, 3)
        assert len(batch) == 3
        assert list(batch)[1] is batch[1]
        tail = batch[1:]
        assert len(tail) == 2 and tail[0] is batch[1]

    def test_start_index_continues_sequence(self, collector, site):
        first = collector.collect(site, 2)
        rest = collector.collect(site, 2, start_index=2)
        whole = collector.collect(site, 4)
        for got, want in zip(list(first) + list(rest), whole):
            np.testing.assert_array_equal(got.counters, want.counters)


class TestDeprecatedShimsRemoved:
    """The one-release pre-unification shims are gone for good."""

    @pytest.mark.parametrize(
        "name", ["collect_trace", "collect_traces", "collect_dataset"]
    )
    def test_old_entry_points_no_longer_exist(self, collector, name):
        assert not hasattr(collector, name)

    def test_collect_replaces_every_old_form(self, collector, site):
        single = collector.collect(site, start_index=3)[0]
        several = list(collector.collect(site, 2))
        stacked_x, stacked_labels = collector.collect([site], 2).stacked()
        assert single.counters.size > 0
        assert len(several) == 2
        assert stacked_x.shape[0] == len(stacked_labels) == 2
