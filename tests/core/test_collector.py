"""Tests for trace collection."""

import numpy as np
import pytest

from repro.core.attacker import SweepCountingAttacker
from repro.core.collector import NoiseHooks, TraceCollector
from repro.defenses.interrupt_noise import SpuriousInterruptInjector
from repro.sim.events import MS, SEC
from repro.sim.machine import MachineConfig
from repro.timers.spec import NATIVE_TIMER, RANDOMIZED_DEFENSE_TIMER
from repro.workload.browser import CHROME, LINUX, Browser
from repro.workload.phases import ActivityBurst, ActivityTimeline, BurstKind
from repro.workload.website import profile_for

SHORT_CHROME = Browser(
    name=CHROME.name,
    timer=CHROME.timer,
    trace_seconds=3.0,
    measurement_noise=CHROME.measurement_noise,
)


@pytest.fixture(scope="module")
def collector():
    return TraceCollector(MachineConfig(os=LINUX), SHORT_CHROME, seed=5)


@pytest.fixture(scope="module")
def site():
    return profile_for("nytimes.com")


class TestCollectTrace:
    def test_trace_covers_horizon(self, collector, site):
        trace = collector.collect_trace(site)
        assert trace.observed_starts.max() <= SHORT_CHROME.horizon_ns
        # With P = 5 ms over 3 s, close to 600 periods fit.
        assert len(trace) > 500

    def test_counters_non_negative_integers(self, collector, site):
        trace = collector.collect_trace(site)
        assert trace.counters.min() >= 0
        np.testing.assert_array_equal(trace.counters, np.floor(trace.counters))

    def test_counter_band_matches_paper(self, collector, site):
        """Fig 3's 21k-27k band (at P=5ms), allowing turbo headroom."""
        vector = collector.collect_trace(site).to_vector()
        assert 24_000 <= vector.max() <= 29_000
        # Typical values sit in the paper's band; isolated periods can
        # dip further when a long gap spans a period boundary.
        assert 18_000 <= vector.mean() <= 27_500
        assert np.percentile(vector, 5) >= 12_000

    def test_label_and_attacker_recorded(self, collector, site):
        trace = collector.collect_trace(site)
        assert trace.label == "nytimes.com"
        assert trace.attacker == "loop-counting"

    def test_deterministic_per_trace_index(self, collector, site):
        a = collector.collect_trace(site, trace_index=3)
        b = collector.collect_trace(site, trace_index=3)
        np.testing.assert_array_equal(a.counters, b.counters)

    def test_trace_indices_differ(self, collector, site):
        a = collector.collect_trace(site, trace_index=0)
        b = collector.collect_trace(site, trace_index=1)
        assert not np.array_equal(a.counters, b.counters)

    def test_sweep_attacker_counts_small(self, site):
        collector = TraceCollector(
            MachineConfig(os=LINUX), SHORT_CHROME,
            attacker=SweepCountingAttacker(), seed=5,
        )
        vector = collector.collect_trace(site).to_vector()
        assert vector.max() <= 60

    def test_native_timer_period_boundaries_exact(self, site):
        collector = TraceCollector(
            MachineConfig(os=LINUX), SHORT_CHROME, timer=NATIVE_TIMER, seed=5
        )
        trace = collector.collect_trace(site)
        starts = trace.observed_starts
        diffs = np.diff(starts)
        # Precise timer: periods are P plus only gap spill-over.
        assert diffs.min() >= collector.period_ns - 1e-6
        assert np.median(diffs) < collector.period_ns * 1.2

    def test_randomized_timer_trace_still_terminates(self, site):
        collector = TraceCollector(
            MachineConfig(os=LINUX), SHORT_CHROME,
            timer=RANDOMIZED_DEFENSE_TIMER, seed=5,
        )
        trace = collector.collect_trace(site)
        assert len(trace) > 5


class TestNoiseHooks:
    def test_occupancy_floor_applied(self, site):
        collector = TraceCollector(
            MachineConfig(os=LINUX), SHORT_CHROME,
            attacker=SweepCountingAttacker(), seed=5,
        )
        quiet = collector.collect_trace(site)
        noisy = collector.collect_trace(
            site, noise=NoiseHooks(occupancy_floor=0.9)
        )
        # High occupancy floor slows every sweep -> lower counters.
        assert noisy.to_vector().mean() < quiet.to_vector().mean()

    def test_interrupt_injector_reduces_counters(self, collector, site):
        quiet = collector.collect_trace(site)
        noisy = collector.collect_trace(
            site,
            noise=NoiseHooks(interrupt_injector=SpuriousInterruptInjector()),
        )
        assert noisy.to_vector().mean() < quiet.to_vector().mean()

    def test_extra_timelines_merge(self, collector, site):
        background = ActivityTimeline(
            [ActivityBurst(0, SHORT_CHROME.horizon_ns, BurstKind.COMPUTE, 0.8)],
            SHORT_CHROME.horizon_ns,
        )
        quiet = collector.collect_trace(site)
        noisy = collector.collect_trace(
            site, noise=NoiseHooks(extra_timelines=(background,))
        )
        assert noisy.to_vector().mean() < quiet.to_vector().mean()


class TestCollectDataset:
    def test_shapes_and_labels(self, collector):
        sites = [profile_for("amazon.com"), profile_for("weather.com")]
        x, labels = collector.collect_dataset(sites, traces_per_site=3)
        assert x.shape == (6, collector.spec.n_samples)
        assert labels == ["amazon.com"] * 3 + ["weather.com"] * 3

    def test_custom_labels(self, collector):
        sites = [profile_for("amazon.com")]
        _, labels = collector.collect_dataset(sites, 2, labels=["custom"])
        assert labels == ["custom", "custom"]

    def test_zero_traces_rejected(self, collector):
        with pytest.raises(ValueError):
            collector.collect_dataset([profile_for("amazon.com")], 0)
