"""Tests for the fingerprinting pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import FingerprintingPipeline
from repro.sim.machine import MachineConfig
from repro.workload.browser import CHROME, LINUX
from repro.workload.catalog import NON_SENSITIVE_LABEL


@pytest.fixture(scope="module")
def pipeline(tiny_scale_module):
    return FingerprintingPipeline(
        MachineConfig(os=LINUX), CHROME, scale=tiny_scale_module, seed=3
    )


@pytest.fixture(scope="module")
def tiny_scale_module():
    from tests.conftest import TINY

    return TINY


class TestClosedWorld:
    def test_dataset_shape(self, pipeline, tiny_scale_module):
        x, labels = pipeline.collect_closed_world()
        expected_rows = tiny_scale_module.n_sites * tiny_scale_module.traces_per_site
        assert x.shape[0] == expected_rows
        assert len(set(labels)) == tiny_scale_module.n_sites

    def test_accuracy_beats_base_rate(self, pipeline, tiny_scale_module):
        result = pipeline.run_closed_world()
        base_rate = 1.0 / tiny_scale_module.n_sites
        assert result.top1.mean > 2 * base_rate
        assert len(result.fold_top1) == tiny_scale_module.n_folds

    def test_top5_at_least_top1(self, pipeline):
        result = pipeline.run_closed_world()
        assert result.top5.mean >= result.top1.mean

    def test_trace_length_scaled_for_browser(self, tiny_scale_module):
        from repro.workload.browser import TOR_BROWSER

        chrome_pipe = FingerprintingPipeline(
            MachineConfig(os=LINUX), CHROME, scale=tiny_scale_module
        )
        tor_pipe = FingerprintingPipeline(
            MachineConfig(os=LINUX), TOR_BROWSER, scale=tiny_scale_module
        )
        ratio = tor_pipe.browser.trace_seconds / chrome_pipe.browser.trace_seconds
        assert ratio == pytest.approx(50 / 15)


class TestOpenWorld:
    def test_result_fields(self, pipeline):
        result = pipeline.run_open_world()
        for value in (result.sensitive, result.non_sensitive, result.combined):
            assert 0.0 <= value.mean <= 1.0

    def test_non_sensitive_label_reserved(self, pipeline, tiny_scale_module):
        x, labels = pipeline.collect_closed_world()
        assert NON_SENSITIVE_LABEL not in labels


class TestLstmBackendPipeline:
    def test_lstm_backend_end_to_end(self, tiny_scale_module):
        """The paper-architecture backend runs through the full pipeline
        (CV, top-k) — slower than the feature backend but wired the same."""
        scale = tiny_scale_module.with_(backend="lstm", n_sites=3, traces_per_site=6)
        pipeline = FingerprintingPipeline(
            MachineConfig(os=LINUX), CHROME, scale=scale, seed=9
        )
        result = pipeline.run_closed_world()
        assert len(result.fold_top1) == scale.n_folds
        assert 0.0 <= result.top1.mean <= 1.0
        assert result.top5.mean == 1.0  # top-5 of 3 classes is trivially 1


class TestPipelineApi:
    """Keyword-only construction and from_spec; period_ms= is gone."""

    def test_positional_config_rejected(self, tiny_scale_module):
        with pytest.raises(TypeError):
            FingerprintingPipeline(
                MachineConfig(os=LINUX), CHROME, None, tiny_scale_module
            )

    def test_period_ms_kwarg_removed(self, tiny_scale_module):
        with pytest.raises(TypeError):
            FingerprintingPipeline(
                MachineConfig(os=LINUX), CHROME,
                scale=tiny_scale_module, period_ms=20.0, seed=3,
            )

    def test_period_comes_from_scale(self, tiny_scale_module):
        pipe = FingerprintingPipeline(
            MachineConfig(os=LINUX), CHROME,
            scale=tiny_scale_module.with_(period_ms=20.0), seed=3,
        )
        assert pipe.collector.period_ns == 20_000_000

    def test_from_spec_inherits_context(self, tiny_scale_module):
        from repro.engine import ExecutionEngine, RunContext

        ctx = RunContext(
            scale=tiny_scale_module, seed=9, engine=ExecutionEngine(jobs=1)
        )
        pipe = FingerprintingPipeline.from_spec(MachineConfig(os=LINUX), CHROME, ctx=ctx)
        assert pipe.scale is tiny_scale_module
        assert pipe.seed == 9
        assert pipe.engine is ctx.engine
        assert pipe.collector.engine is ctx.engine

    def test_from_spec_overrides_win(self, tiny_scale_module):
        from repro.engine import RunContext

        ctx = RunContext(scale=tiny_scale_module, seed=9)
        pipe = FingerprintingPipeline.from_spec(
            MachineConfig(os=LINUX), CHROME, ctx=ctx, seed=4
        )
        assert pipe.seed == 4

    def test_from_spec_without_context(self, tiny_scale_module):
        pipe = FingerprintingPipeline.from_spec(
            MachineConfig(os=LINUX), CHROME, scale=tiny_scale_module
        )
        assert pipe.scale is tiny_scale_module
