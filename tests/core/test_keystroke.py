"""Tests for the keystroke-timing extension."""

import numpy as np
import pytest

from repro.core.keystroke import (
    KeystrokeAttacker,
    KeystrokeRecovery,
    TypingModel,
    keyboard_core,
    quiet_machine,
    run_keystroke_attack,
    typing_timeline,
)
from repro.sim.events import MS, SEC
from repro.sim.machine import MachineConfig
from repro.workload.phases import BurstKind


class TestTypingModel:
    def test_key_times_increasing(self, rng):
        times = TypingModel().sample_key_times(20, rng)
        assert np.all(np.diff(times) > 0)

    def test_mean_interval_roughly_matches(self, rng):
        model = TypingModel(mean_interval_ms=100.0, sigma=0.1)
        times = model.sample_key_times(500, rng)
        mean_ms = np.diff(times).mean() / MS
        assert mean_ms == pytest.approx(100.0, rel=0.15)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TypingModel(mean_interval_ms=0)
        with pytest.raises(ValueError):
            TypingModel().sample_key_times(0, rng)


class TestTypingTimeline:
    def test_one_burst_per_key(self):
        timeline = typing_timeline([1 * SEC, 2 * SEC], 5 * SEC)
        assert len(timeline) == 2
        assert all(b.kind is BurstKind.INPUT for b in timeline)

    def test_out_of_horizon_keys_dropped(self):
        timeline = typing_timeline([1 * SEC, 9 * SEC], 5 * SEC)
        assert len(timeline) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            typing_timeline([], 5 * SEC)


class TestKeyboardCore:
    def test_default_routing_is_stable(self):
        machine = MachineConfig()
        assert keyboard_core(machine) == keyboard_core(machine)

    def test_irqbalance_moves_keyboard(self):
        machine = MachineConfig(irqbalance=True, attacker_core=1)
        assert keyboard_core(machine) == 0


class TestRecoveryMetrics:
    def test_perfect_recovery(self):
        times = np.array([1e9, 2e9, 3e9])
        recovery = KeystrokeRecovery(
            detected_ns=times.copy(), true_ns=times, tolerance_ns=5 * MS
        )
        assert recovery.recall == 1.0
        assert recovery.precision == 1.0
        assert recovery.timing_errors_ns().max() == 0.0

    def test_missed_keys_reduce_recall(self):
        recovery = KeystrokeRecovery(
            detected_ns=np.array([1e9]),
            true_ns=np.array([1e9, 2e9]),
            tolerance_ns=5 * MS,
        )
        assert recovery.recall == 0.5
        assert recovery.precision == 1.0

    def test_spurious_detections_reduce_precision(self):
        recovery = KeystrokeRecovery(
            detected_ns=np.array([1e9, 5e9]),
            true_ns=np.array([1e9]),
            tolerance_ns=5 * MS,
        )
        assert recovery.precision == 0.5

    def test_empty_edge_cases(self):
        recovery = KeystrokeRecovery(
            detected_ns=np.array([]), true_ns=np.array([]), tolerance_ns=1.0
        )
        assert recovery.recall == 1.0 and recovery.precision == 1.0


class TestAttackEndToEnd:
    def test_quiet_system_recovers_keystrokes(self):
        recovery = run_keystroke_attack(seed=2)
        assert recovery.recall > 0.6
        assert recovery.precision > 0.25
        errors = recovery.timing_errors_ns()
        assert np.median(errors) < 2 * MS

    def test_busy_system_destroys_precision(self):
        """Background device traffic is indistinguishable from keys."""
        from dataclasses import replace

        from repro.workload.browser import LINUX

        noisy_os = replace(LINUX, background_irq_hz=800.0)
        noisy = run_keystroke_attack(
            seed=2, machine=MachineConfig(os=noisy_os, pin_cores=True)
        )
        quiet = run_keystroke_attack(seed=2)
        assert noisy.precision < quiet.precision

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            KeystrokeAttacker(gap_band_ns=(10.0, 5.0))
