"""Tests for the two attacker programs."""

import numpy as np
import pytest

from repro.core.attacker import LoopCountingAttacker, SweepCountingAttacker
from repro.sim.events import MS


class TestLoopCountingAttacker:
    def test_counter_proportional_to_exec_time(self, nytimes_run, rng):
        attacker = LoopCountingAttacker()
        c1 = attacker.count(1 * MS, 0.0, nytimes_run, rng)
        c2 = attacker.count(2 * MS, 0.0, nytimes_run, rng)
        assert c2 == pytest.approx(2 * c1)

    def test_counter_magnitude_matches_paper(self, nytimes_run, rng):
        """~27 000 iterations per fully-executed 5 ms period (Fig 3)."""
        attacker = LoopCountingAttacker()
        ghz = nytimes_run.frequency.ghz_at(0.0)
        counter = attacker.count(5 * MS, 0.0, nytimes_run, rng)
        # Scale expectation by the current turbo state.
        expected = 5 * MS / 222.0 * (ghz / 2.5)
        assert counter == pytest.approx(expected, rel=0.01)

    def test_zero_exec_zero_counter(self, nytimes_run, rng):
        assert LoopCountingAttacker().count(0.0, 0.0, nytimes_run, rng) == 0.0

    def test_name(self):
        assert LoopCountingAttacker().name == "loop-counting"


class TestSweepCountingAttacker:
    def test_orders_of_magnitude_slower_than_loop(self, nytimes_run, rng):
        """~32 sweeps vs ~27 000 increments per 5 ms (paper §3.3)."""
        loop = LoopCountingAttacker().count(5 * MS, 0.0, nytimes_run, rng)
        sweep = SweepCountingAttacker().count(5 * MS, 0.0, nytimes_run, rng)
        assert loop / max(sweep, 1e-9) > 300

    def test_idle_sweep_count_near_32(self, nytimes_run):
        attacker = SweepCountingAttacker(sweep_jitter=0.0)
        rng = np.random.default_rng(0)
        # Late in the trace the system is idle (occupancy ~ noise floor).
        counter = attacker.count(5 * MS, 0.0, nytimes_run, rng)
        assert 15 <= counter <= 45

    def test_occupancy_slows_sweeps(self, nytimes_run):
        attacker = SweepCountingAttacker(sweep_jitter=0.0, occupancy_coupling=1.0)
        run = nytimes_run
        occupancies = run.occupancy_at(run.occupancy_times)
        rng = np.random.default_rng(0)
        t_high = float(run.occupancy_times[np.argmax(occupancies)])
        t_low = float(run.occupancy_times[np.argmin(occupancies)])
        count_high = attacker.count(5 * MS, t_high, run, np.random.default_rng(0))
        count_low = attacker.count(5 * MS, t_low, run, np.random.default_rng(0))
        if float(np.max(occupancies)) - float(np.min(occupancies)) > 0.2:
            assert count_high < count_low

    def test_occupancy_coupling_dampens(self, nytimes_run):
        """The attacker's own sweeps keep victim residency low."""
        full = SweepCountingAttacker(sweep_jitter=0.0, occupancy_coupling=1.0)
        damped = SweepCountingAttacker(sweep_jitter=0.0, occupancy_coupling=0.2)
        run = nytimes_run
        t_busy = float(run.occupancy_times[np.argmax(run.occupancy_at(run.occupancy_times))])
        c_full = full.count(5 * MS, t_busy, run, np.random.default_rng(0))
        c_damped = damped.count(5 * MS, t_busy, run, np.random.default_rng(0))
        assert c_damped >= c_full

    def test_jitter_adds_noise(self, nytimes_run):
        attacker = SweepCountingAttacker(sweep_jitter=0.3)
        counts = {
            attacker.count(5 * MS, 0.0, nytimes_run, np.random.default_rng(s))
            for s in range(10)
        }
        assert len(counts) > 1

    def test_name(self):
        assert SweepCountingAttacker().name == "sweep-counting"
