"""Tests for trace containers and arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import (
    Trace,
    TraceSpec,
    _forward_fill,
    average_traces,
    stack_dataset,
    trace_correlation,
)
from repro.sim.events import MS


def make_trace(starts, counters, horizon_ms=100, period_ms=10, label="x"):
    return Trace(
        spec=TraceSpec.from_ms(horizon_ms / 1000, period_ms),
        observed_starts=np.array(starts, dtype=float) * MS,
        counters=np.array(counters, dtype=float),
        label=label,
    )


class TestTraceSpec:
    def test_n_samples(self):
        spec = TraceSpec.from_ms(15.0, 5.0)
        assert spec.n_samples == 3000

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(horizon_ns=0, period_ns=1)
        with pytest.raises(ValueError):
            TraceSpec(horizon_ns=10, period_ns=20)


class TestTrace:
    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            make_trace([0, 10], [1.0])

    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError):
            make_trace([0], [-1.0])

    def test_to_vector_places_samples(self):
        trace = make_trace([0, 10, 20], [5, 6, 7])
        vector = trace.to_vector()
        assert len(vector) == 10
        assert vector[0] == 5 and vector[1] == 6 and vector[2] == 7

    def test_to_vector_forward_fills(self):
        trace = make_trace([0, 50], [5, 9])
        vector = trace.to_vector()
        assert list(vector[:5]) == [5, 5, 5, 5, 5]
        assert list(vector[5:]) == [9, 9, 9, 9, 9]

    def test_to_vector_backfills_head(self):
        trace = make_trace([30], [4])
        vector = trace.to_vector()
        assert list(vector) == [4.0] * 10

    def test_collisions_last_wins(self):
        """Two samples landing in one cell behave like the paper's
        ``Trace[t_begin] = counter`` array store."""
        trace = make_trace([0, 1, 20], [5, 6, 7])
        vector = trace.to_vector()
        assert vector[0] == 6

    def test_out_of_range_samples_dropped(self):
        trace = make_trace([0, 500], [5, 9])
        vector = trace.to_vector()
        assert vector.max() == 5

    def test_normalized_peak_is_one(self):
        trace = make_trace([0, 10], [10, 20])
        assert trace.normalized().max() == pytest.approx(1.0)

    def test_normalized_all_zero_stays_zero(self):
        trace = make_trace([0], [0])
        assert trace.normalized().max() == 0.0

    def test_empty_trace_vector(self):
        trace = make_trace([], [])
        vector = trace.to_vector()
        assert list(vector) == [0.0] * 10


class TestForwardFill:
    def test_fills_interior(self):
        values = np.array([1.0, np.nan, np.nan, 4.0])
        assert list(_forward_fill(values)) == [1.0, 1.0, 1.0, 4.0]

    def test_all_nan_stays(self):
        values = np.array([np.nan, np.nan])
        assert np.isnan(_forward_fill(values)).all()

    @given(st.lists(st.one_of(st.none(), st.floats(0, 100)), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_no_nans_when_any_value_present(self, values):
        array = np.array([np.nan if v is None else v for v in values])
        if np.isnan(array).all():
            return
        filled = _forward_fill(array)
        assert not np.isnan(filled).any()


class TestAveragingAndCorrelation:
    def test_average_traces(self):
        a = make_trace([0, 10], [10, 20])
        b = make_trace([0, 10], [20, 10])
        mean = average_traces([a, b])
        assert mean[0] == pytest.approx((0.5 + 1.0) / 2)

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_traces([])

    def test_correlation_perfect(self):
        x = np.array([1.0, 2.0, 3.0])
        assert trace_correlation(x, 2 * x) == pytest.approx(1.0)

    def test_correlation_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        assert trace_correlation(x, -x) == pytest.approx(-1.0)

    def test_correlation_shape_mismatch(self):
        with pytest.raises(ValueError):
            trace_correlation(np.ones(3), np.ones(4))

    def test_correlation_constant_rejected(self):
        with pytest.raises(ValueError):
            trace_correlation(np.ones(3), np.arange(3.0))


class TestStackDataset:
    def test_stacks_normalized(self):
        traces = [make_trace([0], [10], label="a"), make_trace([0], [20], label="b")]
        x, labels = stack_dataset(traces)
        assert x.shape == (2, 10)
        assert labels == ["a", "b"]
        assert x.max() == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stack_dataset([])
