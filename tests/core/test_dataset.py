"""Tests for trace dataset persistence."""

import numpy as np
import pytest

from repro.core.dataset import TraceDataset, collect_and_save
from repro.core.collector import TraceCollector
from repro.sim.machine import MachineConfig
from repro.workload.browser import CHROME, Browser
from repro.workload.website import profile_for


def make_dataset(n_per_class=4, n_classes=3, length=20, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n_per_class * n_classes, length))
    labels = [f"site{i // n_per_class}.com" for i in range(len(x))]
    return TraceDataset(x=x, labels=labels, metadata={"seed": seed})


class TestConstruction:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            TraceDataset(x=np.ones(5), labels=["a"] * 5)
        with pytest.raises(ValueError):
            TraceDataset(x=np.ones((3, 4)), labels=["a"])

    def test_properties(self):
        dataset = make_dataset()
        assert len(dataset) == 12
        assert dataset.n_classes == 3
        assert dataset.trace_length == 20
        assert dataset.class_counts() == {
            "site0.com": 4, "site1.com": 4, "site2.com": 4,
        }


class TestManipulation:
    def test_select(self):
        dataset = make_dataset()
        subset = dataset.select([0, 5])
        assert len(subset) == 2
        assert subset.labels == [dataset.labels[0], dataset.labels[5]]

    def test_filter_classes(self):
        dataset = make_dataset()
        filtered = dataset.filter_classes(["site1.com"])
        assert set(filtered.labels) == {"site1.com"}
        assert len(filtered) == 4

    def test_filter_to_nothing_rejected(self):
        with pytest.raises(ValueError):
            make_dataset().filter_classes(["nope.com"])

    def test_merge(self):
        a = make_dataset(seed=0)
        b = make_dataset(seed=1)
        merged = a.merge(b)
        assert len(merged) == 24

    def test_merge_length_mismatch(self):
        a = make_dataset(length=20)
        b = make_dataset(length=30)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_train_test_split_stratified(self):
        dataset = make_dataset(n_per_class=10)
        train, test = dataset.train_test_split(test_fraction=0.2, seed=1)
        assert len(train) + len(test) == len(dataset)
        assert test.class_counts() == {c: 2 for c in dataset.class_counts()}

    def test_split_validates_fraction(self):
        with pytest.raises(ValueError):
            make_dataset().train_test_split(test_fraction=1.0)

    def test_split_rejects_tiny_classes(self):
        dataset = make_dataset(n_per_class=1)
        with pytest.raises(ValueError):
            dataset.train_test_split(test_fraction=0.5)

    def test_single_class_split(self):
        dataset = make_dataset(n_per_class=10, n_classes=1)
        train, test = dataset.train_test_split(test_fraction=0.3, seed=2)
        assert len(train) == 7 and len(test) == 3
        assert set(train.labels) == set(test.labels) == {"site0.com"}


class TestAliasing:
    """The select/view contract documented on TraceDataset."""

    def test_contiguous_select_returns_view(self):
        dataset = make_dataset()
        subset = dataset.select([4, 5, 6, 7])
        assert np.shares_memory(subset.x, dataset.x)
        np.testing.assert_array_equal(subset.x, dataset.x[4:8])

    def test_noncontiguous_select_copies(self):
        dataset = make_dataset()
        for indices in ([0, 2], [5, 4, 3], [1, 1]):
            assert not np.shares_memory(dataset.select(indices).x, dataset.x)

    def test_negative_indices_copy_and_match_fancy(self):
        dataset = make_dataset()
        subset = dataset.select([-3, -2, -1])
        assert not np.shares_memory(subset.x, dataset.x)
        np.testing.assert_array_equal(subset.x, dataset.x[-3:])
        assert subset.labels == dataset.labels[-3:]

    def test_filter_classes_on_grouped_labels_is_view(self):
        dataset = make_dataset()  # labels grouped by class
        filtered = dataset.filter_classes(["site1.com"])
        assert np.shares_memory(filtered.x, dataset.x)

    def test_merge_owns_its_matrix(self):
        a = make_dataset(seed=0)
        merged = a.merge(make_dataset(seed=1))
        assert not np.shares_memory(merged.x, a.x)


class TestEdgeCases:
    def test_empty_dataset_roundtrip(self, tmp_path):
        empty = TraceDataset(
            x=np.empty((0, 20)), labels=[], metadata={"note": "empty"}
        )
        assert len(empty) == 0 and empty.n_classes == 0
        path = tmp_path / "empty.npz"
        empty.save(path)
        loaded = TraceDataset.load(path)
        assert len(loaded) == 0
        assert loaded.x.shape == (0, 20)
        assert loaded.metadata == {"note": "empty"}

    def test_empty_select(self):
        dataset = make_dataset()
        subset = dataset.select([])
        assert len(subset) == 0
        assert subset.trace_length == dataset.trace_length

    def test_metadata_roundtrip_nested(self, tmp_path):
        metadata = {
            "seed": 3,
            "scale": {"n_sites": 4, "backend": "feature"},
            "notes": ["merged", "subsampled"],
        }
        dataset = make_dataset()
        dataset.metadata = metadata
        path = tmp_path / "meta.npz"
        dataset.save(path)
        assert TraceDataset.load(path).metadata == metadata

    def test_merge_then_subsample_roundtrip(self, tmp_path):
        merged = make_dataset(seed=0).merge(make_dataset(seed=1))
        subset = merged.select(range(0, len(merged), 2))
        path = tmp_path / "subset.npz"
        subset.save(path)
        loaded = TraceDataset.load(path)
        np.testing.assert_array_equal(loaded.x, subset.x)
        assert loaded.labels == subset.labels


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        dataset = make_dataset()
        path = tmp_path / "traces.npz"
        dataset.save(path)
        loaded = TraceDataset.load(path)
        np.testing.assert_array_equal(loaded.x, dataset.x)
        assert loaded.labels == dataset.labels
        assert loaded.metadata == {"seed": 0}

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceDataset.load(tmp_path / "nope.npz")

    def test_collect_and_save(self, tmp_path):
        browser = Browser(
            name=CHROME.name, timer=CHROME.timer, trace_seconds=2.0,
            measurement_noise=CHROME.measurement_noise,
        )
        collector = TraceCollector(MachineConfig(), browser, seed=1)
        path = tmp_path / "collected.npz"
        dataset = collect_and_save(
            collector, [profile_for("amazon.com")], 2, path,
            extra_metadata={"os": "Linux"},
        )
        assert path.exists()
        loaded = TraceDataset.load(path)
        assert loaded.metadata["attacker"] == "loop-counting"
        assert loaded.metadata["os"] == "Linux"
        assert len(loaded) == 2
