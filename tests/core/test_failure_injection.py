"""Failure-injection tests: the stack degrades loudly, not silently."""

import numpy as np
import pytest

from repro.core.collector import TraceCollector
from repro.sim.machine import InterruptSynthesizer, MachineConfig
from repro.timers.base import BrowserTimer
from repro.workload.browser import CHROME, Browser
from repro.workload.phases import ActivityTimeline
from repro.workload.website import profile_for

SHORT = Browser(name="Chrome 92", timer=CHROME.timer, trace_seconds=1.0)


class FrozenTimer(BrowserTimer):
    """A pathological timer that never advances."""

    def read(self, t_real_ns: float) -> float:
        return 0.0

    def first_crossing(self, t0_real_ns: float, elapsed_ns: float) -> float:
        return float(t0_real_ns)  # never crosses


class FrozenSpec:
    """Timer-spec stand-in returning the frozen timer."""

    def build(self, seed: int = 0) -> FrozenTimer:
        return FrozenTimer()


class TestDegenerateTimer:
    def test_frozen_timer_does_not_hang(self):
        """A timer that never crosses falls back to real-period stepping
        instead of looping forever."""
        collector = TraceCollector(
            MachineConfig(), SHORT, timer=FrozenSpec(), seed=1
        )
        trace = collector.collect(profile_for("amazon.com"))[0]
        # The fallback advances one nominal period at a time.
        assert 150 <= len(trace) <= 250


class TestDegenerateWorkload:
    def test_idle_machine_still_produces_trace(self):
        """With no victim activity the trace is flat (ticks only)."""
        synthesizer = InterruptSynthesizer(MachineConfig(pin_cores=True))
        rng = np.random.default_rng(0)
        empty = ActivityTimeline([], 1_000_000_000)
        run = synthesizer.synthesize(empty, rng=rng)
        stolen = run.attacker_timeline.gaps.total_stolen_ns / 1e9
        assert 0.0 < stolen < 0.02  # only tick + background overhead

    def test_empty_timeline_occupancy_is_noise_only(self):
        synthesizer = InterruptSynthesizer(MachineConfig())
        rng = np.random.default_rng(0)
        empty = ActivityTimeline([], 1_000_000_000)
        run = synthesizer.synthesize(empty, rng=rng)
        assert run.occupancy_victim.max() == 0.0
        assert run.occupancy_ambient.max() > 0.0


class TestCollectorGuards:
    def test_trace_longer_than_horizon_is_refused(self):
        from repro.core.trace import TraceSpec

        with pytest.raises(ValueError):
            TraceSpec(horizon_ns=1_000, period_ns=2_000)

    def test_nonpositive_period_refused(self):
        with pytest.raises(ValueError):
            TraceCollector(MachineConfig(), SHORT, period_ns=-5)
