"""Tests for the attacker-side gap analysis (§5.2 user-space view)."""

import pytest

from repro.core.analysis import ClockPollingAttacker, analyze_run


class TestClockPollingAttacker:
    def test_observes_long_gaps(self, nytimes_run):
        attacker = ClockPollingAttacker(threshold_ns=100.0)
        gaps = attacker.observe(nytimes_run)
        assert len(gaps) > 100
        assert all(g.length_ns > 100.0 for g in gaps)

    def test_higher_threshold_fewer_gaps(self, nytimes_run):
        low = ClockPollingAttacker(threshold_ns=100.0).observe(nytimes_run)
        high = ClockPollingAttacker(threshold_ns=5_000.0).observe(nytimes_run)
        assert len(high) < len(low)

    def test_gap_end(self, nytimes_run):
        gap = ClockPollingAttacker().observe(nytimes_run)[0]
        assert gap.end_ns == gap.start_ns + gap.length_ns

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            ClockPollingAttacker(threshold_ns=0)


class TestAnalyzeRun:
    def test_joint_analysis(self, nytimes_run):
        analysis = analyze_run(nytimes_run)
        assert analysis.attributed_fraction > 0.99
        assert 0.0 < analysis.stolen_fraction < 0.5
        assert len(analysis.observed_gaps) > 0

    def test_user_and_kernel_views_align(self, nytimes_run):
        """The attacker's observed gaps and the tracer's attributed gaps
        describe the same events (same clock, §5.2)."""
        analysis = analyze_run(nytimes_run)
        assert len(analysis.observed_gaps) == analysis.attribution.n_gaps

    def test_core_override(self, nytimes_run):
        analysis = analyze_run(nytimes_run, core=0)
        assert analysis.stolen_fraction > 0
