"""Tests for the Table-3 isolation ladder."""

import pytest

from repro.isolation.ladder import isolation_ladder, iter_ladder
from repro.sim.machine import MachineConfig


class TestLadder:
    def test_five_rungs_in_paper_order(self):
        names = [step.name for step in isolation_ladder()]
        assert names == [
            "Default",
            "+ Disable frequency scaling",
            "+ Pin to separate cores",
            "+ Remove IRQ interrupts",
            "+ Run in separate VMs",
        ]

    def test_mechanisms_accumulate(self):
        """Each configuration inherits all previous mechanisms (§5.1)."""
        steps = isolation_ladder()
        default, no_dvfs, pinned, irqbalanced, vms = [s.machine for s in steps]
        assert default.frequency.scaling_enabled
        assert not no_dvfs.frequency.scaling_enabled
        assert not no_dvfs.pin_cores
        assert pinned.pin_cores and not pinned.frequency.scaling_enabled
        assert irqbalanced.irqbalance and irqbalanced.pin_cores
        assert vms.vm.enabled and vms.irqbalance and vms.pin_cores
        assert not vms.frequency.scaling_enabled

    def test_default_rung_has_no_isolation(self):
        default = isolation_ladder()[0].machine
        assert not default.pin_cores
        assert not default.irqbalance
        assert not default.vm.enabled

    def test_custom_base(self):
        base = MachineConfig(n_cores=8)
        steps = isolation_ladder(base)
        assert all(s.machine.n_cores == 8 for s in steps)

    def test_iter_ladder(self):
        assert [s.name for s in iter_ladder()] == [s.name for s in isolation_ladder()]
