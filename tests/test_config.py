"""Tests for experiment scales."""

import pytest

from repro.config import DEFAULT, PAPER, SCALES, SMOKE, Scale


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"smoke", "default", "paper"}

    def test_paper_scale_matches_publication(self):
        """100 sites x 100 traces, 15 s @ 5 ms, 10-fold CV, full LSTM."""
        assert PAPER.n_sites == 100
        assert PAPER.traces_per_site == 100
        assert PAPER.trace_seconds == 15.0
        assert PAPER.period_ms == 5.0
        assert PAPER.n_folds == 10
        assert PAPER.backend == "lstm-paper"
        assert PAPER.open_world_sites == 5000

    def test_scales_ordered_by_size(self):
        assert SMOKE.n_sites < DEFAULT.n_sites < PAPER.n_sites
        assert SMOKE.traces_per_site < DEFAULT.traces_per_site

    def test_tor_trace_ratio_preserved(self):
        """Tor uses 50 s traces when others use 15 s, at every scale."""
        for scale in SCALES.values():
            ratio = scale.scaled_trace_seconds(50.0) / scale.scaled_trace_seconds(15.0)
            assert ratio == pytest.approx(50 / 15)

    def test_with_override(self):
        modified = SMOKE.with_(n_sites=5)
        assert modified.n_sites == 5
        assert SMOKE.n_sites == 8  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            Scale("bad", 1, 1, 1.0, 1.0, 2, "feature", 0)
        with pytest.raises(ValueError):
            SMOKE.with_(n_folds=1)
        with pytest.raises(ValueError):
            SMOKE.with_(period_ms=0)
