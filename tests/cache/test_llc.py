"""Tests for the explicit set-associative LLC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.llc import CORE_I5_LLC, CacheGeometry, LastLevelCache


@pytest.fixture
def small_cache():
    return LastLevelCache(CacheGeometry(n_sets=8, n_ways=2, line_bytes=64))


class TestCacheGeometry:
    def test_core_i5_is_8mib(self):
        assert CORE_I5_LLC.size_bytes == 8 * 1024 * 1024

    def test_n_lines(self):
        geometry = CacheGeometry(n_sets=4, n_ways=3)
        assert geometry.n_lines == 12

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            CacheGeometry(n_sets=0, n_ways=1)


class TestAccess:
    def test_first_access_misses(self, small_cache):
        assert small_cache.access(0) is False

    def test_second_access_hits(self, small_cache):
        small_cache.access(0)
        assert small_cache.access(0) is True

    def test_different_owner_same_line_misses(self, small_cache):
        small_cache.access(0, owner=0)
        assert small_cache.access(0, owner=1) is False

    def test_negative_address_rejected(self, small_cache):
        with pytest.raises(ValueError):
            small_cache.access(-1)

    def test_lru_eviction(self, small_cache):
        # Set 0 has 2 ways; addresses 0, 8, 16 all map to set 0.
        small_cache.access(0)
        small_cache.access(8)
        small_cache.access(16)  # evicts 0 (least recently used)
        assert small_cache.access(8) is True
        assert small_cache.access(0) is False

    def test_lru_respects_recency(self, small_cache):
        small_cache.access(0)
        small_cache.access(8)
        small_cache.access(0)  # refresh 0, so 8 is now LRU
        small_cache.access(16)  # evicts 8
        assert small_cache.access(0) is True
        assert small_cache.access(8) is False

    def test_distinct_sets_do_not_interfere(self, small_cache):
        assert small_cache.access(0) is False
        assert small_cache.access(1) is False
        assert small_cache.access(0) is True


class TestAccessBlock:
    def test_cold_sweep_all_misses(self, small_cache):
        n_lines = small_cache.geometry.n_lines
        assert small_cache.access_block(0, n_lines) == n_lines

    def test_warm_sweep_all_hits(self, small_cache):
        n_lines = small_cache.geometry.n_lines
        small_cache.access_block(0, n_lines)
        assert small_cache.access_block(0, n_lines) == 0

    def test_victim_eviction_causes_misses(self, small_cache):
        """The cache-occupancy principle: victim activity slows sweeps."""
        n_lines = small_cache.geometry.n_lines
        small_cache.access_block(0, n_lines, owner=0)
        # Victim touches half the cache with different addresses.
        small_cache.access_block(n_lines, n_lines // 2, owner=1)
        misses = small_cache.access_block(0, n_lines, owner=0)
        assert misses >= n_lines // 2

    def test_negative_count_rejected(self, small_cache):
        with pytest.raises(ValueError):
            small_cache.access_block(0, -1)


class TestOccupancy:
    def test_empty_cache_zero_occupancy(self, small_cache):
        assert small_cache.occupancy(0) == 0.0

    def test_full_sweep_full_occupancy(self, small_cache):
        small_cache.access_block(0, small_cache.geometry.n_lines, owner=0)
        assert small_cache.occupancy(0) == 1.0

    def test_occupancies_sum_to_at_most_one(self, small_cache):
        small_cache.access_block(0, 10, owner=0)
        small_cache.access_block(100, 7, owner=1)
        assert small_cache.occupancy(0) + small_cache.occupancy(1) <= 1.0

    def test_flush_clears(self, small_cache):
        small_cache.access_block(0, 16)
        small_cache.flush()
        assert small_cache.occupancy(0) == 0.0
        assert small_cache.access(0) is False


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_repeat_access_hits(self, addresses):
        """Accessing the same address twice in a row always hits."""
        cache = LastLevelCache(CacheGeometry(n_sets=8, n_ways=2))
        for address in addresses:
            cache.access(address)
            assert cache.access(address) is True

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, addresses):
        cache = LastLevelCache(CacheGeometry(n_sets=16, n_ways=4))
        for address in addresses:
            cache.access(address, owner=address % 3)
        total = sum(cache.occupancy(owner) for owner in range(3))
        assert 0.0 < total <= 1.0

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_working_set_within_capacity_never_thrashes(self, n):
        """A working set smaller than one way per set always fits."""
        cache = LastLevelCache(CacheGeometry(n_sets=512, n_ways=2))
        n = min(n, 512)
        cache.access_block(0, n)
        assert cache.access_block(0, n) == 0
