"""Tests for the analytic sweep-timing model, validated against the
explicit LRU cache."""

import numpy as np
import pytest

from repro.cache.llc import CacheGeometry, LastLevelCache
from repro.cache.sweep import SweepTimingModel


class TestSweepTiming:
    def test_idle_sweep_duration_matches_paper_rate(self):
        """~32 sweeps per 5 ms period on an idle system (paper §3.3)."""
        model = SweepTimingModel()
        sweeps = model.sweeps_per_period(occupancy=0.0, period_ns=5_000_000)
        assert 25 <= sweeps <= 40

    def test_sweep_time_monotone_in_occupancy(self):
        model = SweepTimingModel()
        occupancies = np.linspace(0, 1, 11)
        times = model.sweep_ns(occupancies)
        assert np.all(np.diff(times) > 0)

    def test_full_occupancy_materially_slower(self):
        """The slope is deliberately shallow (see eviction_exposure), but
        a fully-occupied LLC still visibly slows the sweep."""
        model = SweepTimingModel()
        assert 1.2 < model.sweep_ns(1.0) / model.sweep_ns(0.0) < 3.0

    def test_occupancy_clipped(self):
        model = SweepTimingModel()
        assert model.sweep_ns(1.5) == model.sweep_ns(1.0)
        assert model.sweep_ns(-0.5) == model.sweep_ns(0.0)

    def test_scalar_and_array_agree(self):
        model = SweepTimingModel()
        assert model.sweep_ns(0.5) == pytest.approx(model.sweep_ns(np.array([0.5]))[0])

    def test_expected_misses(self):
        model = SweepTimingModel(eviction_exposure=0.5)
        assert model.expected_misses(0.4) == pytest.approx(
            model.geometry.n_lines * 0.4 * 0.5
        )

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SweepTimingModel().sweeps_per_period(0.0, 0)

    def test_invalid_exposure_rejected(self):
        with pytest.raises(ValueError):
            SweepTimingModel(eviction_exposure=1.5)


class TestModelAgainstExplicitCache:
    """The analytic miss count tracks the LRU cache's actual behaviour."""

    def test_miss_fraction_tracks_occupancy(self):
        geometry = CacheGeometry(n_sets=64, n_ways=4)
        n_lines = geometry.n_lines
        rng = np.random.default_rng(3)
        for victim_fraction in (0.25, 0.5, 0.75):
            cache = LastLevelCache(geometry)
            cache.access_block(0, n_lines, owner=0)  # attacker warms cache
            # Victim touches a random subset of distinct lines.
            n_victim = int(victim_fraction * n_lines)
            addresses = rng.choice(n_lines, size=n_victim, replace=False) + n_lines
            for address in addresses:
                cache.access(int(address), owner=1)
            occupancy = cache.occupancy(owner=1)
            misses = cache.access_block(0, n_lines, owner=0)
            miss_fraction = misses / n_lines
            # The attacker's sweep misses at least on every line the
            # victim displaced, and not more than ~2x that (LRU order
            # effects as the sweep itself evicts victim lines).
            assert miss_fraction >= occupancy * 0.9
            assert miss_fraction <= min(2.5 * occupancy + 0.05, 1.0)

    def test_model_exposure_is_conservative(self):
        """The analytic exposure (<1) reflects the attacker re-claiming
        lines mid-sweep, so predicted misses stay below the worst case."""
        model = SweepTimingModel()
        assert model.expected_misses(0.5) < model.geometry.n_lines * 0.5
