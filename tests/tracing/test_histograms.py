"""Tests for interrupt-timing histograms (Figs 5-6 building blocks)."""

import numpy as np
import pytest

from repro.sim.events import MS, US
from repro.sim.interrupts import InterruptType
from repro.tracing.histograms import (
    FIG6_TYPES,
    gap_length_histograms,
    interrupt_time_series,
    type_coincidence,
)


class TestGapLengthHistograms:
    def test_covers_requested_types(self, nytimes_run):
        histograms = gap_length_histograms([nytimes_run], core=-1)
        assert set(histograms) == set(FIG6_TYPES)

    def test_meltdown_floor(self, nytimes_run):
        """Fig 6: every interrupt-caused gap exceeds ~1.5 µs."""
        histograms = gap_length_histograms([nytimes_run], core=-1)
        for hist in histograms.values():
            if hist.n_samples:
                assert hist.min_ns() >= 1.5 * US - 1e-6

    def test_softirq_broader_than_network(self, nytimes_run):
        """Deferred work has a wider handling-time spread (Fig 6)."""
        histograms = gap_length_histograms([nytimes_run], core=-1)
        softirq = histograms[InterruptType.SOFTIRQ_NET_RX].samples
        network = histograms[InterruptType.NETWORK_RX].samples
        assert softirq.std() > network.std()

    def test_mode_within_histogram_range(self, nytimes_run):
        histograms = gap_length_histograms([nytimes_run], core=-1)
        timer = histograms[InterruptType.TIMER]
        assert 1.5 * US < timer.mode_ns() < 12 * US

    def test_invalid_binning_rejected(self, nytimes_run):
        with pytest.raises(ValueError):
            gap_length_histograms([nytimes_run], bin_width_ns=0)


class TestTypeCoincidence:
    def test_irq_work_rides_timer_ticks(self, nytimes_run):
        """IRQ work cannot fire alone; most of its gaps hold a tick."""
        coincidence = type_coincidence(
            [nytimes_run], InterruptType.IRQ_WORK, InterruptType.TIMER, core=-1
        )
        assert coincidence > 0.4

    def test_nan_when_type_absent(self, nytimes_run):
        coincidence = type_coincidence(
            [nytimes_run], InterruptType.SPURIOUS, InterruptType.TIMER
        )
        assert np.isnan(coincidence)


class TestInterruptTimeSeries:
    def test_average_over_runs(self, nytimes_run):
        times, fraction = interrupt_time_series([nytimes_run, nytimes_run])
        assert len(times) == len(fraction)
        assert fraction.max() <= 1.0

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            interrupt_time_series([])

    def test_type_filtering(self, nytimes_run):
        _, total = interrupt_time_series([nytimes_run])
        _, resched = interrupt_time_series(
            [nytimes_run], types=[InterruptType.RESCHED_IPI]
        )
        assert resched.sum() < total.sum()
