"""Tests for gap ↔ interrupt attribution (§5.2)."""

import numpy as np
import pytest

from repro.sim.interrupts import InterruptType
from repro.tracing.attribution import AttributedGap, attribute_gaps
from repro.tracing.ebpf import KprobeTracer, TracerConfig


class TestAttribution:
    def test_paper_claim_over_99_percent(self, nytimes_run):
        """>99 % of gaps longer than 100 ns are caused by interrupts."""
        report = attribute_gaps(KprobeTracer(nytimes_run))
        assert report.n_gaps > 100
        assert report.attributed_fraction > 0.99

    def test_restricted_tracer_misses_gaps(self, nytimes_run):
        """A tracer that can only see timers cannot explain everything."""
        config = TracerConfig(traceable_types=frozenset({InterruptType.TIMER}))
        report = attribute_gaps(KprobeTracer(nytimes_run, config=config))
        assert report.attributed_fraction < 0.9

    def test_gap_lengths_above_threshold(self, nytimes_run):
        report = attribute_gaps(KprobeTracer(nytimes_run), threshold_ns=1_000.0)
        assert all(g.length_ns > 1_000.0 for g in report.gaps)

    def test_type_counter_covers_active_types(self, nytimes_run):
        report = attribute_gaps(KprobeTracer(nytimes_run))
        counter = report.type_counter()
        assert counter[InterruptType.TIMER] > 0

    def test_gap_lengths_for_type(self, nytimes_run):
        report = attribute_gaps(KprobeTracer(nytimes_run))
        lengths = report.gap_lengths_for_type(InterruptType.TIMER)
        assert len(lengths) > 0
        assert lengths.min() > report.threshold_ns

    def test_max_gaps_limits_work(self, nytimes_run):
        report = attribute_gaps(KprobeTracer(nytimes_run), max_gaps=10)
        assert report.n_gaps == 10

    def test_negative_threshold_rejected(self, nytimes_run):
        with pytest.raises(ValueError):
            attribute_gaps(KprobeTracer(nytimes_run), threshold_ns=-1)

    def test_empty_report_fraction_is_one(self):
        from repro.tracing.attribution import AttributionReport

        report = AttributionReport(gaps=[], threshold_ns=100.0)
        assert report.attributed_fraction == 1.0


class TestAttributedGap:
    def test_properties(self):
        gap = AttributedGap(
            start_ns=10.0,
            end_ns=25.0,
            interrupt_types=(InterruptType.TIMER,),
            causes=("tick",),
        )
        assert gap.length_ns == 15.0
        assert gap.attributed

    def test_unattributed(self):
        gap = AttributedGap(start_ns=0, end_ns=1, interrupt_types=(), causes=())
        assert not gap.attributed
