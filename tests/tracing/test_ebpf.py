"""Tests for the eBPF-style kernel tracer."""

import numpy as np
import pytest

from repro.sim.events import MS
from repro.sim.interrupts import InterruptType
from repro.tracing.ebpf import KprobeTracer, TracerConfig


class TestKprobeTracer:
    def test_traces_attacker_core_by_default(self, nytimes_run):
        tracer = KprobeTracer(nytimes_run)
        assert tracer.core_index == nytimes_run.config.attacker_core

    def test_out_of_range_core_rejected(self, nytimes_run):
        with pytest.raises(ValueError):
            KprobeTracer(nytimes_run, core=9)

    def test_full_visibility_by_default(self, nytimes_run):
        tracer = KprobeTracer(nytimes_run)
        assert len(tracer) == len(nytimes_run.attacker_timeline)

    def test_restricted_visibility(self, nytimes_run):
        """Pre-5.11 kernels restrict which functions are traceable."""
        config = TracerConfig(traceable_types=frozenset({InterruptType.TIMER}))
        tracer = KprobeTracer(nytimes_run, config=config)
        assert 0 < len(tracer) < len(nytimes_run.attacker_timeline)
        assert all(r.itype is InterruptType.TIMER for r in tracer.log())

    def test_log_in_time_order(self, nytimes_run):
        log = KprobeTracer(nytimes_run).log()
        arrivals = [r.arrival_ns for r in log]
        assert arrivals == sorted(arrivals)

    def test_handler_time_by_type_sums_to_total(self, nytimes_run):
        tracer = KprobeTracer(nytimes_run)
        by_type = tracer.handler_time_by_type()
        timeline = nytimes_run.attacker_timeline
        total = float((timeline.ends - timeline.starts).sum())
        assert sum(by_type.values()) == pytest.approx(total)


class TestHandlerTimeFraction:
    def test_fractions_bounded(self, nytimes_run):
        tracer = KprobeTracer(nytimes_run)
        _, fraction = tracer.handler_time_fraction(100 * MS)
        assert fraction.min() >= 0.0
        assert fraction.max() <= 1.0

    def test_total_consistent_with_stolen_time(self, nytimes_run):
        tracer = KprobeTracer(nytimes_run)
        times, fraction = tracer.handler_time_fraction(100 * MS)
        busy_total = float(fraction.sum() * 100 * MS)
        timeline = nytimes_run.attacker_timeline
        handler_total = float((timeline.ends - timeline.starts).sum())
        assert busy_total == pytest.approx(handler_total, rel=0.05)

    def test_type_filter_reduces(self, nytimes_run):
        tracer = KprobeTracer(nytimes_run)
        _, all_types = tracer.handler_time_fraction(100 * MS)
        _, timers_only = tracer.handler_time_fraction(
            100 * MS, types=[InterruptType.TIMER]
        )
        assert timers_only.sum() < all_types.sum()

    def test_invalid_window_rejected(self, nytimes_run):
        with pytest.raises(ValueError):
            KprobeTracer(nytimes_run).handler_time_fraction(0)
