"""Tests for the execution engine: scheduling, knobs, timings, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attacker import LoopCountingAttacker
from repro.core.pipeline import FingerprintingPipeline
from repro.engine import (
    ExecutionEngine,
    RunContext,
    TaskFailedError,
    resolve_jobs,
    resolve_retries,
    resolve_task_timeout,
)
from repro.engine.engine import (
    JOBS_ENV_VAR,
    RETRIES_ENV_VAR,
    TASK_TIMEOUT_ENV_VAR,
)
from repro.engine import faults
from repro.sim.machine import MachineConfig
from repro.workload.browser import CHROME, LINUX
from tests.conftest import TINY


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """These tests assert exact retry/error counts; a CI-level
    BIGGERFISH_FAULTS plan would skew them (test_faults.py opts in)."""
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)


def _square(x: int) -> int:
    """Module-level so it pickles into worker processes."""
    return x * x


def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("three is right out")
    return x * x


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestResolveRetries:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV_VAR, raising=False)
        assert resolve_retries() == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV_VAR, "5")
        assert resolve_retries() == 5

    def test_zero_allowed(self):
        assert resolve_retries(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_retries(-1)

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV_VAR, "lots")
        with pytest.raises(ValueError):
            resolve_retries()


class TestResolveTaskTimeout:
    def test_default_is_no_timeout(self, monkeypatch):
        monkeypatch.delenv(TASK_TIMEOUT_ENV_VAR, raising=False)
        assert resolve_task_timeout() is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV_VAR, "2.5")
        assert resolve_task_timeout() == 2.5

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV_VAR, "2.5")
        assert resolve_task_timeout(9.0) == 9.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_task_timeout(0)

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV_VAR, "forever")
        with pytest.raises(ValueError):
            resolve_task_timeout()


class TestMap:
    def test_inline_preserves_order(self):
        engine = ExecutionEngine(jobs=1)
        assert engine.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        items = list(range(23))
        serial = ExecutionEngine(jobs=1).map(_square, items)
        parallel = ExecutionEngine(jobs=2).map(_square, items)
        assert serial == parallel

    def test_empty_input(self):
        assert ExecutionEngine(jobs=2).map(_square, []) == []

    def test_stage_timings_accumulate(self):
        engine = ExecutionEngine(jobs=1)
        engine.map(_square, [1, 2, 3], stage="demo")
        engine.map(_square, [4], stage="demo")
        snapshot = engine.timings_snapshot()
        assert snapshot["demo"]["tasks"] == 4
        assert snapshot["demo"]["seconds"] >= 0.0
        engine.reset_timings()
        assert engine.timings_snapshot() == {}

    def test_per_task_spread_serial(self):
        engine = ExecutionEngine(jobs=1)
        engine.map(_square, [1, 2, 3, 4], stage="demo")
        spread = engine.timings_snapshot()["demo"]["task_seconds"]
        assert set(spread) == {"min", "mean", "max"}
        assert 0.0 <= spread["min"] <= spread["mean"] <= spread["max"]

    def test_per_task_spread_parallel(self):
        engine = ExecutionEngine(jobs=2)
        engine.map(_square, list(range(8)), stage="demo")
        snapshot = engine.timings_snapshot()["demo"]
        assert snapshot["tasks"] == 8
        spread = snapshot["task_seconds"]
        assert spread["min"] <= spread["mean"] <= spread["max"]

    def test_per_task_spread_accumulates_across_maps(self):
        engine = ExecutionEngine(jobs=1)
        engine.map(_square, [1, 2], stage="demo")
        engine.map(_square, [3], stage="demo")
        snapshot = engine.timings_snapshot()["demo"]
        assert snapshot["tasks"] == 3
        assert snapshot["task_seconds"]["mean"] >= snapshot["task_seconds"]["min"]
        engine.reset_timings()
        assert engine.stage_task_stats == {}

    def test_failed_map_records_only_completed_tasks(self):
        """A failed stage must not claim the whole item count ran —
        manifests of crashed runs used to overstate work done."""
        engine = ExecutionEngine(jobs=1, retries=0)
        with pytest.raises(TaskFailedError) as excinfo:
            engine.map(_fail_on_three, [0, 1, 2, 3, 4, 5], stage="demo")
        assert excinfo.value.task_error.index == 3
        assert excinfo.value.task_error.error_type == "ValueError"
        snapshot = engine.timings_snapshot()["demo"]
        assert snapshot["tasks"] == 3  # items 0..2 completed, 3 failed
        assert snapshot["task_errors"][0]["kind"] == "exception"

    def test_deterministic_failure_exhausts_retries(self):
        engine = ExecutionEngine(jobs=1, retries=2, backoff_s=0.001)
        with pytest.raises(TaskFailedError) as excinfo:
            engine.map(_fail_on_three, [3], stage="demo")
        assert excinfo.value.task_error.attempt == 2  # 1 try + 2 retries
        assert engine.stage_retries["demo"] == 2
        assert engine.fault_totals["retries"] == 2

    def test_original_error_is_chained(self):
        engine = ExecutionEngine(jobs=1, retries=0)
        with pytest.raises(TaskFailedError) as excinfo:
            engine.map(_fail_on_three, [3])
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestRunContext:
    def test_default_engine_attached(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        ctx = RunContext(scale=TINY, seed=7)
        assert ctx.engine is not None
        assert ctx.engine.jobs == 1
        assert ctx.cache is None

    def test_with_replaces_fields(self):
        ctx = RunContext(scale=TINY, seed=7)
        bumped = ctx.with_(seed=8)
        assert bumped.seed == 8
        assert bumped.scale is ctx.scale


class TestParallelDeterminism:
    """Same seed -> bit-identical results, regardless of worker count."""

    def _evaluate(self, jobs: int):
        pipeline = FingerprintingPipeline(
            MachineConfig(os=LINUX),
            CHROME,
            attacker=LoopCountingAttacker(),
            scale=TINY,
            seed=11,
            engine=ExecutionEngine(jobs=jobs),
        )
        return pipeline.run_closed_world()

    def test_closed_world_bit_identical(self):
        serial = self._evaluate(jobs=1)
        parallel = self._evaluate(jobs=2)
        assert serial.fold_top1 == parallel.fold_top1
        assert serial.fold_top5 == parallel.fold_top5

    def test_collect_traces_bit_identical(self):
        from repro.core.collector import TraceCollector
        from repro.workload.website import profile_for

        site = profile_for("nytimes.com")

        def collect(jobs):
            collector = TraceCollector(
                MachineConfig(os=LINUX), CHROME,
                period_ns=10_000_000, seed=3,
                engine=ExecutionEngine(jobs=jobs),
            )
            return list(collector.collect(site, 4))

        for a, b in zip(collect(1), collect(2)):
            np.testing.assert_array_equal(a.counters, b.counters)
            np.testing.assert_array_equal(a.observed_starts, b.observed_starts)
