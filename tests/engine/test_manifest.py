"""RunManifest: as_dict round-trip, failure marking, atomic writes."""

from __future__ import annotations

import json
from unittest import mock

import pytest

from repro.engine import ExecutionEngine, TraceCache
from repro.engine.engine import TaskError, TaskFailedError
from repro.engine.manifest import MANIFEST_FILENAME, RunManifest


def _manifest() -> RunManifest:
    manifest = RunManifest(scale="smoke", seed=7, jobs=2, created_unix=123.456)
    manifest.add_experiment(
        "table1",
        elapsed_s=2.5,
        stages={
            "collect": {
                "seconds": 2.0,
                "tasks": 4,
                "task_seconds": {"min": 0.4, "mean": 0.5, "max": 0.6},
            }
        },
    )
    return manifest


class TestAsDict:
    def test_json_round_trip(self):
        manifest = _manifest()
        restored = json.loads(json.dumps(manifest.as_dict()))
        assert restored == manifest.as_dict()
        assert restored["schema"] == 1
        assert restored["status"] == "ok"
        assert restored["scale"] == "smoke"
        assert restored["seed"] == 7
        assert restored["jobs"] == 2
        assert restored["total_elapsed_s"] == 2.5
        assert restored["experiments"]["table1"]["stages"]["collect"]["tasks"] == 4

    def test_optional_fields_omitted_when_unset(self):
        out = _manifest().as_dict()
        assert "error" not in out
        assert "profile" not in out

    def test_profile_included_when_set(self):
        manifest = _manifest()
        manifest.profile = {"events": 3}
        assert manifest.as_dict()["profile"] == {"events": 3}

    def test_finalize_folds_cache_stats(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache=TraceCache(tmp_path / "cache"))
        manifest = _manifest()
        manifest.finalize(engine)
        cache = manifest.as_dict()["cache"]
        assert cache["entries"] == 0
        assert cache["hits"] == 0 and cache["misses"] == 0

    def test_no_cache_engine_leaves_cache_none(self):
        manifest = _manifest()
        manifest.finalize(ExecutionEngine(jobs=1, cache=None))
        assert manifest.as_dict()["cache"] is None


class TestFaults:
    def test_finalize_omits_faults_when_clean(self):
        manifest = _manifest()
        manifest.finalize(ExecutionEngine(jobs=1))
        assert "faults" not in manifest.as_dict()

    def test_finalize_folds_fault_totals(self):
        engine = ExecutionEngine(jobs=1)
        engine.fault_totals["retries"] = 3
        engine.fault_totals["timeouts"] = 1
        manifest = _manifest()
        manifest.finalize(engine)
        out = manifest.as_dict()
        assert out["faults"]["retries"] == 3
        assert out["faults"]["timeouts"] == 1
        assert json.loads(json.dumps(out)) == out  # stays JSON-serializable

    def test_mark_failed_attaches_task_record(self):
        record = TaskError(
            stage="collect", index=4, attempt=2, kind="timeout",
            error_type="TimeoutError", message="too slow",
        )
        manifest = _manifest()
        try:
            raise TaskFailedError(record)
        except TaskFailedError as exc:
            manifest.mark_failed("table1", exc)
        out = manifest.as_dict()
        assert out["status"] == "failed"
        assert out["error"]["type"] == "TaskFailedError"
        assert out["error"]["task"]["index"] == 4
        assert out["error"]["task"]["attempt"] == 2
        assert out["error"]["task"]["kind"] == "timeout"

    def test_plain_failure_has_no_task_record(self):
        manifest = _manifest()
        manifest.mark_failed("table1", ValueError("boom"))
        assert "task" not in manifest.as_dict()["error"]


class TestMarkFailed:
    def test_records_exception_summary(self):
        manifest = _manifest()
        try:
            raise ValueError("boom")
        except ValueError as exc:
            manifest.mark_failed("fig5", exc)
        out = manifest.as_dict()
        assert out["status"] == "failed"
        assert out["error"]["experiment"] == "fig5"
        assert out["error"]["type"] == "ValueError"
        assert out["error"]["message"] == "boom"
        assert out["error"]["where"].startswith(__file__)

    def test_partial_experiments_survive(self):
        manifest = _manifest()
        manifest.mark_failed("fig5", RuntimeError("late"))
        assert "table1" in manifest.as_dict()["experiments"]


class TestAtomicWrite:
    def test_writes_manifest(self, tmp_path):
        path = _manifest().write(tmp_path)
        assert path == tmp_path / MANIFEST_FILENAME
        assert json.loads(path.read_text())["scale"] == "smoke"

    def test_overwrite_is_atomic(self, tmp_path):
        first = _manifest()
        first.write(tmp_path)
        second = _manifest()
        second.seed = 99
        second.write(tmp_path)
        assert json.loads((tmp_path / MANIFEST_FILENAME).read_text())["seed"] == 99
        assert sorted(tmp_path.glob(".tmp-manifest-*")) == []

    def test_crash_leaves_previous_manifest_intact(self, tmp_path):
        _manifest().write(tmp_path)
        broken = _manifest()
        broken.seed = 99
        with mock.patch("os.replace", side_effect=OSError("disk full")):
            with pytest.raises(OSError):
                broken.write(tmp_path)
        # The old manifest survives and no temp file is left behind.
        assert json.loads((tmp_path / MANIFEST_FILENAME).read_text())["seed"] == 7
        assert sorted(tmp_path.glob(".tmp-manifest-*")) == []
