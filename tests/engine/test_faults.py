"""Fault-injection tests: the engine's recovery paths, exercised on purpose.

Every test here asserts the tentpole guarantee from the engine docs: a
parallel run under injected faults (transient exceptions, hung tasks,
killed workers) completes **bit-identical** to a clean serial run, and
the manifest records what went wrong along the way.

Seeds are chosen so ``FaultPlan.decision`` hits a known set of task
indices; each test recomputes the expectation from the plan instead of
hard-coding counts, so a hash change fails loudly rather than silently
testing nothing.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine import ExecutionEngine, RunManifest, TaskFailedError
from repro.engine import faults
from repro.engine.faults import FaultPlan, InjectedFault


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Isolate from any CI-level BIGGERFISH_FAULTS setting."""
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    faults._CACHED = None


def _square(x: int) -> int:
    """Module-level so it pickles into worker processes."""
    return x * x


def _injected_indices(plan: FaultPlan, stage: str, n: int) -> dict:
    """Mode -> task indices the plan sabotages on the first attempt."""
    hits: dict = {}
    for i in range(n):
        mode = plan.decision(stage, i, 0)
        if mode:
            hits.setdefault(mode, []).append(i)
    return hits


class TestFaultPlan:
    def test_spec_parse_round_trip(self):
        plan = FaultPlan(
            rate=0.25, modes=("raise", "kill"), seed=9, max_attempt=3,
            hang_s=0.5, parent_pid=1234,
        )
        assert FaultPlan.parse(plan.spec()) == plan

    def test_parse_defaults(self):
        assert FaultPlan.parse("rate=0.1") == FaultPlan(rate=0.1)

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.parse("rate=0.1,chaos=max")

    def test_parse_rejects_malformed_component(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.parse("rate")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -0.1},
            {"rate": 1.5},
            {"modes": ("raise", "explode")},
            {"modes": ()},
            {"max_attempt": 0},
            {"hang_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_decision_is_deterministic(self):
        plan = FaultPlan(rate=0.5, modes=("raise", "hang"), seed=4)
        first = [plan.decision("w", i, 0) for i in range(50)]
        second = [plan.decision("w", i, 0) for i in range(50)]
        assert first == second
        assert any(first)  # rate 0.5 over 50 tasks must hit something

    def test_decision_respects_rate_zero(self):
        plan = FaultPlan(rate=0.0)
        assert all(plan.decision("w", i, 0) is None for i in range(20))

    def test_decision_respects_rate_one(self):
        plan = FaultPlan(rate=1.0)
        assert all(plan.decision("w", i, 0) == "raise" for i in range(20))

    def test_decision_stops_past_max_attempt(self):
        plan = FaultPlan(rate=1.0, max_attempt=2)
        assert plan.decision("w", 0, 0) == "raise"
        assert plan.decision("w", 0, 1) == "raise"
        assert plan.decision("w", 0, 2) is None

    def test_seed_changes_targets(self):
        a = _injected_indices(FaultPlan(rate=0.3, seed=1), "w", 100)
        b = _injected_indices(FaultPlan(rate=0.3, seed=2), "w", 100)
        assert a != b


class TestActivation:
    def test_activate_fills_parent_pid_and_exports(self):
        exported = faults.activate(FaultPlan(rate=0.1))
        try:
            assert exported.parent_pid == os.getpid()
            assert faults.active_plan() == exported
        finally:
            faults.deactivate()
        assert faults.active_plan() is None

    def test_injected_context_restores_env(self):
        with faults.injected(FaultPlan(rate=0.1)) as plan:
            assert os.environ[faults.FAULTS_ENV_VAR] == plan.spec()
        assert faults.FAULTS_ENV_VAR not in os.environ

    def test_maybe_inject_noop_without_plan(self):
        faults.maybe_inject("w", 0, 0)  # must not raise


class TestParentSafety:
    """kill/hang must degrade to a plain raise in the scheduler process."""

    def test_kill_degrades_to_raise_in_parent(self):
        with faults.injected(FaultPlan(rate=1.0, modes=("kill",))):
            with pytest.raises(InjectedFault, match="kill"):
                faults.maybe_inject("w", 0, 0)
        # Reaching this line at all proves os._exit did not run.

    def test_hang_does_not_sleep_in_parent(self):
        with faults.injected(FaultPlan(rate=1.0, modes=("hang",), hang_s=30.0)):
            started = time.perf_counter()
            with pytest.raises(InjectedFault, match="hang"):
                faults.maybe_inject("w", 0, 0)
            assert time.perf_counter() - started < 1.0

    def test_serial_engine_survives_kill_faults(self):
        items = list(range(8))
        engine = ExecutionEngine(jobs=1, backoff_s=0.001)
        with faults.injected(FaultPlan(rate=1.0, modes=("kill",), seed=5)):
            results = engine.map(_square, items, stage="w")
        assert results == [x * x for x in items]
        assert engine.fault_totals["retries"] == len(items)


class TestParallelRecovery:
    """Injected faults in worker processes; results stay bit-identical."""

    ITEMS = list(range(24))
    EXPECTED = [x * x for x in range(24)]

    def test_transient_raises_are_retried(self):
        plan = FaultPlan(rate=0.3, modes=("raise",), seed=3)
        injected = _injected_indices(plan, "w", len(self.ITEMS))["raise"]
        assert len(injected) == 7  # seed chosen for a meaningful hit count
        engine = ExecutionEngine(jobs=2, backoff_s=0.001)
        with faults.injected(plan):
            results = engine.map(_square, self.ITEMS, stage="w")
        assert results == self.EXPECTED
        assert engine.fault_totals["retries"] == len(injected)
        assert engine.fault_totals["task_errors"] == len(injected)
        errors = engine.stage_errors["w"]
        assert sorted(e.index for e in errors) == injected
        assert {e.kind for e in errors} == {"exception"}
        assert {e.error_type for e in errors} == {"InjectedFault"}

    def test_killed_workers_respawn_pool(self):
        plan = FaultPlan(rate=0.2, modes=("kill",), seed=7)
        assert _injected_indices(plan, "w", len(self.ITEMS)).get("kill")
        engine = ExecutionEngine(jobs=2, backoff_s=0.001)
        with faults.injected(plan):
            results = engine.map(_square, self.ITEMS, stage="w")
        assert results == self.EXPECTED
        assert engine.fault_totals["tasks_lost"] >= 1
        assert engine.fault_totals["pool_respawns"] == 1
        assert any(e.kind == "worker-lost" for e in engine.stage_errors["w"])

    @pytest.mark.slow
    def test_hung_tasks_time_out_and_retry(self):
        plan = FaultPlan(rate=0.2, modes=("hang",), seed=1, hang_s=1.2)
        assert _injected_indices(plan, "w", len(self.ITEMS)).get("hang")
        engine = ExecutionEngine(jobs=2, task_timeout=0.4, backoff_s=0.001)
        with faults.injected(plan):
            results = engine.map(_square, self.ITEMS, stage="w")
        assert results == self.EXPECTED
        assert engine.fault_totals["timeouts"] >= 1
        assert engine.stage_timeouts["w"] >= 1
        assert any(e.kind == "timeout" for e in engine.stage_errors["w"])

    def test_twice_killed_pool_falls_back_inline(self):
        # rate=1.0 + max_attempt=2 kills every task's first two attempts:
        # round 1 breaks the pool (respawn), round 2 breaks it again, and
        # the engine must finish inline, where kill degrades to a raise
        # that max_attempt has already silenced.
        plan = FaultPlan(rate=1.0, modes=("kill",), max_attempt=2)
        items = list(range(4))
        engine = ExecutionEngine(jobs=2, retries=3, backoff_s=0.001)
        with faults.injected(plan):
            results = engine.map(_square, items, stage="w")
        assert results == [x * x for x in items]
        assert engine.fault_totals["pool_respawns"] == 1
        assert engine.fault_totals["tasks_lost"] >= 1

    @pytest.mark.slow
    def test_combined_faults_bit_identical_with_manifest(self):
        # One run with all three fault modes live at once.  The kill
        # usually breaks the pool while hangs are queued, so per-mode
        # counters are timing-dependent; what is *guaranteed* is the
        # result and that the manifest saw the faults.
        plan = FaultPlan(rate=0.35, modes=("raise", "hang", "kill"), seed=31)
        hits = _injected_indices(plan, "w", len(self.ITEMS))
        assert set(hits) == {"raise", "hang", "kill"}  # seed covers all modes
        engine = ExecutionEngine(jobs=4, task_timeout=0.5, backoff_s=0.001)
        with faults.injected(plan):
            results = engine.map(_square, self.ITEMS, stage="w")
        assert results == self.EXPECTED
        assert engine.fault_totals["retries"] > 0

        manifest = RunManifest(scale="tiny", seed=0, jobs=4)
        manifest.add_experiment("demo", 1.0, engine.timings_snapshot())
        manifest.finalize(engine)
        record = manifest.as_dict()
        assert record["faults"]["retries"] == engine.fault_totals["retries"]
        stage = record["experiments"]["demo"]["stages"]["w"]
        assert stage["tasks"] == len(self.ITEMS)
        assert stage["task_errors"]  # structured records made it through

    def test_exhausted_budget_raises_task_failed(self):
        plan = FaultPlan(rate=1.0, modes=("raise",), max_attempt=99)
        engine = ExecutionEngine(jobs=1, retries=1, backoff_s=0.001)
        with faults.injected(plan):
            with pytest.raises(TaskFailedError, match="after 2 attempt"):
                engine.map(_square, [0], stage="w")
        assert engine.stage_tasks["w"] == 0  # nothing actually completed
        assert engine.fault_totals["retries"] == 1


class TestPipelineUnderFaults:
    """The paper pipeline itself, attacked: traces stay bit-identical."""

    @pytest.mark.slow
    def test_collected_traces_survive_injection(self):
        from repro.core.collector import TraceCollector
        from repro.sim.machine import MachineConfig
        from repro.workload.browser import CHROME, LINUX
        from repro.workload.website import profile_for

        site = profile_for("nytimes.com")

        def collect(jobs):
            collector = TraceCollector(
                MachineConfig(os=LINUX), CHROME,
                period_ns=10_000_000, seed=3,
                engine=ExecutionEngine(jobs=jobs, backoff_s=0.001),
            )
            return list(collector.collect(site, 6))

        clean = collect(1)
        plan = FaultPlan(rate=0.4, modes=("raise",), seed=2)
        assert _injected_indices(plan, "collect", 6)  # plan does hit tasks
        with faults.injected(plan):
            faulty = collect(2)
        for a, b in zip(clean, faulty):
            np.testing.assert_array_equal(a.counters, b.counters)
            np.testing.assert_array_equal(a.observed_starts, b.observed_starts)
