"""Tests for the content-addressed trace cache and its key construction."""

from __future__ import annotations

import dataclasses
import enum

import numpy as np
import pytest

from repro.core.collector import TraceCollector
from repro.engine import ExecutionEngine, TraceCache, Uncacheable, cache_key, stable_token
from repro.engine.cache import CACHE_DIR_ENV_VAR, default_cache_dir
from repro.sim.machine import MachineConfig
from repro.workload.browser import CHROME, FIREFOX, LINUX
from repro.workload.website import profile_for


@dataclasses.dataclass
class _Point:
    x: int
    y: float


class _Color(enum.Enum):
    RED = 1
    BLUE = 2


class TestStableToken:
    def test_primitives_distinct(self):
        # 1, 1.0 and True collide under hash(); the token keeps them apart.
        assert len({stable_token(v) for v in (1, 1.0, True, "1", None)}) == 5

    def test_ndarray_content_addressed(self):
        a = stable_token(np.arange(5))
        b = stable_token(np.arange(5))
        c = stable_token(np.arange(6))
        assert a == b != c

    def test_dataclass_fields(self):
        assert stable_token(_Point(1, 2.0)) == stable_token(_Point(1, 2.0))
        assert stable_token(_Point(1, 2.0)) != stable_token(_Point(2, 2.0))

    def test_enum_and_containers(self):
        assert "RED" in stable_token(_Color.RED)
        assert stable_token({"b": 2, "a": 1}) == stable_token({"a": 1, "b": 2})
        assert stable_token([1, 2]) != stable_token([2, 1])

    def test_opt_in_via_cache_token(self):
        class Weird:
            def cache_token(self) -> str:
                return "w1"

        assert "w1" in stable_token(Weird())

    def test_unknown_object_raises(self):
        with pytest.raises(Uncacheable):
            stable_token(object())

    def test_mixed_key_dict_raises_uncacheable(self):
        # sorted() cannot order str and int keys; the raw TypeError must
        # surface as Uncacheable so cache users bypass instead of crash.
        with pytest.raises(Uncacheable):
            stable_token({"a": 1, 1: "a"})

    def test_mixed_key_dict_nested_in_dataclass(self):
        @dataclasses.dataclass
        class Holder:
            table: dict

        with pytest.raises(Uncacheable):
            stable_token(Holder({"a": 1, 2: "b"}))


class TestCacheKey:
    def test_stable_across_calls(self):
        components = {"seed": 1, "site": "nytimes"}
        assert cache_key(components) == cache_key(dict(components))

    def test_any_component_changes_key(self):
        base = {"seed": 1, "period_ns": 5_000_000, "trace_index": 0}
        reference = cache_key(base)
        for field_name, changed in (
            ("seed", 2),
            ("period_ns", 10_000_000),
            ("trace_index", 1),
        ):
            assert cache_key({**base, field_name: changed}) != reference


@pytest.fixture
def cache(tmp_path) -> TraceCache:
    return TraceCache(tmp_path / "cache")


@pytest.fixture
def collector(cache) -> TraceCollector:
    return TraceCollector(
        MachineConfig(os=LINUX), CHROME,
        period_ns=10_000_000, seed=5, cache=cache,
    )


class TestTraceCacheRoundTrip:
    def test_get_missing_is_miss(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.stats.misses == 1

    def test_put_then_get(self, cache, collector):
        site = profile_for("nytimes.com")
        trace = collector._collect_uncached(site, 0, None)
        key = collector._cache_key(site, 0, None)
        cache.put(key, trace)
        loaded = cache.get(key)
        np.testing.assert_array_equal(loaded.counters, trace.counters)
        np.testing.assert_array_equal(loaded.observed_starts, trace.observed_starts)
        assert loaded.label == trace.label
        assert loaded.attacker == trace.attacker
        assert loaded.spec == trace.spec
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_second_dataset_collection_skips_simulation(self, cache, monkeypatch):
        sites = [profile_for("nytimes.com"), profile_for("amazon.com")]

        def collect():
            return TraceCollector(
                MachineConfig(os=LINUX), CHROME,
                period_ns=10_000_000, seed=5, cache=cache,
            ).collect(sites, traces_per_site=2).stacked()

        x_cold, y_cold = collect()
        assert cache.stats.puts == 4

        calls = {"n": 0}
        original = TraceCollector._simulate

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(TraceCollector, "_simulate", counting)
        x_warm, y_warm = collect()
        assert calls["n"] == 0, "warm run must not simulate anything"
        np.testing.assert_array_equal(x_cold, x_warm)
        assert y_cold == y_warm

    def test_label_override_applied_after_cache(self, cache):
        site = profile_for("nytimes.com")

        def collect():
            return TraceCollector(
                MachineConfig(os=LINUX), CHROME,
                period_ns=10_000_000, seed=5, cache=cache,
            ).collect([site], traces_per_site=2, labels=["other"]).stacked()

        _, y_cold = collect()
        _, y_warm = collect()
        assert y_cold == y_warm == ["other", "other"]


class TestCacheInvalidation:
    @pytest.mark.parametrize(
        "variant",
        ["seed", "period", "browser", "attacker", "site", "trace_index"],
    )
    def test_key_component_changes_invalidate(self, variant, cache):
        from repro.core.attacker import SweepCountingAttacker

        base = dict(
            machine=MachineConfig(os=LINUX), browser=CHROME,
            period_ns=10_000_000, seed=5, cache=cache,
        )
        reference = TraceCollector(**base)
        site, index = profile_for("nytimes.com"), 0
        key = reference._cache_key(site, index, None)
        if variant == "seed":
            other = TraceCollector(**{**base, "seed": 6})
        elif variant == "period":
            other = TraceCollector(**{**base, "period_ns": 5_000_000})
        elif variant == "browser":
            other = TraceCollector(**{**base, "browser": FIREFOX})
        elif variant == "attacker":
            other = TraceCollector(**base, attacker=SweepCountingAttacker())
        else:
            other = reference
        if variant == "site":
            changed = other._cache_key(profile_for("amazon.com"), index, None)
        elif variant == "trace_index":
            changed = other._cache_key(site, 1, None)
        else:
            changed = other._cache_key(site, index, None)
        assert changed != key

    def test_uncacheable_noise_bypasses(self, collector):
        from repro.core.collector import NoiseHooks

        class Opaque:
            def inject(self, machine, horizon_ns, rng):
                return []

        noise = NoiseHooks(interrupt_injector=Opaque())
        assert collector._cache_key(profile_for("nytimes.com"), 0, noise) is None
        # Collection still works, just without caching.
        trace = collector.collect(profile_for("nytimes.com"), noise=noise)[0]
        assert len(trace.counters) > 0
        assert collector.cache.stats.puts == 0

    def test_mixed_key_dict_component_bypasses(self, collector):
        """A mixed-type-key dict anywhere in a component must mean
        "uncacheable", not a TypeError escaping into the collector."""
        from repro.core.collector import NoiseHooks

        @dataclasses.dataclass
        class MixedKeyInjector:
            table: dict

            def inject(self, machine, horizon_ns, rng):
                return []

        noise = NoiseHooks(interrupt_injector=MixedKeyInjector({1: "a", "b": 2}))
        assert collector._cache_key(profile_for("nytimes.com"), 0, noise) is None


class TestCacheMaintenance:
    def test_eviction_respects_cap(self, tmp_path, collector):
        site = profile_for("nytimes.com")
        trace = collector._collect_uncached(site, 0, None)
        small = TraceCache(tmp_path / "small", max_bytes=1)
        small.put("a" * 64, trace)
        small.put("b" * 64, trace)
        # The cap forces the older entry out, but never the entry that
        # was just written — its caller is about to rely on it.
        assert small.stats.evictions == 1
        assert small.info()["entries"] == 1
        assert small.get("b" * 64) is not None

    def test_just_written_entry_survives_tiny_cap(self, tmp_path, collector):
        site = profile_for("nytimes.com")
        trace = collector._collect_uncached(site, 0, None)
        small = TraceCache(tmp_path / "small", max_bytes=1)
        small.put("a" * 64, trace)
        assert small.stats.evictions == 0
        assert small.get("a" * 64) is not None

    def test_info_and_clear(self, cache, collector):
        site = profile_for("nytimes.com")
        trace = collector._collect_uncached(site, 0, None)
        cache.put("b" * 64, trace)
        info = cache.info()
        assert info["entries"] == 1 and info["size_bytes"] > 0
        assert cache.clear() == 1
        assert cache.info()["entries"] == 0

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestCacheAccounting:
    """Regression tests for the tracked-size bookkeeping in ``put``."""

    def _trace(self, collector):
        return collector._collect_uncached(profile_for("nytimes.com"), 0, None)

    def _disk_size(self, cache: TraceCache) -> int:
        return sum(p.stat().st_size for p in sorted(cache.path.glob("*/*.npz")))

    def test_cold_handle_put_does_not_double_count(self, tmp_path, collector):
        """First put on an unscanned handle: the directory scan already
        sees the freshly renamed entry, so adding `written` on top
        double-counted it and triggered premature eviction."""
        trace = self._trace(collector)
        warm = TraceCache(tmp_path / "acct")
        warm.put("a" * 64, trace)
        warm.put("b" * 64, trace)
        cold = TraceCache(tmp_path / "acct")  # same dir, unscanned size
        cold.put("c" * 64, trace)
        assert cold._size_bytes == self._disk_size(cold)
        assert cold._size_bytes == cold.info()["size_bytes"]

    def test_repeated_puts_track_disk_size(self, tmp_path, collector):
        trace = self._trace(collector)
        cache = TraceCache(tmp_path / "acct")
        for key in ("a" * 64, "b" * 64, "c" * 64):
            cache.put(key, trace)
            assert cache._size_bytes == self._disk_size(cache)

    def test_overwriting_put_does_not_double_count(self, tmp_path, collector):
        trace = self._trace(collector)
        cache = TraceCache(tmp_path / "acct")
        cache.put("a" * 64, trace)
        cache.put("a" * 64, trace)  # replaces, must not count twice
        assert cache._size_bytes == self._disk_size(cache)


class TestLRUEviction:
    """Eviction is least-recently-*used*: hits keep entries alive."""

    def test_hot_entry_survives_eviction(self, tmp_path, collector):
        trace = collector._collect_uncached(profile_for("nytimes.com"), 0, None)
        probe = TraceCache(tmp_path / "probe")
        probe.put("0" * 64, trace)
        entry_size = probe.info()["size_bytes"]

        cache = TraceCache(tmp_path / "lru", max_bytes=int(entry_size * 2.5))
        cache.put("a" * 64, trace)  # oldest by write order...
        cache.put("b" * 64, trace)
        for _ in range(3):  # ...but hottest by use
            assert cache.get("a" * 64) is not None
        cache.put("c" * 64, trace)  # over cap: one entry must go
        assert cache.stats.evictions == 1
        assert cache.get("a" * 64) is not None, "hot entry was evicted"
        assert cache.get("c" * 64) is not None, "just-written entry was evicted"
        assert cache.get("b" * 64) is None, "cold entry should have been evicted"

    def test_hit_refreshes_mtime(self, tmp_path, collector):
        import os as _os

        trace = collector._collect_uncached(profile_for("nytimes.com"), 0, None)
        cache = TraceCache(tmp_path / "touch")
        cache.put("a" * 64, trace)
        entry = cache._entry_path("a" * 64)
        _os.utime(entry, (1, 1))  # pretend it is ancient
        assert cache.get("a" * 64) is not None
        assert entry.stat().st_mtime > 1


class TestEngineCacheIntegration:
    def test_parallel_run_populates_and_reuses_cache(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        site = profile_for("weather.com")

        def collect():
            collector = TraceCollector(
                MachineConfig(os=LINUX), CHROME,
                period_ns=10_000_000, seed=9,
                engine=ExecutionEngine(jobs=2, cache=cache),
            )
            return list(collector.collect(site, 3))

        cold = collect()
        assert cache.stats.puts == 3 and cache.stats.hits == 0
        warm = collect()
        assert cache.stats.hits == 3
        for a, b in zip(cold, warm):
            np.testing.assert_array_equal(a.counters, b.counters)
