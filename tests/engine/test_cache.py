"""Tests for the content-addressed trace cache and its key construction."""

from __future__ import annotations

import dataclasses
import enum

import numpy as np
import pytest

from repro.core.collector import TraceCollector
from repro.engine import ExecutionEngine, TraceCache, Uncacheable, cache_key, stable_token
from repro.engine.cache import CACHE_DIR_ENV_VAR, default_cache_dir
from repro.sim.machine import MachineConfig
from repro.workload.browser import CHROME, FIREFOX, LINUX
from repro.workload.website import profile_for


@dataclasses.dataclass
class _Point:
    x: int
    y: float


class _Color(enum.Enum):
    RED = 1
    BLUE = 2


class TestStableToken:
    def test_primitives_distinct(self):
        # 1, 1.0 and True collide under hash(); the token keeps them apart.
        assert len({stable_token(v) for v in (1, 1.0, True, "1", None)}) == 5

    def test_ndarray_content_addressed(self):
        a = stable_token(np.arange(5))
        b = stable_token(np.arange(5))
        c = stable_token(np.arange(6))
        assert a == b != c

    def test_dataclass_fields(self):
        assert stable_token(_Point(1, 2.0)) == stable_token(_Point(1, 2.0))
        assert stable_token(_Point(1, 2.0)) != stable_token(_Point(2, 2.0))

    def test_enum_and_containers(self):
        assert "RED" in stable_token(_Color.RED)
        assert stable_token({"b": 2, "a": 1}) == stable_token({"a": 1, "b": 2})
        assert stable_token([1, 2]) != stable_token([2, 1])

    def test_opt_in_via_cache_token(self):
        class Weird:
            def cache_token(self) -> str:
                return "w1"

        assert "w1" in stable_token(Weird())

    def test_unknown_object_raises(self):
        with pytest.raises(Uncacheable):
            stable_token(object())


class TestCacheKey:
    def test_stable_across_calls(self):
        components = {"seed": 1, "site": "nytimes"}
        assert cache_key(components) == cache_key(dict(components))

    def test_any_component_changes_key(self):
        base = {"seed": 1, "period_ns": 5_000_000, "trace_index": 0}
        reference = cache_key(base)
        for field_name, changed in (
            ("seed", 2),
            ("period_ns", 10_000_000),
            ("trace_index", 1),
        ):
            assert cache_key({**base, field_name: changed}) != reference


@pytest.fixture
def cache(tmp_path) -> TraceCache:
    return TraceCache(tmp_path / "cache")


@pytest.fixture
def collector(cache) -> TraceCollector:
    return TraceCollector(
        MachineConfig(os=LINUX), CHROME,
        period_ns=10_000_000, seed=5, cache=cache,
    )


class TestTraceCacheRoundTrip:
    def test_get_missing_is_miss(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.stats.misses == 1

    def test_put_then_get(self, cache, collector):
        site = profile_for("nytimes.com")
        trace = collector._collect_uncached(site, 0, None)
        key = collector._cache_key(site, 0, None)
        cache.put(key, trace)
        loaded = cache.get(key)
        np.testing.assert_array_equal(loaded.counters, trace.counters)
        np.testing.assert_array_equal(loaded.observed_starts, trace.observed_starts)
        assert loaded.label == trace.label
        assert loaded.attacker == trace.attacker
        assert loaded.spec == trace.spec
        assert cache.stats.hits == 1 and cache.stats.puts == 1

    def test_second_dataset_collection_skips_simulation(self, cache, monkeypatch):
        sites = [profile_for("nytimes.com"), profile_for("amazon.com")]

        def collect():
            return TraceCollector(
                MachineConfig(os=LINUX), CHROME,
                period_ns=10_000_000, seed=5, cache=cache,
            ).collect_dataset(sites, traces_per_site=2)

        x_cold, y_cold = collect()
        assert cache.stats.puts == 4

        calls = {"n": 0}
        original = TraceCollector._simulate

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(TraceCollector, "_simulate", counting)
        x_warm, y_warm = collect()
        assert calls["n"] == 0, "warm run must not simulate anything"
        np.testing.assert_array_equal(x_cold, x_warm)
        assert y_cold == y_warm

    def test_label_override_applied_after_cache(self, cache):
        site = profile_for("nytimes.com")

        def collect():
            return TraceCollector(
                MachineConfig(os=LINUX), CHROME,
                period_ns=10_000_000, seed=5, cache=cache,
            ).collect_dataset([site], traces_per_site=2, labels=["other"])

        _, y_cold = collect()
        _, y_warm = collect()
        assert y_cold == y_warm == ["other", "other"]


class TestCacheInvalidation:
    @pytest.mark.parametrize(
        "variant",
        ["seed", "period", "browser", "attacker", "site", "trace_index"],
    )
    def test_key_component_changes_invalidate(self, variant, cache):
        from repro.core.attacker import SweepCountingAttacker

        base = dict(
            machine=MachineConfig(os=LINUX), browser=CHROME,
            period_ns=10_000_000, seed=5, cache=cache,
        )
        reference = TraceCollector(**base)
        site, index = profile_for("nytimes.com"), 0
        key = reference._cache_key(site, index, None)
        if variant == "seed":
            other = TraceCollector(**{**base, "seed": 6})
        elif variant == "period":
            other = TraceCollector(**{**base, "period_ns": 5_000_000})
        elif variant == "browser":
            other = TraceCollector(**{**base, "browser": FIREFOX})
        elif variant == "attacker":
            other = TraceCollector(**base, attacker=SweepCountingAttacker())
        else:
            other = reference
        if variant == "site":
            changed = other._cache_key(profile_for("amazon.com"), index, None)
        elif variant == "trace_index":
            changed = other._cache_key(site, 1, None)
        else:
            changed = other._cache_key(site, index, None)
        assert changed != key

    def test_uncacheable_noise_bypasses(self, collector):
        from repro.core.collector import NoiseHooks

        class Opaque:
            def inject(self, machine, horizon_ns, rng):
                return []

        noise = NoiseHooks(interrupt_injector=Opaque())
        assert collector._cache_key(profile_for("nytimes.com"), 0, noise) is None
        # Collection still works, just without caching.
        trace = collector.collect_trace(profile_for("nytimes.com"), 0, noise)
        assert len(trace.counters) > 0
        assert collector.cache.stats.puts == 0


class TestCacheMaintenance:
    def test_eviction_respects_cap(self, tmp_path, collector):
        site = profile_for("nytimes.com")
        trace = collector._collect_uncached(site, 0, None)
        small = TraceCache(tmp_path / "small", max_bytes=1)  # everything evicts
        small.put("a" * 64, trace)
        assert small.stats.evictions >= 1
        assert small.info()["entries"] == 0

    def test_info_and_clear(self, cache, collector):
        site = profile_for("nytimes.com")
        trace = collector._collect_uncached(site, 0, None)
        cache.put("b" * 64, trace)
        info = cache.info()
        assert info["entries"] == 1 and info["size_bytes"] > 0
        assert cache.clear() == 1
        assert cache.info()["entries"] == 0

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestEngineCacheIntegration:
    def test_parallel_run_populates_and_reuses_cache(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        site = profile_for("weather.com")

        def collect():
            collector = TraceCollector(
                MachineConfig(os=LINUX), CHROME,
                period_ns=10_000_000, seed=9,
                engine=ExecutionEngine(jobs=2, cache=cache),
            )
            return collector.collect_traces(site, 3)

        cold = collect()
        assert cache.stats.puts == 3 and cache.stats.hits == 0
        warm = collect()
        assert cache.stats.hits == 3
        for a, b in zip(cold, warm):
            np.testing.assert_array_equal(a.counters, b.counters)
