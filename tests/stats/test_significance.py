"""Tests for t-tests, with scipy as the oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.stats.significance import (
    compare_fold_accuracies,
    students_t_test,
    welch_t_test,
)

samples = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=3,
    max_size=40,
)


class TestAgainstScipy:
    @given(samples, samples)
    @settings(max_examples=100, deadline=None)
    def test_students_matches_scipy(self, a, b):
        a, b = np.array(a), np.array(b)
        if a.var(ddof=1) == 0 and b.var(ddof=1) == 0:
            return
        ours = students_t_test(a, b)
        theirs = scipy_stats.ttest_ind(a, b, equal_var=True)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-8, abs=1e-10)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6, abs=1e-10)

    @given(samples, samples)
    @settings(max_examples=100, deadline=None)
    def test_welch_matches_scipy(self, a, b):
        a, b = np.array(a), np.array(b)
        if a.var(ddof=1) == 0 or b.var(ddof=1) == 0:
            return
        ours = welch_t_test(a, b)
        theirs = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-8, abs=1e-10)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6, abs=1e-10)


class TestBehaviour:
    def test_identical_samples_not_significant(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        result = students_t_test(a, a)
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_clearly_different_samples_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.95, 0.01, 10)
        b = rng.normal(0.80, 0.01, 10)
        result = students_t_test(a, b)
        assert result.significant(alpha=0.0001)

    def test_paper_style_fold_comparison(self):
        """Chrome/Linux closed world: 96.6±0.8 vs 91.4±1.2 over 10 folds
        is significant with p < 0.0001, as the paper reports."""
        rng = np.random.default_rng(1)
        ours = rng.normal(0.966, 0.008, 10)
        theirs = rng.normal(0.914, 0.012, 10)
        result = compare_fold_accuracies(ours, theirs)
        assert result.p_value < 0.0001

    def test_zero_variance_distinct_means(self):
        result = students_t_test([1.0, 1.0], [2.0, 2.0])
        assert result.p_value == 0.0

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValueError):
            students_t_test([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            welch_t_test([1.0, 2.0], [3.0])
