"""Tests for summary statistics."""

import numpy as np
import pytest

from repro.stats.summary import MeanStd, pearson_r, top_k_accuracy


class TestMeanStd:
    def test_of(self):
        summary = MeanStd.of([0.9, 1.0])
        assert summary.mean == pytest.approx(0.95)
        assert summary.std == pytest.approx(np.std([0.9, 1.0], ddof=1))

    def test_paper_formatting(self):
        """Rendered like Table 1's cells, e.g. '96.6±0.8'."""
        assert MeanStd(mean=0.966, std=0.008).as_percent() == "96.6±0.8"

    def test_single_value_zero_std(self):
        assert MeanStd.of([0.5]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MeanStd.of([])


class TestPearsonR:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        r = pearson_r(rng.normal(size=5000), rng.normal(size=5000))
        assert abs(r) < 0.05

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert pearson_r(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson_r([1.0], [1.0])
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            pearson_r([1, 1, 1], [1, 2, 3])


class TestTopKAccuracy:
    def test_top1_equals_argmax_accuracy(self):
        probs = np.array([[0.9, 0.1], [0.4, 0.6]])
        labels = np.array([0, 0])
        assert top_k_accuracy(probs, labels, 1) == 0.5

    def test_top_k_widens(self):
        probs = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        labels = np.array([1, 0])
        assert top_k_accuracy(probs, labels, 1) == 0.0
        assert top_k_accuracy(probs, labels, 2) == 0.5
        assert top_k_accuracy(probs, labels, 3) == 1.0

    def test_k_validation(self):
        probs = np.ones((2, 3)) / 3
        with pytest.raises(ValueError):
            top_k_accuracy(probs, np.zeros(2, dtype=int), 0)
        with pytest.raises(ValueError):
            top_k_accuracy(probs, np.zeros(2, dtype=int), 4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.ones(3), np.zeros(3, dtype=int), 1)
