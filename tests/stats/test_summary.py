"""Tests for summary statistics."""

import numpy as np
import pytest

from repro.stats.summary import MeanStd, pearson_r, top_k_accuracy


class TestMeanStd:
    def test_of(self):
        summary = MeanStd.of([0.9, 1.0])
        assert summary.mean == pytest.approx(0.95)
        assert summary.std == pytest.approx(np.std([0.9, 1.0], ddof=1))

    def test_paper_formatting(self):
        """Rendered like Table 1's cells, e.g. '96.6±0.8'."""
        assert MeanStd(mean=0.966, std=0.008).as_percent() == "96.6±0.8"

    def test_single_value_zero_std(self):
        assert MeanStd.of([0.5]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MeanStd.of([])


class TestPearsonR:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        r = pearson_r(rng.normal(size=5000), rng.normal(size=5000))
        assert abs(r) < 0.05

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=50), rng.normal(size=50)
        assert pearson_r(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson_r([1.0], [1.0])
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            pearson_r([1, 1, 1], [1, 2, 3])


class TestTopKAccuracy:
    def test_top1_equals_argmax_accuracy(self):
        probs = np.array([[0.9, 0.1], [0.4, 0.6]])
        labels = np.array([0, 0])
        assert top_k_accuracy(probs, labels, 1) == 0.5

    def test_top_k_widens(self):
        probs = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        labels = np.array([1, 0])
        assert top_k_accuracy(probs, labels, 1) == 0.0
        assert top_k_accuracy(probs, labels, 2) == 0.5
        assert top_k_accuracy(probs, labels, 3) == 1.0

    def test_k_validation(self):
        probs = np.ones((2, 3)) / 3
        with pytest.raises(ValueError):
            top_k_accuracy(probs, np.zeros(2, dtype=int), 0)
        with pytest.raises(ValueError):
            top_k_accuracy(probs, np.zeros(2, dtype=int), 4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.ones(3), np.zeros(3, dtype=int), 1)

    def test_top1_tie_agrees_with_argmax(self):
        """Regression: the argsort loop put the *higher* index in the
        top-1 set on a tie, disagreeing with argmax (which crossval and
        the tables use for plain accuracy)."""
        probs = np.array([[0.2, 0.4, 0.4, 0.0]])
        assert top_k_accuracy(probs, [1], 1) == 1.0
        assert int(np.argmax(probs, axis=1)[0]) == 1

    def test_tie_breaking_is_lower_index_wins(self):
        # Three classes tied at 0.3: lower indices occupy top slots first.
        probs = np.array([[0.1, 0.3, 0.3, 0.3]])
        assert top_k_accuracy(probs, [1], 1) == 1.0
        assert top_k_accuracy(probs, [2], 2) == 1.0
        assert top_k_accuracy(probs, [3], 2) == 0.0
        assert top_k_accuracy(probs, [3], 3) == 1.0

    def test_matches_stable_argsort_reference(self):
        """On tie-free data the vectorized rank must equal the old
        membership loop; with ties it must equal a stable descending
        argsort (lower class index first among equals)."""
        rng = np.random.default_rng(7)
        probs = rng.random((100, 12))
        probs = np.round(probs, 1)  # force plenty of ties
        labels = rng.integers(0, 12, size=100)
        for k in (1, 3, 12):
            # Stable sort on (-p, class index): deterministic reference.
            order = np.argsort(-probs, axis=1, kind="stable")
            expected = float(np.mean([labels[i] in order[i, :k] for i in range(100)]))
            assert top_k_accuracy(probs, labels, k) == expected

    def test_full_k_is_always_one(self):
        rng = np.random.default_rng(3)
        probs = rng.random((20, 5))
        labels = rng.integers(0, 5, size=20)
        assert top_k_accuracy(probs, labels, 5) == 1.0
