"""Tests for the micro-batching fingerprint server."""

import threading
import time

import numpy as np
import pytest

from repro.serve.loadgen import run_load
from repro.serve.server import (
    ERROR_CODES,
    MAX_BATCH_ENV_VAR,
    MAX_WAIT_ENV_VAR,
    QUEUE_ENV_VAR,
    FingerprintServer,
)


class TestBatchingCorrectness:
    def test_batched_equals_direct(self, registry, model, dataset):
        """The acceptance criterion: one predict_proba over the batch is
        bit-identical to direct evaluation, row for row."""
        x, _ = dataset
        direct = model.predict_proba(x)
        with FingerprintServer(registry, max_batch=8, max_wait_ms=20.0) as server:
            results = server.predict_many(list(x))
        assert all(r.ok for r in results)
        np.testing.assert_array_equal(direct, np.stack([r.probs for r in results]))

    def test_batched_equals_one_at_a_time(self, registry, dataset):
        """Same labels and probabilities whether requests ride alone or
        share a batch.  Probabilities agree to float precision, not
        bit-exactly: a 1-row and an 8-row matmul may sum in different
        orders inside BLAS.  (Bit-exactness against a same-shape direct
        call is asserted in test_batched_equals_direct.)"""
        x, _ = dataset
        with FingerprintServer(registry, max_batch=1, max_wait_ms=0.0) as server:
            singles = [server.predict(row) for row in x[:8]]
        with FingerprintServer(registry, max_batch=8, max_wait_ms=20.0) as server:
            batched = server.predict_many(list(x[:8]))
        for single, multi in zip(singles, batched):
            assert single.label == multi.label
            np.testing.assert_allclose(
                single.probs, multi.probs, rtol=1e-9, atol=0.0
            )

    def test_labels_come_from_artifact_classes(self, registry, model, dataset):
        x, _ = dataset
        direct = model.predict_proba(x[:4]).argmax(axis=1)
        with FingerprintServer(registry) as server:
            results = server.predict_many(list(x[:4]))
        from tests.serve.conftest import CLASSES

        assert [r.label for r in results] == [CLASSES[i] for i in direct]

    def test_requests_actually_batch(self, registry, dataset):
        x, _ = dataset
        with FingerprintServer(registry, max_batch=8, max_wait_ms=50.0) as server:
            results = server.predict_many(list(x[:8]))
        assert all(r.ok for r in results)
        # predict_many submits everything before waiting, so the worker
        # can pack full batches (>1 proves fan-in happened).
        assert max(r.batch_size for r in results) > 1


class TestErrorPaths:
    def test_error_codes_catalog(self):
        assert set(ERROR_CODES) == {
            "overloaded", "deadline", "model_error", "bad_input", "shutdown",
        }

    def test_bad_input_shapes(self, registry, dataset):
        x, _ = dataset
        with FingerprintServer(registry) as server:
            assert server.predict(np.ones((2, 3))).error == "bad_input"
            assert server.predict([]).error == "bad_input"
            nan = np.full(120, np.nan)
            assert server.predict(nan).error == "bad_input"
            assert server.predict(x[0], model="nope").error == "bad_input"

    def test_shutdown_rejects_new_requests(self, registry, dataset):
        x, _ = dataset
        server = FingerprintServer(registry)
        server.start()
        server.stop()
        result = server.predict(x[0])
        assert not result.ok and result.error == "shutdown"

    def test_expired_deadline(self, registry, dataset):
        x, _ = dataset
        with FingerprintServer(registry, max_wait_ms=30.0) as server:
            result = server.predict(x[0], deadline_ms=-1.0)
        assert not result.ok and result.error == "deadline"
        assert "queue" in result.detail

    def test_mixed_lengths_become_model_error(self, registry):
        with FingerprintServer(registry, max_batch=2, max_wait_ms=200.0) as server:
            short = server.submit(np.ones(60))
            long = server.submit(np.ones(120))
            short.done.wait()
            long.done.wait()
        codes = {short.result.error, long.result.error}
        assert codes == {"model_error"}
        assert "mixed trace lengths" in short.result.detail

    def test_backpressure_overloaded(self, registry, dataset):
        x, _ = dataset
        loaded = registry.get("default")
        release = threading.Event()
        original = loaded.model.predict_proba

        def slow(batch):
            release.wait(5.0)
            return original(batch)

        loaded.model.predict_proba = slow
        try:
            server = FingerprintServer(
                registry, max_batch=1, max_wait_ms=0.0, max_queue=2
            )
            with server:
                handles = [server.submit(x[0]) for _ in range(12)]
                overloaded = [
                    h for h in handles if h.result is not None
                    and h.result.error == "overloaded"
                ]
                assert overloaded, "bounded queue never pushed back"
                release.set()
                for handle in handles:
                    handle.done.wait(10.0)
            served = [h for h in handles if h.result.ok]
            assert served, "queued requests should still be served"
        finally:
            loaded.model.predict_proba = original


class TestConfiguration:
    def test_env_var_defaults(self, registry, monkeypatch):
        monkeypatch.setenv(MAX_BATCH_ENV_VAR, "7")
        monkeypatch.setenv(MAX_WAIT_ENV_VAR, "3.5")
        monkeypatch.setenv(QUEUE_ENV_VAR, "99")
        server = FingerprintServer(registry)
        assert server.max_batch == 7
        assert server.max_wait_ms == 3.5
        assert server.max_queue == 99

    def test_explicit_args_override_env(self, registry, monkeypatch):
        monkeypatch.setenv(MAX_BATCH_ENV_VAR, "7")
        server = FingerprintServer(registry, max_batch=3)
        assert server.max_batch == 3

    def test_bad_env_value_raises(self, registry, monkeypatch):
        monkeypatch.setenv(MAX_BATCH_ENV_VAR, "many")
        with pytest.raises(ValueError, match=MAX_BATCH_ENV_VAR):
            FingerprintServer(registry)

    def test_invalid_limits_rejected(self, registry):
        with pytest.raises(ValueError):
            FingerprintServer(registry, max_batch=0)
        with pytest.raises(ValueError):
            FingerprintServer(registry, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            FingerprintServer(registry, max_queue=0)

    def test_empty_registry_rejected(self):
        from repro.serve.registry import ModelRegistry

        with pytest.raises(ValueError, match="no models"):
            FingerprintServer(ModelRegistry())

    def test_unknown_default_model_rejected(self, registry):
        with pytest.raises(KeyError):
            FingerprintServer(registry, default_model="nope")

    def test_single_model_becomes_default(self, registry):
        assert FingerprintServer(registry).default_model == "default"

    def test_start_is_idempotent(self, registry, dataset):
        x, _ = dataset
        server = FingerprintServer(registry)
        try:
            assert server.start() is server.start()
            assert server.predict(x[0]).ok
        finally:
            server.stop()
        server.stop()  # double-stop is a no-op


class TestWorkerWakeups:
    def test_idle_server_never_wakes(self, registry, dataset):
        """Notify-driven waiting: zero worker wakeups across an idle window.

        The worker's idle wait used to be ``wait(0.1)`` — a 10 Hz poll
        that woke the thread to re-check an empty queue.  With untimed
        condition waits the only wakeups are notifies from ``submit``
        and ``stop``, so an idle stretch must add exactly none.
        """
        x, _ = dataset
        with FingerprintServer(registry, max_wait_ms=0.0) as server:
            assert server.predict(x[0]).ok  # drain startup activity
            baseline = server.worker_wakeups
            time.sleep(0.35)  # >3 poll periods of the old 100 ms loop
            assert server.worker_wakeups == baseline
            assert server.predict(x[1]).ok  # still responsive afterwards

    def test_stop_unblocks_the_idle_worker(self, registry):
        server = FingerprintServer(registry).start()
        started = time.monotonic()
        server.stop(timeout=5.0)
        # An un-notified untimed wait would hang until the join timeout.
        assert time.monotonic() - started < 1.0


class TestLoadgen:
    def test_closed_loop_report(self, registry, dataset):
        x, _ = dataset
        with FingerprintServer(registry, max_batch=8, max_wait_ms=1.0) as server:
            report = run_load(
                server, list(x[:8]), clients=4, requests_per_client=8, seed=0
            )
        assert report.n_requests == 32
        assert report.n_ok == 32 and not report.errors
        assert 0.0 < report.p50_ms <= report.p99_ms
        assert report.mean_batch >= 1.0
        assert report.throughput_rps > 0
        meta = report.meta()
        assert meta["requests"] == 32 and "p99_ms" in meta

    def test_deterministic_request_stream(self, registry, dataset):
        """Same seed -> same picks; the report totals are identical."""
        x, _ = dataset
        totals = []
        for _ in range(2):
            with FingerprintServer(registry, max_batch=4) as server:
                report = run_load(
                    server, list(x[:6]), clients=2, requests_per_client=5, seed=9
                )
            totals.append((report.n_requests, report.n_ok))
        assert totals[0] == totals[1] == (10, 10)

    def test_input_validation(self, registry):
        with FingerprintServer(registry) as server:
            with pytest.raises(ValueError):
                run_load(server, [], clients=1, requests_per_client=1)
            with pytest.raises(ValueError):
                run_load(server, [np.ones(4)], clients=0, requests_per_client=1)
