"""Tests for the warm LRU model registry."""

import pytest

from repro.ml.artifact import ArtifactError
from repro.serve.registry import ModelRegistry

from tests.serve.conftest import CLASSES


class TestRegistry:
    def test_lazy_load_and_metadata(self, registry):
        assert registry.warm_names() == []
        loaded = registry.get("default")
        assert registry.warm_names() == ["default"]
        assert loaded.classes == tuple(CLASSES)
        assert loaded.info.backend == "feature"

    def test_add_validates_manifest(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(ArtifactError):
            registry.add("bad", tmp_path / "nope")
        assert len(registry) == 0

    def test_duplicate_name_rejected(self, registry, artifact_dir):
        with pytest.raises(ValueError, match="already registered"):
            registry.add("default", artifact_dir)

    def test_unknown_model_raises(self, registry):
        with pytest.raises(KeyError, match="unknown model"):
            registry.get("nope")

    def test_contains_and_names(self, registry):
        assert "default" in registry
        assert "other" not in registry
        assert registry.names() == ["default"]

    def test_lru_eviction(self, artifact_dir):
        registry = ModelRegistry(capacity=2)
        for name in ("a", "b", "c"):
            registry.add(name, artifact_dir)
        registry.get("a")
        registry.get("b")
        registry.get("a")  # refresh a: now b is the LRU
        registry.get("c")  # evicts b
        assert registry.warm_names() == ["a", "c"]
        # b re-loads transparently on next use, evicting a.
        assert registry.get("b").name == "b"
        assert registry.warm_names() == ["c", "b"]

    def test_get_returns_same_instance_while_warm(self, registry):
        assert registry.get("default") is registry.get("default")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ModelRegistry(capacity=0)
