"""Shared fixtures: a small trained artifact and a registry around it."""

import numpy as np
import pytest

from repro.ml.models import FeatureFingerprinter
from repro.serve.registry import ModelRegistry

CLASSES = ["a.com", "b.com", "c.com", "d.com"]


@pytest.fixture(scope="session")
def dataset():
    rng = np.random.default_rng(11)
    profiles = rng.normal(0.0, 0.3, size=(4, 120))
    x = np.concatenate(
        [1.0 + profiles[c] + rng.normal(0.0, 0.05, size=(10, 120)) for c in range(4)]
    )
    y = np.repeat(np.arange(4), 10)
    return x, y


@pytest.fixture(scope="session")
def model(dataset):
    x, y = dataset
    return FeatureFingerprinter(seed=2).fit(x, y, 4)


@pytest.fixture(scope="session")
def artifact_dir(model, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifact") / "model"
    model.save(path, classes=CLASSES, provenance={"seed": 2, "scale": "test"})
    return path


@pytest.fixture()
def registry(artifact_dir):
    registry = ModelRegistry()
    registry.add("default", artifact_dir)
    return registry
