"""Tests for the train/serve/predict CLI and runner dispatch."""

import io
import json

import numpy as np
import pytest

from repro.experiments import runner
from repro.serve import cli


class TestDispatch:
    def test_runner_dispatches_serve_subcommands(self, monkeypatch):
        seen = {}

        def fake_main(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr("repro.serve.cli.main", fake_main)
        assert runner.main(["predict", "--artifact", "x"]) == 0
        assert seen["argv"] == ["predict", "--artifact", "x"]

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["deploy"])

    def test_missing_artifact_is_clean_error(self, tmp_path, capsys):
        """A bad --artifact path exits 2 with a one-line message, not a
        traceback (the CLI convention for usage errors)."""
        code = cli.main(
            ["predict", "--artifact", str(tmp_path / "nope"), "--scale", "smoke"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("biggerfish predict:")
        assert "Traceback" not in err


class TestServeJsonl:
    def _run(self, lines, artifact_dir, monkeypatch, capsys, extra=()):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("\n".join(lines) + "\n")
        )
        code = cli.main(["serve", "--artifact", str(artifact_dir), *extra])
        assert code == 0
        out = capsys.readouterr().out
        return [json.loads(line) for line in out.splitlines() if line.strip()]

    def test_requests_answered_in_order(self, artifact_dir, dataset, monkeypatch, capsys):
        x, _ = dataset
        lines = [
            json.dumps({"id": i, "vector": list(x[i])}) for i in range(3)
        ]
        responses = self._run(lines, artifact_dir, monkeypatch, capsys)
        assert [r["id"] for r in responses] == [0, 1, 2]
        assert all(r["ok"] for r in responses)
        assert all("label" in r and "confidence" in r for r in responses)

    def test_probs_flag_includes_rows(self, artifact_dir, dataset, monkeypatch, capsys):
        x, _ = dataset
        lines = [json.dumps({"vector": list(x[0])})]
        responses = self._run(
            lines, artifact_dir, monkeypatch, capsys, extra=("--probs",)
        )
        assert len(responses[0]["probs"]) == 4
        assert abs(sum(responses[0]["probs"]) - 1.0) < 1e-9

    def test_malformed_lines_reported_not_fatal(self, artifact_dir, dataset, monkeypatch, capsys):
        x, _ = dataset
        lines = ["{not json", json.dumps({"id": 1, "vector": list(x[0])})]
        responses = self._run(lines, artifact_dir, monkeypatch, capsys)
        assert responses[0]["ok"] is False and responses[0]["error"] == "bad_input"
        assert responses[1]["ok"] is True

    def test_named_artifact_spec(self, artifact_dir, dataset, monkeypatch, capsys):
        x, _ = dataset
        lines = [json.dumps({"vector": list(x[0]), "model": "fish"})]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        code = cli.main(["serve", "--artifact", f"fish={artifact_dir}"])
        assert code == 0
        response = json.loads(capsys.readouterr().out.splitlines()[0])
        assert response["ok"] is True


class TestPredictCommand:
    def test_check_direct_on_synthetic_artifact(self, tmp_path, capsys):
        """End to end through real smoke-scale collection: an artifact
        trained on matching-length synthetic traces classifies freshly
        collected eval traces through the batched server, bit-identical
        to direct evaluation."""
        from repro.config import SMOKE
        from repro.core.pipeline import FingerprintingPipeline
        from repro.ml.models import FeatureFingerprinter
        from repro.sim.machine import MachineConfig
        from repro.workload.browser import CHROME

        pipeline = FingerprintingPipeline(
            MachineConfig(), CHROME, scale=SMOKE, seed=0
        )
        length = pipeline.collector.spec.n_samples
        sites = [site.name for site in pipeline.sites()]
        rng = np.random.default_rng(5)
        x = rng.normal(1.0, 0.05, size=(4 * len(sites), length))
        y = np.repeat(np.arange(len(sites)), 4)
        model = FeatureFingerprinter(seed=5).fit(x, y, len(sites))
        artifact = tmp_path / "model"
        model.save(artifact, classes=sorted(sites))
        code = cli.main(
            [
                "predict", "--artifact", str(artifact), "--scale", "smoke",
                "--seed", "0", "--traces", "1", "--check-direct",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out
