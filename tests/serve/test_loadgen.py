"""Tests for the closed-loop load generator.

The regression class covers the silent-under-report bug: a client
thread dying mid-run used to shrink ``n_requests`` with no error at
all, which looked exactly like a lighter (but healthy) load.
"""

import threading

import numpy as np
import pytest

from repro.serve.loadgen import run_load
from repro.serve.server import FingerprintServer, PredictResult


def _vectors(n=6, dim=120, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(1.0, 0.3, size=dim) for _ in range(n)]


class _StubServer:
    """Duck-typed stand-in recording predict calls, thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self.calls = 0

    def predict(self, vector, model=None, deadline_ms=None):
        with self._lock:
            self.calls += 1
        return PredictResult(
            ok=True, label="a.com", confidence=1.0, batch_size=1
        )


class _DyingServer(_StubServer):
    """Raises out of ``predict`` for one client after a few successes."""

    def __init__(self, dying_client: str, after: int):
        super().__init__()
        self._dying = dying_client
        self._after = after
        self._per_thread: dict = {}

    def predict(self, vector, model=None, deadline_ms=None):
        name = threading.current_thread().name
        with self._lock:
            seen = self._per_thread.get(name, 0) + 1
            self._per_thread[name] = seen
        if name == self._dying and seen > self._after:
            raise RuntimeError("injected client failure")
        return super().predict(vector, model=model, deadline_ms=deadline_ms)


class TestRunLoad:
    def test_counts_every_issued_request(self):
        server = _StubServer()
        report = run_load(server, _vectors(), clients=3, requests_per_client=5)
        assert report.n_requests == 15
        assert report.n_ok == 15
        assert server.calls == 15
        assert report.errors == {}

    def test_deterministic_request_stream(self):
        a, b = _StubServer(), _StubServer()
        ra = run_load(a, _vectors(), clients=2, requests_per_client=4, seed=9)
        rb = run_load(b, _vectors(), clients=2, requests_per_client=4, seed=9)
        assert ra.n_requests == rb.n_requests == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            run_load(_StubServer(), [], clients=1, requests_per_client=1)
        with pytest.raises(ValueError):
            run_load(_StubServer(), _vectors(), clients=0)
        with pytest.raises(ValueError):
            run_load(_StubServer(), _vectors(), requests_per_client=0)


class TestDeadClientRegression:
    def test_dead_client_raises_not_underreports(self):
        """Pre-fix: the exception killed the thread, join() succeeded and
        the report quietly showed 2 fewer requests.  Now it re-raises."""
        server = _DyingServer(dying_client="loadgen-1", after=3)
        with pytest.raises(RuntimeError, match="client 1 failed") as excinfo:
            run_load(server, _vectors(), clients=3, requests_per_client=5)
        # The original exception is chained, and the message reports how
        # many requests the dead client had issued (3 ok + 1 fatal).
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "injected client failure" in repr(excinfo.value.__cause__)
        assert "after issuing 4 request(s)" in str(excinfo.value)

    def test_all_clients_dead_counts_each(self):
        server = _DyingServer(dying_client="loadgen-0", after=0)
        with pytest.raises(RuntimeError, match=r"1 of 1 load-generator"):
            run_load(server, _vectors(), clients=1, requests_per_client=2)


class TestAgainstRealServer:
    def test_end_to_end_report(self, registry):
        vectors = _vectors(n=8, seed=4)
        with FingerprintServer(registry, max_batch=8, max_wait_ms=1.0) as server:
            report = run_load(
                server, vectors, clients=4, requests_per_client=6, seed=1
            )
        assert report.n_requests == 24
        assert report.n_ok == 24
        assert report.errors == {}
        assert report.mean_batch >= 1.0
        assert report.p99_ms >= report.p50_ms >= 0.0
        assert report.throughput_rps > 0
        meta = report.meta()
        assert meta["requests"] == 24 and meta["ok"] == 24
