"""Tests for softmax cross-entropy."""

import numpy as np
import pytest

from repro.ml.losses import SoftmaxCrossEntropy, softmax
from tests.ml.test_layers import numeric_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_stability_with_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_uniform_prediction_log_c(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert value == pytest.approx(np.log(10))

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        loss.forward(logits, labels)
        analytic = loss.backward()

        def f():
            return loss.forward(logits, labels)

        numeric = numeric_gradient(f, logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = SoftmaxCrossEntropy()
        loss.forward(rng.normal(size=(4, 6)), np.array([0, 1, 2, 3]))
        grad = loss.backward()
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(4), atol=1e-12)

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((1, 3)), np.array([3]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_misaligned_labels_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0]))
