"""Tests for optimizers."""

import numpy as np
import pytest

from repro.ml.optim import SGD, Adam


def quadratic_descent(optimizer, steps=300, start=5.0):
    """Minimize f(x) = x^2 with the given optimizer; return final |x|."""
    x = np.array([start])
    for _ in range(steps):
        grad = 2 * x
        optimizer.step({(0, "x"): x}, {(0, "x"): grad})
    return abs(float(x[0]))


class TestSGD:
    def test_descends_quadratic(self):
        assert quadratic_descent(SGD(learning_rate=0.1)) < 1e-3

    def test_momentum_accelerates(self):
        slow = quadratic_descent(SGD(learning_rate=0.01), steps=50)
        fast = quadratic_descent(SGD(learning_rate=0.01, momentum=0.9), steps=50)
        assert fast < slow

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)

    def test_updates_in_place(self):
        x = np.array([1.0])
        SGD(learning_rate=0.5).step({(0, "x"): x}, {(0, "x"): np.array([1.0])})
        assert x[0] == 0.5


class TestAdam:
    def test_descends_quadratic(self):
        assert quadratic_descent(Adam(learning_rate=0.1), steps=500) < 1e-3

    def test_default_lr_is_paper_value(self):
        assert Adam().learning_rate == 0.001

    def test_first_step_size_near_lr(self):
        """Bias correction: the first Adam step is ~learning_rate."""
        x = np.array([10.0])
        Adam(learning_rate=0.01).step({(0, "x"): x}, {(0, "x"): np.array([4.0])})
        assert abs(10.0 - x[0]) == pytest.approx(0.01, rel=1e-3)

    def test_scale_invariance(self):
        """Adam's step is (almost) invariant to gradient magnitude."""
        x_small = np.array([1.0])
        x_big = np.array([1.0])
        adam_a, adam_b = Adam(learning_rate=0.1), Adam(learning_rate=0.1)
        for _ in range(5):
            adam_a.step({(0, "x"): x_small}, {(0, "x"): np.array([1e-3])})
            adam_b.step({(0, "x"): x_big}, {(0, "x"): np.array([1e3])})
        assert x_small[0] == pytest.approx(x_big[0], abs=1e-4)

    def test_state_keyed_per_parameter(self):
        x, y = np.array([1.0]), np.array([1.0])
        adam = Adam(learning_rate=0.1)
        adam.step({(0, "x"): x, (1, "x"): y}, {(0, "x"): np.array([1.0]), (1, "x"): np.array([-1.0])})
        assert x[0] < 1.0 < y[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=-1)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
