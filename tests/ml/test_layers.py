"""Gradient and behaviour tests for the numpy layers."""

import numpy as np
import pytest

from repro.ml.layers import Conv1D, Dense, Dropout, Flatten, MaxPool1D, ReLU


def numeric_gradient(f, x, epsilon=1e-6):
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + epsilon
        f_plus = f()
        x[idx] = original - epsilon
        f_minus = f()
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * epsilon)
        it.iternext()
    return grad


def check_input_gradient(layer, x, tolerance=1e-5):
    """Backward's input gradient matches numeric differentiation of a
    random linear readout of the layer output."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, training=False)
    readout = rng.normal(size=out.shape)
    analytic = layer.backward(readout)

    def loss():
        return float((layer.forward(x, training=False) * readout).sum())

    numeric = numeric_gradient(loss, x)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=tolerance)


def check_param_gradient(layer, x, tolerance=1e-5):
    rng = np.random.default_rng(1)
    out = layer.forward(x, training=False)
    readout = rng.normal(size=out.shape)
    layer.backward(readout)
    analytic = {k: v.copy() for k, v in layer.grads().items()}
    for name, param in layer.params().items():
        def loss():
            return float((layer.forward(x, training=False) * readout).sum())
        numeric = numeric_gradient(loss, param)
        np.testing.assert_allclose(
            analytic[name], numeric, rtol=1e-4, atol=tolerance,
            err_msg=f"param {name}",
        )


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng)
        assert layer.forward(np.ones((5, 4))).shape == (5, 3)

    def test_input_gradient(self, rng):
        layer = Dense(4, 3, rng)
        check_input_gradient(layer, rng.normal(size=(5, 4)))

    def test_param_gradients(self, rng):
        layer = Dense(4, 3, rng)
        check_param_gradient(layer, rng.normal(size=(5, 4)))

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng).backward(np.ones((1, 2)))

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng)


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert list(out[0]) == [0.0, 0.0, 2.0]

    def test_gradient_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert list(grad[0]) == [0.0, 5.0]


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 6))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_some(self, rng):
        layer = Dropout(0.5, rng)
        out = layer.forward(np.ones((10, 50)), training=True)
        zero_fraction = np.mean(out == 0)
        assert 0.3 < zero_fraction < 0.7

    def test_inverted_scaling_preserves_mean(self, rng):
        layer = Dropout(0.7, rng)
        out = layer.forward(np.ones((50, 200)), training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng)
        out = layer.forward(np.ones((4, 8)), training=True)
        grad = layer.backward(np.ones((4, 8)))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_rate_validated(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == (2, 3, 4)


class TestConv1D:
    def test_output_length(self, rng):
        layer = Conv1D(1, 2, kernel_size=8, stride=3, rng=rng)
        assert layer.output_length(32) == 9

    def test_forward_shape(self, rng):
        layer = Conv1D(2, 5, kernel_size=4, stride=2, rng=rng)
        out = layer.forward(rng.normal(size=(3, 20, 2)))
        assert out.shape == (3, 9, 5)

    def test_known_convolution(self, rng):
        layer = Conv1D(1, 1, kernel_size=2, stride=1, rng=rng)
        layer.W[:] = np.array([[1.0], [2.0]])  # w = [1, 2]
        layer.b[:] = 0.5
        x = np.array([[[1.0], [2.0], [3.0]]])
        out = layer.forward(x)
        # windows [1,2] -> 1+4=5, [2,3] -> 2+6=8; +bias
        np.testing.assert_allclose(out[0, :, 0], [5.5, 8.5])

    def test_input_gradient(self, rng):
        layer = Conv1D(2, 3, kernel_size=3, stride=2, rng=rng)
        check_input_gradient(layer, rng.normal(size=(2, 11, 2)))

    def test_param_gradients(self, rng):
        layer = Conv1D(2, 3, kernel_size=3, stride=2, rng=rng)
        check_param_gradient(layer, rng.normal(size=(2, 11, 2)))

    def test_too_short_input_rejected(self, rng):
        layer = Conv1D(1, 1, kernel_size=8, stride=1, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 4, 1)))

    def test_channel_mismatch_rejected(self, rng):
        layer = Conv1D(2, 1, kernel_size=2, stride=1, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 10, 3)))


class TestMaxPool1D:
    def test_forward(self):
        layer = MaxPool1D(2)
        x = np.array([[[1.0], [3.0], [2.0], [5.0], [9.0]]])
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, :, 0], [3.0, 5.0])  # 9 cropped

    def test_gradient_routes_to_argmax(self):
        layer = MaxPool1D(2)
        x = np.array([[[1.0], [3.0], [2.0], [5.0]]])
        layer.forward(x)
        grad = layer.backward(np.array([[[10.0], [20.0]]]))
        np.testing.assert_allclose(grad[0, :, 0], [0.0, 10.0, 0.0, 20.0])

    def test_input_gradient_numeric(self, rng):
        layer = MaxPool1D(3)
        check_input_gradient(layer, rng.normal(size=(2, 10, 4)))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            MaxPool1D(4).forward(np.ones((1, 3, 1)))
