"""Tests for the fingerprinting classifier backends."""

import numpy as np
import pytest

from repro.ml.models import (
    FeatureFingerprinter,
    LstmFingerprinter,
    build_paper_network,
    make_fingerprinter,
)


def toy_traces(n_per_class=10, n_classes=3, length=120, seed=0):
    """Traces with class-specific dip positions, like site signatures."""
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for cls in range(n_classes):
        base = np.ones(length)
        start = 10 + cls * 30
        base[start : start + 20] = 0.6
        xs.append(base + rng.normal(0, 0.03, size=(n_per_class, length)))
        ys.append(np.full(n_per_class, cls))
    return np.clip(np.concatenate(xs), 0, None), np.concatenate(ys)


class TestBuildPaperNetwork:
    def test_structure(self, rng):
        net = build_paper_network(300, 10, rng)
        logits = net.forward(np.random.default_rng(0).random((2, 300, 1)))
        assert logits.shape == (2, 10)

    def test_paper_scale_widths(self):
        model = LstmFingerprinter.paper_scale()
        assert model.conv_filters == 256
        assert model.lstm_units == 32
        assert model.dropout == 0.7

    def test_handles_short_inputs(self, rng):
        net = build_paper_network(40, 4, rng)
        logits = net.forward(np.random.default_rng(0).random((2, 40, 1)))
        assert logits.shape == (2, 4)


class TestFeatureFingerprinter:
    def test_learns_toy_problem(self):
        x, y = toy_traces()
        model = FeatureFingerprinter(seed=0).fit(x, y, n_classes=3)
        assert (model.predict_proba(x).argmax(axis=1) == y).mean() > 0.95

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FeatureFingerprinter().predict_proba(np.ones((1, 50)))

    def test_proba_shape(self):
        x, y = toy_traces()
        model = FeatureFingerprinter(seed=0).fit(x, y, n_classes=3)
        assert model.predict_proba(x[:5]).shape == (5, 3)


class TestLstmFingerprinter:
    def test_learns_toy_problem(self):
        x, y = toy_traces(n_per_class=15)
        model = LstmFingerprinter(
            conv_filters=8, lstm_units=8, dropout=0.0, epochs=60,
            batch_size=8, learning_rate=0.005, patience=20, seed=0,
        )
        model.fit(x, y, n_classes=3)
        accuracy = (model.predict_proba(x).argmax(axis=1) == y).mean()
        assert accuracy > 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LstmFingerprinter().predict_proba(np.ones((1, 50)))


class TestFactory:
    def test_known_backends(self):
        assert isinstance(make_fingerprinter("feature"), FeatureFingerprinter)
        assert isinstance(make_fingerprinter("lstm"), LstmFingerprinter)
        paper = make_fingerprinter("lstm-paper")
        assert isinstance(paper, LstmFingerprinter)
        assert paper.conv_filters == 256

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_fingerprinter("svm")

    def test_seed_passed_through(self):
        assert make_fingerprinter("feature", seed=9).seed == 9
