"""Tests for Sequential networks and end-to-end learning."""

import numpy as np
import pytest

from repro.ml.layers import Dense, ReLU
from repro.ml.network import Sequential
from repro.ml.optim import Adam


def two_moons(n=200, seed=0):
    """A small nonlinear binary classification problem."""
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0, np.pi, n)
    labels = rng.integers(0, 2, n)
    x = np.column_stack(
        [
            np.cos(angles) + labels * 1.0 + rng.normal(0, 0.1, n),
            np.sin(angles) * (1 - 2 * labels) + rng.normal(0, 0.1, n),
        ]
    )
    return x, labels


class TestSequential:
    def make(self, rng):
        return Sequential([Dense(2, 16, rng), ReLU(), Dense(16, 2, rng)])

    def test_needs_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_predict_proba_shape(self, rng):
        net = self.make(rng)
        probs = net.predict_proba(np.ones((5, 2)))
        assert probs.shape == (5, 2)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_training_reduces_loss(self, rng):
        net = self.make(rng)
        x, y = two_moons()
        optimizer = Adam(learning_rate=0.01)
        first = net.train_batch(x, y, optimizer)
        for _ in range(100):
            last = net.train_batch(x, y, optimizer)
        assert last < first / 2

    def test_learns_nonlinear_boundary(self, rng):
        net = self.make(rng)
        x, y = two_moons()
        optimizer = Adam(learning_rate=0.01)
        for _ in range(200):
            net.train_batch(x, y, optimizer)
        accuracy = (net.predict(x) == y).mean()
        assert accuracy > 0.95

    def test_snapshot_restore_roundtrip(self, rng):
        net = self.make(rng)
        x, y = two_moons()
        snapshot = net.snapshot()
        before = net.predict_proba(x)
        optimizer = Adam(learning_rate=0.05)
        for _ in range(20):
            net.train_batch(x, y, optimizer)
        after_training = net.predict_proba(x)
        assert not np.allclose(before, after_training)
        net.restore(snapshot)
        np.testing.assert_allclose(net.predict_proba(x), before)

    def test_restore_rejects_mismatched_snapshot(self, rng):
        net = self.make(rng)
        other = Sequential([Dense(2, 2, rng)])
        with pytest.raises(ValueError):
            net.restore(other.snapshot())

    def test_snapshot_is_a_copy(self, rng):
        net = self.make(rng)
        snapshot = net.snapshot()
        for key, array in net.parameters().items():
            array += 1.0
            assert not np.allclose(snapshot[key], array)
            break

    def test_predict_proba_batches_consistent(self, rng):
        net = self.make(rng)
        x = rng.normal(size=(300, 2))
        np.testing.assert_allclose(
            net.predict_proba(x, batch_size=7), net.predict_proba(x, batch_size=300)
        )
