"""Tests for cross-validation."""

import numpy as np
import pytest

from repro.ml.crossval import CrossValResult, cross_validate, stratified_kfold
from repro.ml.models import FeatureFingerprinter


class TestStratifiedKFold:
    def test_folds_partition_data(self):
        y = np.repeat(np.arange(4), 10)
        seen = []
        for train_idx, test_idx in stratified_kfold(y, 5, seed=0):
            assert not set(train_idx) & set(test_idx)
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(40))

    def test_class_balance_per_fold(self):
        y = np.repeat(np.arange(4), 10)
        for _, test_idx in stratified_kfold(y, 5, seed=0):
            counts = np.bincount(y[test_idx], minlength=4)
            assert counts.min() >= 1
            assert counts.max() - counts.min() <= 1

    def test_deterministic_per_seed(self):
        y = np.repeat(np.arange(3), 9)
        a = [t.tolist() for _, t in stratified_kfold(y, 3, seed=7)]
        b = [t.tolist() for _, t in stratified_kfold(y, 3, seed=7)]
        assert a == b

    def test_needs_two_folds(self):
        with pytest.raises(ValueError):
            list(stratified_kfold(np.array([0, 1]), 1))

    def test_degenerate_fold_rejected(self):
        y = np.array([0])
        with pytest.raises(ValueError):
            list(stratified_kfold(y, 2))


class TestCrossValidate:
    def make_data(self, seed=0):
        rng = np.random.default_rng(seed)
        n_per_class, length = 12, 60
        xs, ys = [], []
        for cls in range(3):
            base = np.zeros(length)
            base[cls * 15 : cls * 15 + 15] = 1.0
            xs.append(base + rng.normal(0, 0.05, size=(n_per_class, length)))
            ys.append(np.full(n_per_class, cls))
        return np.concatenate(xs), np.concatenate(ys)

    def test_separable_data_high_accuracy(self):
        x, y = self.make_data()
        result = cross_validate(
            lambda fold: FeatureFingerprinter(seed=fold), x, y, n_classes=3, n_folds=3
        )
        assert result.top1.mean > 0.9
        assert len(result.fold_top1) == 3

    def test_top5_at_least_top1(self):
        x, y = self.make_data()
        result = cross_validate(
            lambda fold: FeatureFingerprinter(seed=fold), x, y, n_classes=3, n_folds=3
        )
        for top1, top5 in zip(result.fold_top1, result.fold_top5):
            assert top5 >= top1

    def test_top_k_capped_at_classes(self):
        """top-5 on a 3-class problem degenerates to always-correct."""
        x, y = self.make_data()
        result = cross_validate(
            lambda fold: FeatureFingerprinter(seed=fold),
            x, y, n_classes=3, n_folds=2, top_k=5,
        )
        assert all(v == 1.0 for v in result.fold_top5)


class TestCrossValResult:
    def test_summary(self):
        result = CrossValResult(fold_top1=[0.9, 0.8], fold_top5=[1.0, 0.95])
        assert result.top1.mean == pytest.approx(0.85)
        assert result.top5.mean == pytest.approx(0.975)
