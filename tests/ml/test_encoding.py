"""Tests for label encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.encoding import LabelEncoder


class TestLabelEncoder:
    def test_roundtrip(self):
        encoder = LabelEncoder()
        labels = ["b", "a", "c", "a"]
        indices = encoder.fit_transform(labels)
        assert encoder.inverse(indices) == labels

    def test_sorted_classes(self):
        encoder = LabelEncoder().fit(["zebra", "apple"])
        assert encoder.classes == ["apple", "zebra"]

    def test_n_classes(self):
        assert LabelEncoder().fit(["a", "b", "a"]).n_classes == 2

    def test_unknown_label_rejected(self):
        encoder = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError, match="unknown"):
            encoder.transform(["b"])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])

    def test_indices_contiguous(self):
        encoder = LabelEncoder().fit(["x", "y", "z"])
        indices = encoder.transform(["x", "y", "z"])
        assert sorted(indices.tolist()) == [0, 1, 2]

    @given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, labels):
        encoder = LabelEncoder()
        indices = encoder.fit_transform(labels)
        assert encoder.inverse(indices) == labels
        assert indices.max() < encoder.n_classes
