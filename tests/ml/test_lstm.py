"""Gradient and behaviour tests for the LSTM layer."""

import numpy as np
import pytest

from repro.ml.lstm import LSTM
from tests.ml.test_layers import numeric_gradient


class TestLSTMForward:
    def test_output_shape(self, rng):
        layer = LSTM(3, 5, rng)
        out = layer.forward(rng.normal(size=(4, 7, 3)))
        assert out.shape == (4, 5)

    def test_output_bounded(self, rng):
        """h = o * tanh(c) with o in (0,1), so |h| < 1."""
        layer = LSTM(3, 5, rng)
        out = layer.forward(rng.normal(size=(4, 20, 3)) * 10)
        assert np.abs(out).max() < 1.0

    def test_zero_input_near_zero_output(self, rng):
        layer = LSTM(2, 3, rng)
        out = layer.forward(np.zeros((2, 5, 2)))
        assert np.abs(out).max() < 0.1

    def test_channel_mismatch_rejected(self, rng):
        layer = LSTM(2, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 5, 4)))

    def test_forget_bias_initialized_open(self, rng):
        layer = LSTM(2, 4, rng)
        np.testing.assert_array_equal(layer.b[4:8], np.ones(4))

    def test_order_sensitivity(self, rng):
        """An LSTM is not a bag-of-timesteps: order changes the output."""
        layer = LSTM(1, 4, rng)
        x = rng.normal(size=(1, 6, 1))
        out_forward = layer.forward(x)
        out_reversed = layer.forward(x[:, ::-1])
        assert not np.allclose(out_forward, out_reversed)


class TestLSTMGradients:
    def test_input_gradient(self, rng):
        layer = LSTM(2, 3, rng)
        x = rng.normal(size=(2, 4, 2))
        readout = rng.normal(size=(2, 3))
        layer.forward(x)
        analytic = layer.backward(readout)

        def loss():
            return float((layer.forward(x) * readout).sum())

        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-5)

    def test_param_gradients(self, rng):
        layer = LSTM(2, 3, rng)
        x = rng.normal(size=(2, 4, 2))
        readout = rng.normal(size=(2, 3))
        layer.forward(x)
        layer.backward(readout)
        analytic = {k: v.copy() for k, v in layer.grads().items()}
        for name, param in layer.params().items():
            def loss():
                return float((layer.forward(x) * readout).sum())
            numeric = numeric_gradient(loss, param)
            np.testing.assert_allclose(
                analytic[name], numeric, rtol=1e-4, atol=1e-5, err_msg=name
            )

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            LSTM(2, 3, rng).backward(np.ones((1, 3)))
