"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    confusion_matrix,
    macro_f1,
    open_world_metrics,
    per_class_metrics,
)


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        y = np.array([0, 1, 2, 1])
        matrix = confusion_matrix(y, y, 3)
        assert matrix.trace() == 4
        assert matrix.sum() == 4

    def test_counts_placed_correctly(self):
        matrix = confusion_matrix([0, 0, 1], [1, 0, 1], 2)
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1

    def test_validates_alignment(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0], 2)

    def test_validates_range(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 3], [0, 1], 2)


class TestPerClassMetrics:
    def test_perfect(self):
        matrix = np.diag([5, 3])
        metrics = per_class_metrics(matrix)
        assert all(m.precision == 1.0 and m.recall == 1.0 for m in metrics)
        assert metrics[0].support == 5

    def test_known_values(self):
        # class 0: tp=2, fn=1, fp=1
        matrix = np.array([[2, 1], [1, 3]])
        metrics = per_class_metrics(matrix)
        assert metrics[0].precision == pytest.approx(2 / 3)
        assert metrics[0].recall == pytest.approx(2 / 3)
        assert metrics[0].f1 == pytest.approx(2 / 3)

    def test_absent_class_zero_metrics(self):
        matrix = np.array([[4, 0], [0, 0]])
        metrics = per_class_metrics(matrix)
        assert metrics[1].precision == 0.0
        assert metrics[1].recall == 0.0

    def test_macro_f1(self):
        matrix = np.diag([5, 5])
        assert macro_f1(matrix) == 1.0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            per_class_metrics(np.ones((2, 3)))


class TestOpenWorldMetrics:
    def test_decomposition(self):
        # classes: 0 = sensitive site A, 1 = non-sensitive.
        y_true = np.array([0, 0, 0, 1, 1, 1, 1])
        y_pred = np.array([0, 1, 0, 1, 1, 0, 1])
        metrics = open_world_metrics(y_true, y_pred, non_sensitive_class=1)
        assert metrics.missed_sensitive_rate == pytest.approx(1 / 3)
        assert metrics.false_accusation_rate == pytest.approx(1 / 4)
        assert metrics.sensitive_accuracy == pytest.approx(2 / 3)

    def test_needs_both_kinds(self):
        with pytest.raises(ValueError):
            open_world_metrics([0, 0], [0, 0], non_sensitive_class=1)
