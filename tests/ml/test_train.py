"""Tests for the trainer and early stopping."""

import numpy as np
import pytest

from repro.ml.layers import Dense, ReLU
from repro.ml.network import Sequential
from repro.ml.train import Trainer, evaluate_accuracy
from tests.ml.test_network import two_moons


def make_net(rng):
    return Sequential([Dense(2, 16, rng), ReLU(), Dense(16, 2, rng)])


class TestTrainer:
    def test_fit_improves_accuracy(self, rng):
        x, y = two_moons(300)
        net = make_net(rng)
        before = evaluate_accuracy(net, x, y)
        Trainer(epochs=20, batch_size=32, seed=0).fit(net, x, y)
        assert evaluate_accuracy(net, x, y) > max(before, 0.9)

    def test_history_records_losses(self, rng):
        x, y = two_moons(100)
        net = make_net(rng)
        history = Trainer(epochs=5, batch_size=32).fit(net, x, y)
        assert len(history.losses) == 5
        assert history.losses[-1] < history.losses[0]

    def test_early_stopping_halts(self, rng):
        x, y = two_moons(300)
        x_val, y_val = two_moons(100, seed=9)
        net = make_net(rng)
        trainer = Trainer(epochs=100, batch_size=32, patience=2)
        history = trainer.fit(net, x, y, x_val, y_val)
        # Either early-stopped or ran out of epochs with history recorded.
        assert len(history.val_accuracies) <= 100
        if history.stopped_early:
            assert len(history.val_accuracies) < 100

    def test_best_snapshot_restored(self, rng):
        """After early stopping, the model matches its best epoch."""
        x, y = two_moons(200)
        x_val, y_val = two_moons(80, seed=5)
        net = make_net(rng)
        trainer = Trainer(epochs=40, batch_size=16, patience=2, seed=1)
        history = trainer.fit(net, x, y, x_val, y_val)
        final = evaluate_accuracy(net, x_val, y_val)
        assert final == pytest.approx(max(history.val_accuracies), abs=1e-9)

    def test_validation_optional(self, rng):
        x, y = two_moons(60)
        history = Trainer(epochs=3).fit(make_net(rng), x, y)
        assert history.val_accuracies == []
        assert not history.stopped_early

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Trainer(epochs=0)
        with pytest.raises(ValueError):
            Trainer(patience=0)


class TestEvaluateAccuracy:
    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            evaluate_accuracy(make_net(rng), np.empty((0, 2)), np.empty(0))

    def test_range(self, rng):
        x, y = two_moons(50)
        accuracy = evaluate_accuracy(make_net(rng), x, y)
        assert 0.0 <= accuracy <= 1.0
