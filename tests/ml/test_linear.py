"""Tests for softmax regression."""

import numpy as np
import pytest

from repro.ml.linear import SoftmaxRegression


def blobs(n_per_class=40, n_classes=3, separation=4.0, seed=0):
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for cls in range(n_classes):
        angle = 2 * np.pi * cls / n_classes
        center = separation * np.array([np.cos(angle), np.sin(angle)])
        xs.append(rng.normal(center, 1.0, size=(n_per_class, 2)))
        ys.append(np.full(n_per_class, cls))
    return np.concatenate(xs), np.concatenate(ys)


class TestSoftmaxRegression:
    def test_learns_separable_blobs(self):
        x, y = blobs()
        model = SoftmaxRegression(n_classes=3).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_proba_rows_sum_to_one(self):
        x, y = blobs()
        model = SoftmaxRegression(n_classes=3).fit(x, y)
        np.testing.assert_allclose(model.predict_proba(x).sum(axis=1), np.ones(len(x)))

    def test_l2_shrinks_weights(self):
        x, y = blobs()
        loose = SoftmaxRegression(n_classes=3, l2=0.0).fit(x, y)
        tight = SoftmaxRegression(n_classes=3, l2=1.0).fit(x, y)
        assert np.abs(tight.W).sum() < np.abs(loose.W).sum()

    def test_deterministic_per_seed(self):
        x, y = blobs()
        a = SoftmaxRegression(n_classes=3, seed=3).fit(x, y)
        b = SoftmaxRegression(n_classes=3, seed=3).fit(x, y)
        np.testing.assert_array_equal(a.W, b.W)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxRegression(n_classes=2).predict(np.ones((1, 2)))

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxRegression(n_classes=2).fit(np.ones((2, 2)), np.array([0, 2]))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxRegression(n_classes=2).fit(np.ones((3, 2)), np.array([0, 1]))

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            SoftmaxRegression(n_classes=1)
        with pytest.raises(ValueError):
            SoftmaxRegression(n_classes=2, learning_rate=0)
        with pytest.raises(ValueError):
            SoftmaxRegression(n_classes=2, l2=-1)
