"""Tests for schema-versioned model artifacts (save/load round trips)."""

import json

import numpy as np
import pytest

from repro.ml.artifact import (
    ARTIFACT_JSON,
    SCHEMA_VERSION,
    WEIGHTS_NPZ,
    ArtifactError,
    load_artifact,
    load_info,
    save_artifact,
)
from repro.ml.models import FeatureFingerprinter, LstmFingerprinter


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    profiles = rng.normal(0.0, 0.3, size=(4, 160))
    x = np.concatenate(
        [1.0 + profiles[c] + rng.normal(0.0, 0.05, size=(12, 160)) for c in range(4)]
    )
    y = np.repeat(np.arange(4), 12)
    return x, y


@pytest.fixture(scope="module")
def feature_model(dataset):
    x, y = dataset
    return FeatureFingerprinter(seed=3).fit(x, y, 4)


@pytest.fixture(scope="module")
def lstm_model(dataset):
    x, y = dataset
    return LstmFingerprinter(
        conv_filters=4, lstm_units=4, epochs=2, seed=3
    ).fit(x, y, 4)


CLASSES = ["a.com", "b.com", "c.com", "d.com"]


class TestRoundTrip:
    @pytest.mark.parametrize("which", ["feature", "lstm"])
    def test_bit_identical_predictions(self, which, dataset, feature_model, lstm_model, tmp_path):
        x, _ = dataset
        model = feature_model if which == "feature" else lstm_model
        model.save(tmp_path / which, classes=CLASSES)
        clone = load_artifact(tmp_path / which)
        np.testing.assert_array_equal(
            model.predict_proba(x), clone.predict_proba(x)
        )

    def test_typed_load_matches(self, dataset, feature_model, tmp_path):
        x, _ = dataset
        feature_model.save(tmp_path / "m")
        clone = FeatureFingerprinter.load(tmp_path / "m")
        np.testing.assert_array_equal(
            feature_model.predict_proba(x), clone.predict_proba(x)
        )

    def test_typed_load_rejects_other_backend(self, feature_model, tmp_path):
        feature_model.save(tmp_path / "m")
        with pytest.raises(ArtifactError, match="FeatureFingerprinter"):
            LstmFingerprinter.load(tmp_path / "m")

    def test_info_records_provenance(self, feature_model, tmp_path):
        import repro

        feature_model.save(
            tmp_path / "m",
            classes=CLASSES,
            provenance={"seed": 3, "scale": "smoke"},
        )
        info = load_info(tmp_path / "m")
        assert info.schema_version == SCHEMA_VERSION
        assert info.backend == "feature"
        assert info.repro_version == repro.__version__
        assert info.classes == tuple(CLASSES)
        assert info.n_classes == 4
        assert info.provenance == {"seed": 3, "scale": "smoke"}
        assert info.config["seed"] == 3

    def test_manifest_is_stable_json(self, feature_model, tmp_path):
        feature_model.save(tmp_path / "a", classes=CLASSES)
        feature_model.save(tmp_path / "b", classes=CLASSES)
        assert (tmp_path / "a" / ARTIFACT_JSON).read_text() == (
            tmp_path / "b" / ARTIFACT_JSON
        ).read_text()


class TestValidation:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="unfitted"):
            FeatureFingerprinter().save(tmp_path / "m")

    def test_class_count_mismatch_rejected(self, feature_model, tmp_path):
        with pytest.raises(ArtifactError, match="class"):
            feature_model.save(tmp_path / "m", classes=["only", "two"])

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="missing"):
            load_info(tmp_path / "nope")

    def test_corrupted_manifest_rejected(self, feature_model, tmp_path):
        feature_model.save(tmp_path / "m")
        (tmp_path / "m" / ARTIFACT_JSON).write_text("{not json")
        with pytest.raises(ArtifactError, match="corrupted"):
            load_info(tmp_path / "m")

    def test_future_schema_rejected(self, feature_model, tmp_path):
        feature_model.save(tmp_path / "m")
        manifest = tmp_path / "m" / ARTIFACT_JSON
        document = json.loads(manifest.read_text())
        document["schema_version"] = SCHEMA_VERSION + 1
        manifest.write_text(json.dumps(document))
        with pytest.raises(ArtifactError, match="unsupported artifact schema"):
            load_artifact(tmp_path / "m")

    def test_unknown_backend_rejected(self, feature_model, tmp_path):
        feature_model.save(tmp_path / "m")
        manifest = tmp_path / "m" / ARTIFACT_JSON
        document = json.loads(manifest.read_text())
        document["backend"] = "tensorflow"
        manifest.write_text(json.dumps(document))
        with pytest.raises(ArtifactError, match="unknown artifact backend"):
            load_artifact(tmp_path / "m")

    def test_missing_weights_rejected(self, feature_model, tmp_path):
        feature_model.save(tmp_path / "m")
        (tmp_path / "m" / WEIGHTS_NPZ).unlink()
        with pytest.raises(ArtifactError, match=WEIGHTS_NPZ):
            load_artifact(tmp_path / "m")

    def test_truncated_weights_rejected(self, feature_model, tmp_path):
        feature_model.save(tmp_path / "m")
        weights = tmp_path / "m" / WEIGHTS_NPZ
        weights.write_bytes(weights.read_bytes()[:20])
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path / "m")

    def test_missing_array_rejected(self, feature_model, tmp_path):
        feature_model.save(tmp_path / "m")
        weights = tmp_path / "m" / WEIGHTS_NPZ
        with np.load(weights) as archive:
            arrays = {k: archive[k] for k in archive.files}
        del arrays["softmax.W"]
        with open(weights, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="softmax.W"):
            load_artifact(tmp_path / "m")

    def test_lstm_weight_key_mismatch_rejected(self, lstm_model, tmp_path):
        lstm_model.save(tmp_path / "m")
        weights = tmp_path / "m" / WEIGHTS_NPZ
        with np.load(weights) as archive:
            arrays = {k: archive[k] for k in archive.files}
        # Re-key one parameter to a layer the architecture doesn't have.
        key = sorted(arrays)[0]
        arrays["L99." + key.partition(".")[2]] = arrays.pop(key)
        with open(weights, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(ArtifactError, match="architecture"):
            load_artifact(tmp_path / "m")


class TestSaveArtifactFunction:
    def test_non_fingerprinter_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact backend"):
            save_artifact(object(), tmp_path / "m")
