"""Tests for feature extraction and standardization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.features import FeatureExtractor, Standardizer, mean_pool


class TestMeanPool:
    def test_exact_division(self):
        x = np.array([[1.0, 3.0, 5.0, 7.0]])
        np.testing.assert_allclose(mean_pool(x, 2), [[2.0, 6.0]])

    def test_remainder_cropped(self):
        x = np.array([[1.0, 3.0, 5.0, 7.0, 100.0]])
        np.testing.assert_allclose(mean_pool(x, 2), [[2.0, 6.0]])

    def test_short_input_padded(self):
        x = np.array([[1.0, 2.0]])
        pooled = mean_pool(x, 4)
        assert pooled.shape == (1, 4)
        np.testing.assert_allclose(pooled, [[1.0, 2.0, 2.0, 2.0]])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            mean_pool(np.ones(5), 2)

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_output_width(self, length, bins):
        pooled = mean_pool(np.ones((2, length)), bins)
        assert pooled.shape == (2, bins)

    def test_preserves_mean_on_exact_division(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 64))
        pooled = mean_pool(x, 8)
        np.testing.assert_allclose(pooled.mean(axis=1), x.mean(axis=1))


class TestFeatureExtractor:
    def test_feature_count(self):
        extractor = FeatureExtractor()
        x = np.random.default_rng(0).random((5, 400))
        assert extractor.transform(x).shape == (5, extractor.n_features)

    def test_handles_short_traces(self):
        extractor = FeatureExtractor()
        x = np.random.default_rng(0).random((2, 30))
        assert extractor.transform(x).shape == (2, extractor.n_features)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            FeatureExtractor().transform(np.ones(10))

    def test_distinguishes_frequencies(self):
        """The spectral block separates different ripple frequencies."""
        t = np.arange(1600)
        slow = np.sin(2 * np.pi * t / 200)[None, :]
        fast = np.sin(2 * np.pi * t / 20)[None, :]
        extractor = FeatureExtractor()
        f_slow = extractor.transform(slow)
        f_fast = extractor.transform(fast)
        spectral = slice(64 + 32, 64 + 32 + 32)
        assert not np.allclose(f_slow[0, spectral], f_fast[0, spectral])

    def test_validation(self):
        with pytest.raises(ValueError):
            FeatureExtractor(shape_bins=0)


class TestStandardizer:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = Standardizer().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), np.ones(4), atol=1e-9)

    def test_constant_column_safe(self):
        x = np.ones((10, 2))
        z = Standardizer().fit_transform(x)
        assert np.isfinite(z).all()

    def test_transform_uses_training_stats(self):
        standardizer = Standardizer()
        train = np.array([[0.0], [2.0]])
        standardizer.fit(train)
        z = standardizer.transform(np.array([[4.0]]))
        assert z[0, 0] == pytest.approx(3.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.ones((1, 2)))
