"""Smoke + shape tests for the figure experiments (tiny scale)."""

import numpy as np
import pytest

from repro.experiments import fig3, fig4, fig5, fig6, fig7, fig8
from repro.sim.events import US
from repro.sim.interrupts import InterruptType
from repro.engine import RunContext
from tests.conftest import TINY


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(RunContext.default(scale=TINY, seed=4))

    def test_three_marquee_traces(self, result):
        assert [t.label for t in result.traces] == [
            "nytimes.com", "amazon.com", "weather.com",
        ]

    def test_counter_band(self, result):
        """Counters live in the paper's ~21k-27k band (scaled by P)."""
        lo, hi = result.counter_range()
        scale = TINY.period_ms / 5.0  # counters scale with period length
        assert hi <= 29_000 * scale
        assert hi >= 24_000 * scale

    def test_format(self, result):
        table = result.format_table()
        assert "nytimes.com" in table and "Figure 3" in table


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(RunContext.default(scale=TINY.with_(traces_per_site=6), seed=4))

    def test_correlations_strong(self, result):
        """Loop and sweep traces are shaped by the same system events."""
        for row in result.rows:
            assert row.correlation > 0.4

    def test_all_sites(self, result):
        assert [r.site for r in result.rows] == [
            "nytimes.com", "amazon.com", "weather.com",
        ]


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(RunContext.default(scale=TINY.with_(trace_seconds=6.0), seed=4))

    def test_attribution_over_99(self, result):
        assert result.attributed_fraction > 0.99

    def test_weather_resched_heavy(self, result):
        shares = {row.site: row.resched_share() for row in result.rows}
        assert shares["weather.com"] > shares["nytimes.com"]
        assert shares["weather.com"] > shares["amazon.com"]

    def test_nytimes_front_loaded(self, result):
        row = next(r for r in result.rows if r.site == "nytimes.com")
        n = len(row.total_fraction)
        first_two_thirds = row.total_fraction[: 2 * n // 3].sum()
        assert first_two_thirds > 0.6 * row.total_fraction.sum()

    def test_peaks_in_paper_band(self, result):
        """Fig 5's y-axis tops out around ~5-7 % of time in handlers."""
        for row in result.rows:
            assert 0.5 < row.peak_percent() < 25.0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(RunContext.default(scale=TINY.with_(trace_seconds=4.0), seed=4))

    def test_meltdown_floor(self, result):
        for hist in result.histograms.values():
            if hist.n_samples:
                assert hist.min_ns() >= 1.5 * US - 1e-6

    def test_irq_work_rides_timer(self, result):
        assert result.irq_work_timer_coincidence > 0.5

    def test_all_four_types_sampled(self, result):
        for itype in (
            InterruptType.SOFTIRQ_NET_RX,
            InterruptType.TIMER,
            InterruptType.IRQ_WORK,
            InterruptType.NETWORK_RX,
        ):
            assert result.histograms[itype].n_samples > 0

    def test_softirq_broadest(self, result):
        softirq = result.histograms[InterruptType.SOFTIRQ_NET_RX].samples
        network = result.histograms[InterruptType.NETWORK_RX].samples
        assert softirq.std() > network.std()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(RunContext.default(scale=TINY, seed=4))

    def test_all_monotonic(self, result):
        assert all(s.monotonic for s in result.samples)

    def test_deviation_ordering(self, result):
        """Tor's 100 ms quantizer deviates most; Chrome's jitter least."""
        by_name = {s.name: s for s in result.samples}
        tor = by_name["Quantized (Tor, 100ms)"]
        chrome = by_name["Jittered (Chrome, 0.1ms)"]
        ours = by_name["Randomized (ours, 1ms)"]
        assert chrome.max_deviation_ms < ours.max_deviation_ms < tor.max_deviation_ms + 1

    def test_chrome_bound(self, result):
        chrome = next(s for s in result.samples if "Chrome" in s.name)
        assert chrome.max_deviation_ms < 0.2  # < 2Δ


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(RunContext.default(scale=TINY, seed=4), n_periods=300)

    def test_quantized_exact_100ms(self, result):
        sample = result.sample_for("Quantized")
        lo, med, hi, std = sample.stats()
        assert lo == hi == 100.0

    def test_jittered_tight_around_5ms(self, result):
        """Fig 8b: 4.8-5.2 ms, roughly Gaussian."""
        sample = result.sample_for("Jittered")
        lo, med, hi, std = sample.stats()
        assert 4.7 <= lo and hi <= 5.3
        assert med == pytest.approx(5.0, abs=0.1)

    def test_randomized_spans_wildly(self, result):
        """Fig 8c: a 5 ms loop spans ~0-100 ms of real time."""
        sample = result.sample_for("Randomized")
        lo, med, hi, std = sample.stats()
        assert hi > 15.0
        assert std > 3.0
