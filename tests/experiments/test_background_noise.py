"""Tests for the background-noise robustness experiment."""

import pytest

from repro.experiments import background_noise
from repro.engine import RunContext
from tests.conftest import TINY


class TestBackgroundNoise:
    @pytest.fixture(scope="class")
    def result(self):
        return background_noise.run(RunContext.default(scale=TINY, seed=5))

    def test_both_conditions_present(self, result):
        assert 0.0 <= result.noisy.top1.mean <= 1.0
        assert 0.0 <= result.quiet.top1.mean <= 1.0

    def test_noise_does_not_destroy_attack(self, result):
        base = 1.0 / TINY.n_sites
        assert result.noisy.top1.mean > 1.5 * base

    def test_format(self, result):
        assert "Slack + Spotify" in result.format_table()
