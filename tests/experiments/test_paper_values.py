"""Consistency tests for the embedded paper reference values."""

import pytest

from repro.experiments import paper_values as paper
from repro.experiments.table1 import TABLE1_CONFIGS
from repro.experiments.table3 import isolation_ladder
from repro.experiments.table4 import run as table4_run  # noqa: F401 (import check)


class TestTable1Values:
    def test_covers_the_experiment_grid(self):
        keys = {(b.name, o.name) for b, o in TABLE1_CONFIGS}
        assert keys == set(paper.TABLE1_CLOSED)
        assert keys == set(paper.TABLE1_OPEN)

    def test_loop_beats_cache_in_all_published_cells(self):
        """The paper's own numbers: loop >= cache wherever both exist."""
        for (browser, _), (loop, cache) in paper.TABLE1_CLOSED.items():
            if cache is not None:
                assert loop >= cache, browser

    def test_macos_cache_cells_empty(self):
        assert paper.TABLE1_CLOSED[("Chrome 92", "macOS")][1] is None
        assert paper.TABLE1_OPEN[("Firefox 91", "macOS")][3] is None


class TestTable2Values:
    def test_interrupt_noise_dominates_in_paper(self):
        for attack, (none, cache, interrupt) in paper.TABLE2.items():
            assert none - interrupt > 3 * (none - cache), attack

    def test_page_load_overhead_is_15_7_percent(self):
        before, after = paper.PAGE_LOAD_SECONDS
        assert after / before == pytest.approx(1.157, abs=0.001)


class TestTable3Values:
    def test_covers_the_ladder(self):
        names = {step.name for step in isolation_ladder()}
        assert names == set(paper.TABLE3)

    def test_vm_rung_recovers_in_paper(self):
        assert paper.TABLE3["+ Run in separate VMs"][0] > paper.TABLE3[
            "+ Remove IRQ interrupts"
        ][0]


class TestTable4Values:
    def test_randomized_is_strongest_defense(self):
        randomized = [v[0] for k, v in paper.TABLE4.items() if k[0] == "Randomized"]
        others = [v[0] for k, v in paper.TABLE4.items() if k[0] != "Randomized"]
        assert max(randomized) < min(others)


class TestFigureValues:
    def test_fig4_sites(self):
        assert set(paper.FIG4_CORRELATIONS) == {
            "nytimes.com", "amazon.com", "weather.com",
        }

    def test_attribution_threshold(self):
        assert paper.ATTRIBUTION_FRACTION == 0.99

    def test_counter_band_ordering(self):
        lo, hi = paper.FIG3_COUNTER_RANGE
        assert lo < hi
