"""Tests for the experiment registry, formatting and CLI plumbing."""

import pytest

from repro.engine import RunContext
from repro.experiments import runner  # populates the registry
from repro.experiments.base import (
    ExperimentHandle,
    ExperimentSpec,
    all_specs,
    format_rows,
    get_experiment,
    get_spec,
    list_experiments,
    register,
    sparkline,
    suggest_experiment,
)
from tests.conftest import TINY


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        """DESIGN.md's experiment index: one entry per table/figure."""
        assert set(list_experiments()) >= {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "table1", "table2", "table3", "table4",
        }

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("table99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("fig3")(lambda ctx: None)

    def test_specs_have_paper_refs(self):
        spec = get_spec("table1")
        assert spec == ExperimentSpec(
            id="table1", paper_ref=spec.paper_ref, description=spec.description
        )
        assert spec.paper_ref.startswith("Table 1")
        assert all(s.description for s in all_specs())

    def test_suggestions_rank_near_misses(self):
        assert suggest_experiment("tabel1")[0] == "table1"
        assert suggest_experiment("zzzzzz") == []


class TestExperimentHandle:
    """Handles take exactly one RunContext; the legacy shim is gone."""

    def test_handles_are_registered(self):
        assert isinstance(get_experiment("fig7"), ExperimentHandle)

    def test_context_call(self):
        ctx = RunContext(scale=TINY, seed=2)
        assert "Figure 7" in get_experiment("fig7")(ctx).format_table()

    def test_context_keyword_call(self):
        ctx = RunContext(scale=TINY, seed=2)
        assert "Figure 7" in get_experiment("fig7")(ctx=ctx).format_table()

    def test_legacy_positional_scale_rejected(self):
        with pytest.raises(TypeError, match="RunContext"):
            get_experiment("fig7")(TINY, seed=2)

    def test_missing_context_rejected(self):
        with pytest.raises(TypeError, match="RunContext"):
            get_experiment("fig7")()

    def test_context_and_ctx_keyword_conflict(self):
        ctx = RunContext(scale=TINY, seed=2)
        with pytest.raises(TypeError, match="not both"):
            get_experiment("fig7")(ctx, ctx=ctx)

    def test_extra_positionals_rejected(self):
        ctx = RunContext(scale=TINY, seed=2)
        with pytest.raises(TypeError, match="unexpected positional"):
            get_experiment("fig7")(ctx, TINY)

    def test_extras_forwarded(self):
        result = get_experiment("fig7")(RunContext(scale=TINY, seed=2), window_ms=50.0)
        assert result.window_ms == 50.0


class TestFormatting:
    def test_format_rows_alignment(self):
        table = format_rows(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_sparkline_length(self):
        line = sparkline(range(100), width=20)
        assert len(line) == 20

    def test_sparkline_constant(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_monotone_input(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert line[0] == " " and line[-1] == "@"


class TestRunnerCli:
    def test_list_flag(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out

    def test_no_args_lists(self, capsys):
        assert runner.main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_runs_cheap_experiment(self, capsys):
        assert runner.main(["fig7", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "Randomized" in out

    def test_unknown_experiment_exits_2_with_suggestion(self, capsys):
        assert runner.main(["fig99", "--scale", "smoke"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        assert "did you mean" in err and "fig8" in err

    def test_jobs_flag_validated(self, capsys):
        assert runner.main(["fig7", "--scale", "smoke", "--jobs", "0"]) == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_cache_info_subcommand(self, tmp_path, capsys):
        assert runner.main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out and "entries" in out

    def test_cache_clear_subcommand(self, tmp_path, capsys):
        assert runner.main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 0" in capsys.readouterr().out

    def test_cache_unknown_verb_exits_2(self, capsys):
        assert runner.main(["cache", "shrink"]) == 2
        assert "usage" in capsys.readouterr().err


class TestSaveDir:
    def test_artifacts_written(self, tmp_path, capsys):
        assert runner.main(
            ["fig7", "--scale", "smoke", "--save-dir", str(tmp_path)]
        ) == 0
        assert (tmp_path / "fig7.txt").exists()
        svg = (tmp_path / "fig7.svg").read_text()
        assert svg.startswith("<svg")

    def test_manifest_written(self, tmp_path, capsys):
        import json

        save = tmp_path / "out"
        assert runner.main(
            [
                "fig7", "--scale", "smoke", "--seed", "6", "--jobs", "1",
                "--save-dir", str(save),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        manifest = json.loads((save / "run_manifest.json").read_text())
        assert manifest["scale"] == "smoke"
        assert manifest["seed"] == 6
        assert manifest["jobs"] == 1
        assert "fig7" in manifest["experiments"]
        assert manifest["experiments"]["fig7"]["elapsed_s"] >= 0
        assert manifest["cache"]["hits"] == 0

    def test_no_cache_flag_omits_cache_block(self, tmp_path, capsys):
        import json

        save = tmp_path / "out"
        assert runner.main(
            ["fig7", "--scale", "smoke", "--no-cache", "--save-dir", str(save)]
        ) == 0
        manifest = json.loads((save / "run_manifest.json").read_text())
        assert manifest["cache"] is None

    def test_table_without_renderer_writes_text_only(self, tmp_path, capsys):
        # fig8 has a renderer; use a quick text-only experiment via fig8's
        # sibling: tables 1/2 are too slow for a unit test, so check the
        # renderer-less path through the registry contract instead.
        from repro.viz.figures import render

        assert render("table2", object()) is None
