"""Tests for the experiment registry, formatting and CLI plumbing."""

import pytest

from repro.experiments import runner  # populates the registry
from repro.experiments.base import (
    format_rows,
    get_experiment,
    list_experiments,
    register,
    sparkline,
)


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        """DESIGN.md's experiment index: one entry per table/figure."""
        assert set(list_experiments()) >= {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "table1", "table2", "table3", "table4",
        }

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("table99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("fig3")(lambda: None)


class TestFormatting:
    def test_format_rows_alignment(self):
        table = format_rows(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_sparkline_length(self):
        line = sparkline(range(100), width=20)
        assert len(line) == 20

    def test_sparkline_constant(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_monotone_input(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert line[0] == " " and line[-1] == "@"


class TestRunnerCli:
    def test_list_flag(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out

    def test_no_args_lists(self, capsys):
        assert runner.main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_runs_cheap_experiment(self, capsys):
        assert runner.main(["fig7", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "Randomized" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            runner.main(["fig99", "--scale", "smoke"])


class TestSaveDir:
    def test_artifacts_written(self, tmp_path, capsys):
        assert runner.main(
            ["fig7", "--scale", "smoke", "--save-dir", str(tmp_path)]
        ) == 0
        assert (tmp_path / "fig7.txt").exists()
        svg = (tmp_path / "fig7.svg").read_text()
        assert svg.startswith("<svg")

    def test_table_without_renderer_writes_text_only(self, tmp_path, capsys):
        # fig8 has a renderer; use a quick text-only experiment via fig8's
        # sibling: tables 1/2 are too slow for a unit test, so check the
        # renderer-less path through the registry contract instead.
        from repro.viz.figures import render

        assert render("table2", object()) is None
