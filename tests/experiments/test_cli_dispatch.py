"""Exit codes and ``--help`` for the ``biggerfish`` subcommand dispatch.

The experiment-running happy paths are covered elsewhere; these tests
pin the CLI surface itself: ``cache``, ``report`` and ``lint``
subcommand routing, usage errors, and help screens.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import runner

FIXTURES = pathlib.Path(__file__).parents[1] / "lint" / "fixtures"


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, tmp_path):
    monkeypatch.setenv("BIGGERFISH_CACHE_DIR", str(tmp_path / "cache"))


class TestTopLevel:
    def test_no_arguments_lists_experiments(self, capsys):
        assert runner.main([]) == 0
        assert "table1" in capsys.readouterr().out

    def test_list_flag(self, capsys):
        assert runner.main(["--list"]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_unknown_experiment_exits_two_with_suggestion(self, capsys):
        assert runner.main(["table9"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "available" in err

    def test_bad_jobs_value_exits_two(self, capsys):
        assert runner.main(["table1", "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--help"])
        assert excinfo.value.code == 0
        assert "lint" in capsys.readouterr().out


class TestCacheSubcommand:
    def test_info(self, capsys):
        assert runner.main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "cache dir" in out
        assert "entries" in out

    def test_bare_cache_defaults_to_info(self, capsys):
        assert runner.main(["cache"]) == 0
        assert "cache dir" in capsys.readouterr().out

    def test_clear(self, capsys):
        assert runner.main(["cache", "clear"]) == 0
        assert "cleared" in capsys.readouterr().out

    def test_unknown_verb_exits_two(self, capsys):
        assert runner.main(["cache", "defrost"]) == 2
        assert "usage" in capsys.readouterr().err


class TestReportSubcommand:
    def test_no_target_exits_two(self, capsys):
        assert runner.main(["report"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_not_a_directory_exits_two(self, capsys):
        assert runner.main(["report", "no/such/run"]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_empty_run_dir_exits_two(self, tmp_path, capsys):
        assert runner.main(["report", str(tmp_path)]) == 2
        assert "run_manifest" in capsys.readouterr().err


class TestLintSubcommand:
    def test_clean_file_exits_zero(self, capsys):
        assert runner.main(["lint", str(FIXTURES / "clean.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, capsys):
        assert runner.main(["lint", str(FIXTURES / "bad_unseeded_rng.py")]) == 1
        assert "unseeded-rng" in capsys.readouterr().out

    def test_lint_own_flags_reach_the_lint_parser(self, capsys):
        assert runner.main(["lint", "--list-rules"]) == 0
        assert "wall-clock-in-sim" in capsys.readouterr().out

    def test_lint_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["lint", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--baseline" in out
        assert "--format" in out
