"""Smoke + shape tests for the table experiments (tiny scale).

These run the full attack pipelines at a very small scale, so they check
plumbing and gross shape, not the paper's quantitative orderings — those
are validated by the benchmark harness at larger scales.
"""

import pytest

from repro.experiments import table1, table2, table3, table4
from repro.workload.browser import CHROME, LINUX
from repro.engine import RunContext
from tests.conftest import TINY


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(
            RunContext.default(scale=TINY, seed=4),
            configs=[(CHROME, LINUX)], open_world=True
        )

    def test_row_fields(self, result):
        row = result.rows[0]
        assert row.browser == "Chrome 92"
        assert row.os_name == "Linux"
        assert row.timer_resolution_ms == pytest.approx(0.1)

    def test_both_attacks_beat_base_rate(self, result):
        base = 1.0 / TINY.n_sites
        row = result.rows[0]
        assert row.loop_closed.top1.mean > 2 * base
        # The sweep attack is weaker (coarse counts, 2 s tiny traces)
        # but still informative.
        assert row.sweep_closed.top1.mean > 1.2 * base

    def test_open_world_populated(self, result):
        row = result.rows[0]
        assert row.loop_open is not None
        assert 0.0 <= row.loop_open.combined.mean <= 1.0
        assert row.sweep_open_combined is not None

    def test_significance_computed(self, result):
        assert 0.0 <= result.rows[0].significance.p_value <= 1.0

    def test_format(self, result):
        table = result.format_table()
        assert "Table 1" in table and "Chrome 92" in table

    def test_closed_only_mode(self):
        result = table1.run(
            RunContext.default(scale=TINY, seed=4),
            configs=[(CHROME, LINUX)], open_world=False
        )
        assert result.rows[0].loop_open is None
        assert "OW" not in result.format_table()

    def test_full_grid_is_the_papers(self):
        assert len(table1.TABLE1_CONFIGS) == 8


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(RunContext.default(scale=TINY, seed=4))

    def test_both_attacks_present(self, result):
        assert [r.attack for r in result.rows] == ["loop-counting", "sweep-counting"]

    def test_interrupt_noise_hurts_loop(self, result):
        loop = result.rows[0]
        assert loop.drop_from_interrupt_noise() > 0.05

    def test_page_load_overhead_reported(self, result):
        assert "+15.7%" in result.format_table()


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(RunContext.default(scale=TINY, seed=4))

    def test_five_rungs(self, result):
        assert len(result.rows) == 5
        assert result.rows[0].mechanism == "Default"

    def test_attack_survives_full_ladder(self, result):
        """Takeaway 3: isolation mechanisms do not stop the attack."""
        base = 1.0 / TINY.n_sites
        final = result.rows[-1].result.top1.mean
        assert final > 3 * base

    def test_accuracy_by_step(self, result):
        assert len(result.accuracy_by_step()) == 5


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run(RunContext.default(scale=TINY, seed=4))

    def test_five_rows(self, result):
        names = [(r.timer_name, r.period_ms) for r in result.rows]
        assert names[0][0] == "Jittered"
        assert names[1][0] == "Quantized"
        assert [n for n, _ in names[2:]] == ["Randomized"] * 3

    def test_randomized_destroys_accuracy(self, result):
        """Table 4's headline: the randomized timer nears the base rate."""
        jittered = result.rows[0].result.top1.mean
        randomized = result.rows[2].result.top1.mean
        assert randomized < jittered / 2

    def test_base_rate_reported(self, result):
        assert result.base_rate == pytest.approx(1.0 / TINY.n_sites)
