"""Tests for the randomized-timer parameter ablation."""

import pytest

from repro.experiments import ablation_timer
from repro.engine import RunContext
from tests.conftest import TINY


@pytest.fixture(scope="module")
def result():
    return ablation_timer.run(RunContext.default(scale=TINY, seed=3))


class TestAblationTimer:
    def test_all_variants_run(self, result):
        assert [row.label for row in result.rows] == [
            "narrow range (U[2,4])",
            "paper (U[5,25])",
            "wide range (U[20,80])",
            "fast tether (U[2,4], 10ms)",
        ]

    def test_narrow_range_weaker_defense(self, result):
        """A barely-randomized timer leaves more attack accuracy than
        the paper's configuration."""
        by_label = {row.label: row for row in result.rows}
        narrow = by_label["narrow range (U[2,4])"].result.top1.mean
        paper = by_label["paper (U[5,25])"].result.top1.mean
        assert narrow >= paper - 0.05

    def test_deviation_grows_with_range(self, result):
        by_label = {row.label: row for row in result.rows}
        assert (
            by_label["wide range (U[20,80])"].mean_deviation_ms
            > by_label["paper (U[5,25])"].mean_deviation_ms
            > by_label["narrow range (U[2,4])"].mean_deviation_ms
        )

    def test_fast_tether_keeps_timer_usable_but_weak(self, result):
        """Small increments + a tight threshold keep the timer close to
        real time — more usable, weaker as a defense."""
        by_label = {row.label: row for row in result.rows}
        tether = by_label["fast tether (U[2,4], 10ms)"]
        paper = by_label["paper (U[5,25])"]
        assert tether.mean_deviation_ms < paper.mean_deviation_ms
        assert tether.result.top1.mean >= paper.result.top1.mean - 0.05

    def test_format(self, result):
        table = result.format_table()
        assert "randomized-timer parameters" in table
