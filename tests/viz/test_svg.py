"""Tests for the SVG drawing layer."""

import xml.dom.minidom

import numpy as np
import pytest

from repro.viz.svg import Axis, Plot, _nice_ticks, stack_plots


def parse(svg: str):
    """Raises if the document is not well-formed XML."""
    return xml.dom.minidom.parseString(svg)


class TestAxis:
    def test_scale_linear(self):
        axis = Axis(0, 10)
        np.testing.assert_allclose(axis.scale(np.array([0, 5, 10]), 0, 100), [0, 50, 100])

    def test_inverted_pixel_range(self):
        """y axes map data-up to pixel-down."""
        axis = Axis(0, 10)
        assert axis.scale(np.array([10]), 100, 0)[0] == 0

    def test_degenerate_range_expanded(self):
        axis = Axis(5, 5)
        assert axis.hi > axis.lo

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            Axis(0, float("nan"))


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0, 100)
        assert ticks[0] >= 0 and ticks[-1] <= 100
        assert len(ticks) >= 3

    def test_small_range(self):
        ticks = _nice_ticks(0.0, 0.001)
        assert all(0 <= t <= 0.001 for t in ticks)

    def test_empty_range(self):
        assert _nice_ticks(5, 5) == [5]


class TestPlot:
    def make(self):
        return Plot(Axis(0, 10, "x"), Axis(0, 1, "y"), title="test")

    def test_line_renders_valid_xml(self):
        plot = self.make().line([0, 5, 10], [0, 1, 0], label="series")
        parse(plot.render())

    def test_line_needs_two_points(self):
        with pytest.raises(ValueError):
            self.make().line([1], [1])

    def test_steps_double_points(self):
        plot = self.make().steps([0, 5, 10], [0, 0.5, 1])
        assert "polyline" in plot.render()

    def test_bars_edges_validated(self):
        with pytest.raises(ValueError):
            self.make().bars([0, 1, 2], [5])

    def test_bars_render(self):
        svg = self.make().bars([0, 2, 4, 6], [1, 0, 0.5]).render()
        parse(svg)
        assert svg.count("<rect") >= 3  # bg + frame + >=2 bars... at least

    def test_area_renders_polygon(self):
        svg = self.make().area([0, 5, 10], 0, [0.2, 0.8, 0.4]).render()
        assert "<polygon" in svg
        parse(svg)

    def test_heat_strip(self):
        svg = self.make().heat_strip(np.linspace(0, 1, 20), 0.2, 0.8).render()
        parse(svg)
        assert svg.count("rgb(") >= 20

    def test_heat_strip_empty_rejected(self):
        with pytest.raises(ValueError):
            self.make().heat_strip([], 0, 1)

    def test_text_escaped(self):
        svg = self.make().text(1, 0.5, "<&>").render()
        assert "&lt;&amp;&gt;" in svg
        parse(svg)

    def test_titles_and_labels_present(self):
        svg = self.make().line([0, 10], [0, 1]).render()
        assert ">test<" in svg and ">x<" in svg and ">y<" in svg

    def test_legend(self):
        svg = self.make().line([0, 10], [0, 1], label="observed").render()
        assert "observed" in svg

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Plot(Axis(0, 1), Axis(0, 1), width=50, height=50)

    def test_save(self, tmp_path):
        path = tmp_path / "plot.svg"
        self.make().line([0, 10], [0, 1]).save(path)
        parse(path.read_text())


class TestStackPlots:
    def test_stacks_heights(self):
        plots = [
            Plot(Axis(0, 1), Axis(0, 1), height=120).line([0, 1], [0, 1]),
            Plot(Axis(0, 1), Axis(0, 1), height=150).line([0, 1], [1, 0]),
        ]
        svg = stack_plots(plots, title="stacked")
        parse(svg)
        assert 'height="294"' in svg  # 120 + 150 + 24 title offset

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stack_plots([])
