"""Tests for the per-experiment SVG renderers."""

import xml.dom.minidom

import pytest

from repro.config import SMOKE
from repro.experiments import fig3, fig4, fig7, fig8
from repro.viz.figures import RENDERERS, render
from repro.engine import RunContext
from tests.conftest import TINY


def parse(svg: str):
    return xml.dom.minidom.parseString(svg)


class TestRenderers:
    def test_unrenderable_returns_none(self):
        assert render("table1", object()) is None

    def test_renderer_registry_ids(self):
        assert set(RENDERERS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table3", "table4",
        }

    def test_fig7_valid(self):
        result = fig7.run(RunContext.default(scale=SMOKE, seed=1))
        svg = render("fig7", result)
        parse(svg)
        assert "Figure 7" in svg
        assert svg.count("polyline") >= 6  # ideal + observed per timer

    def test_fig8_valid(self):
        result = fig8.run(RunContext.default(scale=SMOKE, seed=1), n_periods=200)
        svg = render("fig8", result)
        parse(svg)
        assert "Randomized" in svg

    def test_fig3_valid(self):
        result = fig3.run(RunContext.default(scale=TINY, seed=1))
        svg = render("fig3", result)
        parse(svg)
        assert "nytimes.com" in svg
        assert svg.count("rgb(") > 100  # heat cells

    def test_fig4_valid(self):
        result = fig4.run(RunContext.default(scale=TINY.with_(traces_per_site=4), seed=1))
        svg = render("fig4", result)
        parse(svg)
        assert "weather.com" in svg

    def test_fig5_valid(self):
        from repro.experiments import fig5

        result = fig5.run(RunContext.default(scale=TINY.with_(trace_seconds=3.0), seed=2))
        svg = render("fig5", result)
        parse(svg)
        assert "Softirq" in svg and "Resched" in svg

    def test_fig6_valid(self):
        from repro.experiments import fig6

        result = fig6.run(RunContext.default(scale=TINY.with_(trace_seconds=3.0), seed=2))
        svg = render("fig6", result)
        parse(svg)
        assert "timer" in svg

    def test_table3_valid(self):
        from repro.experiments import table3

        result = table3.run(RunContext.default(scale=TINY, seed=2))
        svg = render("table3", result)
        parse(svg)
        assert "isolation" in svg

    def test_table4_valid(self):
        from repro.experiments import table4

        result = table4.run(RunContext.default(scale=TINY, seed=2))
        svg = render("table4", result)
        parse(svg)
        assert "timer defenses" in svg
