"""Tests for activity bursts and timelines."""

import numpy as np
import pytest

from repro.sim.events import MS, SEC
from repro.workload.phases import (
    KIND_PROFILES,
    ActivityBurst,
    ActivityTimeline,
    BurstKind,
    merge_timelines,
)


def burst(start_s, dur_s, kind=BurstKind.NETWORK, intensity=0.5):
    return ActivityBurst(
        start_ns=start_s * SEC, duration_ns=dur_s * SEC, kind=kind, intensity=intensity
    )


class TestActivityBurst:
    def test_end_ns(self):
        b = burst(1.0, 2.0)
        assert b.end_ns == pytest.approx(3.0 * SEC)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            ActivityBurst(0, 0, BurstKind.NETWORK, 0.5)

    def test_rejects_bad_intensity(self):
        with pytest.raises(ValueError):
            ActivityBurst(0, 1, BurstKind.NETWORK, 0.0)
        with pytest.raises(ValueError):
            ActivityBurst(0, 1, BurstKind.NETWORK, 1.5)

    def test_overlap(self):
        b = burst(1.0, 2.0)
        assert b.overlap_ns(0, 2 * SEC) == pytest.approx(1 * SEC)
        assert b.overlap_ns(5 * SEC, 6 * SEC) == 0.0
        assert b.overlap_ns(1.5 * SEC, 2.5 * SEC) == pytest.approx(1 * SEC)


class TestKindProfiles:
    def test_every_kind_has_profile(self):
        assert set(KIND_PROFILES) == set(BurstKind)

    def test_memory_bursts_generate_no_irqs(self):
        assert KIND_PROFILES[BurstKind.MEMORY].irq_rate_hz == 0.0

    def test_compute_is_cpu_heaviest(self):
        compute_load = KIND_PROFILES[BurstKind.COMPUTE].cpu_load
        assert all(
            compute_load >= profile.cpu_load for profile in KIND_PROFILES.values()
        )


class TestActivityTimeline:
    def test_sorted_on_construction(self):
        timeline = ActivityTimeline([burst(3, 1), burst(1, 1)], 10 * SEC)
        starts = [b.start_ns for b in timeline]
        assert starts == sorted(starts)

    def test_of_kind(self):
        timeline = ActivityTimeline(
            [burst(0, 1), burst(1, 1, kind=BurstKind.RENDER)], 10 * SEC
        )
        assert len(timeline.of_kind(BurstKind.RENDER)) == 1

    def test_load_zero_outside_bursts(self):
        timeline = ActivityTimeline([burst(1, 1)], 10 * SEC)
        assert timeline.load_at(0.5 * SEC) == 0.0
        assert timeline.load_at(5 * SEC) == 0.0

    def test_load_during_burst(self):
        timeline = ActivityTimeline([burst(1, 1, intensity=1.0)], 10 * SEC)
        expected = KIND_PROFILES[BurstKind.NETWORK].cpu_load
        assert timeline.load_at(1.5 * SEC) == pytest.approx(expected)

    def test_load_sums_and_saturates(self):
        bursts = [burst(0, 1, kind=BurstKind.COMPUTE, intensity=1.0) for _ in range(5)]
        timeline = ActivityTimeline(bursts, 10 * SEC)
        assert timeline.load_at(0.5 * SEC) == 1.0

    def test_load_curve_shape(self):
        timeline = ActivityTimeline([burst(1, 1)], 2 * SEC)
        times, loads = timeline.load_curve(step_ns=100 * MS)
        assert len(times) == len(loads) == 20
        assert loads.max() > 0

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            ActivityTimeline([], 0)


class TestOccupancyCurve:
    def test_bounded(self):
        timeline = ActivityTimeline(
            [burst(1, 2, kind=BurstKind.MEMORY, intensity=1.0)], 10 * SEC
        )
        _, occupancy = timeline.occupancy_curve()
        assert occupancy.min() >= 0.0
        assert occupancy.max() <= 1.0

    def test_rises_during_memory_burst(self):
        timeline = ActivityTimeline(
            [burst(1, 3, kind=BurstKind.MEMORY, intensity=1.0)], 10 * SEC
        )
        times, occupancy = timeline.occupancy_curve()
        during = occupancy[(times > 2 * SEC) & (times < 4 * SEC)].max()
        before = occupancy[times < 0.9 * SEC].max()
        assert during > before + 0.3

    def test_decays_after_burst(self):
        timeline = ActivityTimeline(
            [burst(0.5, 1, kind=BurstKind.MEMORY, intensity=1.0)], 10 * SEC
        )
        times, occupancy = timeline.occupancy_curve()
        peak = occupancy[(times > 1 * SEC) & (times < 1.6 * SEC)].max()
        tail = occupancy[times > 8 * SEC].max()
        assert tail < peak / 2

    def test_network_bursts_do_not_raise_occupancy(self):
        timeline = ActivityTimeline([burst(1, 2, intensity=1.0)], 10 * SEC)
        _, occupancy = timeline.occupancy_curve()
        assert occupancy.max() < 0.05

    def test_render_contributes_partially(self):
        memory = ActivityTimeline(
            [burst(1, 2, kind=BurstKind.MEMORY, intensity=1.0)], 10 * SEC
        )
        render = ActivityTimeline(
            [burst(1, 2, kind=BurstKind.RENDER, intensity=1.0)], 10 * SEC
        )
        _, occ_memory = memory.occupancy_curve()
        _, occ_render = render.occupancy_curve()
        assert 0 < occ_render.max() < occ_memory.max()


class TestMergeTimelines:
    def test_merges_bursts(self):
        a = ActivityTimeline([burst(0, 1)], 5 * SEC)
        b = ActivityTimeline([burst(2, 1)], 8 * SEC)
        merged = merge_timelines([a, b])
        assert len(merged) == 2
        assert merged.horizon_ns == 8 * SEC

    def test_explicit_horizon(self):
        a = ActivityTimeline([burst(0, 1)], 5 * SEC)
        merged = merge_timelines([a], horizon_ns=20 * SEC)
        assert merged.horizon_ns == 20 * SEC

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_timelines([])
