"""Tests for background-application noise timelines."""

import numpy as np
import pytest

from repro.sim.events import SEC
from repro.workload.background import office_background, slack_timeline, spotify_timeline
from repro.workload.phases import BurstKind

HORIZON = 15 * SEC


class TestSpotify:
    def test_streams_for_whole_horizon(self, rng):
        timeline = spotify_timeline(HORIZON, rng)
        network = timeline.of_kind(BurstKind.NETWORK)
        assert len(network) == 1
        assert network[0].duration_ns == HORIZON

    def test_low_intensity(self, rng):
        timeline = spotify_timeline(HORIZON, rng)
        assert all(b.intensity < 0.5 for b in timeline)

    def test_invalid_intensity(self, rng):
        with pytest.raises(ValueError):
            spotify_timeline(HORIZON, rng, intensity=0.0)


class TestSlack:
    def test_periodic_wakes(self, rng):
        timeline = slack_timeline(HORIZON, rng)
        network = timeline.of_kind(BurstKind.NETWORK)
        assert 3 <= len(network) <= 12  # ~every 2.5 s over 15 s

    def test_short_horizon_still_produces_activity(self, rng):
        timeline = slack_timeline(int(0.2 * SEC), rng)
        assert len(timeline) >= 1

    def test_invalid_interval(self, rng):
        with pytest.raises(ValueError):
            slack_timeline(HORIZON, rng, wake_interval_s=0)


class TestOfficeBackground:
    def test_returns_both_apps(self):
        timelines = office_background(HORIZON, seed=0)
        assert len(timelines) == 2

    def test_deterministic_per_seed(self):
        a = office_background(HORIZON, seed=5)
        b = office_background(HORIZON, seed=5)
        assert len(a[1]) == len(b[1])
        assert [x.start_ns for x in a[1]] == [x.start_ns for x in b[1]]

    def test_noise_is_modest(self):
        """Background apps add load but never saturate the system."""
        for timeline in office_background(HORIZON, seed=1):
            loads = [timeline.load_at(t) for t in np.linspace(0, HORIZON - 1, 50)]
            assert max(loads) < 0.5
