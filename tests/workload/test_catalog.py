"""Tests for the website catalogs."""

import pytest

from repro.workload.catalog import (
    CLOSED_WORLD_SITES,
    NON_SENSITIVE_LABEL,
    closed_world,
    marquee_sites,
    open_world,
    site_labels,
)


class TestClosedWorld:
    def test_exactly_100_sites(self):
        """Appendix A lists the 100 closed-world websites."""
        assert len(CLOSED_WORLD_SITES) == 100

    def test_no_duplicates(self):
        assert len(set(CLOSED_WORLD_SITES)) == 100

    def test_paper_examples_present(self):
        for name in ("nytimes.com", "amazon.com", "google.com"):
            assert name in CLOSED_WORLD_SITES

    def test_weather_is_marquee_only(self):
        """weather.com appears in Figs 3-5 but not in Appendix A."""
        assert "weather.com" not in CLOSED_WORLD_SITES

    def test_same_content_exclusion(self):
        """The paper excludes same-content variants (google.co.uk etc.)."""
        assert "google.com" in CLOSED_WORLD_SITES
        assert "google.co.uk" not in CLOSED_WORLD_SITES

    def test_subset_selection(self):
        sites = closed_world(10)
        assert len(sites) == 10
        assert [s.name for s in sites] == list(CLOSED_WORLD_SITES[:10])

    def test_full_catalog_default(self):
        assert len(closed_world()) == 100

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            closed_world(0)
        with pytest.raises(ValueError):
            closed_world(101)

    def test_marquee_signatures_used(self):
        sites = {s.name: s for s in closed_world()}
        # nytimes keeps its hand-written signature inside the catalog.
        assert sites["nytimes.com"].style.memory_weight == pytest.approx(1.2)


class TestMarqueeSites:
    def test_order_matches_figures(self):
        assert [s.name for s in marquee_sites()] == [
            "nytimes.com",
            "amazon.com",
            "weather.com",
        ]


class TestOpenWorld:
    def test_count(self):
        assert len(open_world(25)) == 25

    def test_unique_signatures(self):
        sites = open_world(20)
        seeds = {s.seed for s in sites}
        assert len(seeds) == 20

    def test_no_collision_with_closed_world(self):
        closed_seeds = {s.seed for s in closed_world()}
        open_seeds = {s.seed for s in open_world(100)}
        assert not closed_seeds & open_seeds

    def test_zero_sites(self):
        assert open_world(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            open_world(-1)


class TestLabels:
    def test_site_labels(self):
        assert site_labels(closed_world(3)) == list(CLOSED_WORLD_SITES[:3])

    def test_non_sensitive_label_is_not_a_site(self):
        assert NON_SENSITIVE_LABEL not in CLOSED_WORLD_SITES
