"""Tests for website profiles and load generation."""

import numpy as np
import pytest

from repro.sim.events import SEC
from repro.workload.phases import BurstKind
from repro.workload.website import (
    MARQUEE_PROFILES,
    SiteStyle,
    WebsiteProfile,
    amazon_profile,
    nytimes_profile,
    profile_for,
    weather_profile,
)

HORIZON = 15 * SEC


class TestSignatureDeterminism:
    def test_same_name_same_signature(self):
        a, b = WebsiteProfile("example.com"), WebsiteProfile("example.com")
        assert [t.start_s for t in a.templates] == [t.start_s for t in b.templates]
        assert a.style == b.style

    def test_different_names_differ(self):
        a, b = WebsiteProfile("alpha.com"), WebsiteProfile("beta.com")
        assert [t.start_s for t in a.templates] != [t.start_s for t in b.templates]

    def test_explicit_seed_overrides_name(self):
        a = WebsiteProfile("x.com", seed=42)
        b = WebsiteProfile("y.com", seed=42)
        assert [t.start_s for t in a.templates] == [t.start_s for t in b.templates]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            WebsiteProfile("")

    def test_every_signature_starts_with_network(self):
        for name in ("a.com", "b.com", "c.com", "d.com"):
            profile = WebsiteProfile(name)
            assert profile.templates[0].kind is BurstKind.NETWORK
            assert profile.templates[0].start_s < 0.5


class TestGenerateLoad:
    def test_bursts_within_horizon(self, rng):
        timeline = WebsiteProfile("example.com").generate_load(rng, HORIZON)
        for b in timeline:
            assert 0 <= b.start_ns < HORIZON
            assert b.end_ns <= HORIZON

    def test_loads_differ_between_runs(self):
        profile = WebsiteProfile("example.com")
        a = profile.generate_load(np.random.default_rng(1), HORIZON)
        b = profile.generate_load(np.random.default_rng(2), HORIZON)
        starts_a = sorted(x.start_ns for x in a)
        starts_b = sorted(x.start_ns for x in b)
        assert starts_a != starts_b

    def test_loads_same_seed_identical(self):
        profile = WebsiteProfile("example.com")
        a = profile.generate_load(np.random.default_rng(9), HORIZON)
        b = profile.generate_load(np.random.default_rng(9), HORIZON)
        assert sorted(x.start_ns for x in a) == sorted(x.start_ns for x in b)

    def test_time_stretch_shifts_bursts_later(self):
        profile = WebsiteProfile("example.com")
        normal = profile.generate_load(np.random.default_rng(3), HORIZON, time_stretch=1.0)
        slow = profile.generate_load(np.random.default_rng(3), HORIZON, time_stretch=2.5)
        # Compare the latest signature burst (background bursts excluded).
        latest = lambda tl: max(
            b.start_ns for b in tl if b.source != "background"
        )
        assert latest(slow) > latest(normal)

    def test_invalid_stretch_rejected(self, rng):
        with pytest.raises(ValueError):
            WebsiteProfile("example.com").generate_load(rng, HORIZON, time_stretch=0)

    def test_intensities_valid(self, rng):
        timeline = WebsiteProfile("example.com").generate_load(rng, HORIZON)
        for b in timeline:
            assert 0 < b.intensity <= 1.0


class TestMarqueeProfiles:
    def test_lookup(self):
        assert profile_for("nytimes.com").name == "nytimes.com"
        assert profile_for("unknown-site.com").name == "unknown-site.com"

    def test_marquee_registry(self):
        assert set(MARQUEE_PROFILES) == {"nytimes.com", "amazon.com", "weather.com"}

    def test_nytimes_front_loaded(self):
        """Fig 5: nytimes does most of its work in the first ~4 s."""
        profile = nytimes_profile()
        heavy = [t for t in profile.templates if t.intensity > 0.5]
        assert all(t.start_s < 4.0 for t in heavy)

    def test_amazon_has_late_spikes(self):
        """Fig 3: amazon spikes near 5 s and 10 s."""
        starts = [t.start_s for t in amazon_profile().templates]
        assert any(4.5 <= s <= 5.5 for s in starts)
        assert any(9.5 <= s <= 10.5 for s in starts)

    def test_weather_is_resched_heavy(self):
        """§5.2: weather.com routinely triggers rescheduling interrupts."""
        weather = weather_profile()
        others = [nytimes_profile(), amazon_profile()]
        assert weather.style.resched_weight > max(
            p.style.resched_weight for p in others
        )
        compute = [t for t in weather.templates if t.kind is BurstKind.COMPUTE]
        assert len(compute) >= 3


class TestSiteStyle:
    def test_defaults(self):
        style = SiteStyle()
        assert style.resched_weight == 1.0
        assert style.net_coalescing == 1.0

    def test_procedural_styles_vary(self):
        weights = {WebsiteProfile(f"site{i}.com").style.resched_weight for i in range(10)}
        assert len(weights) == 10
