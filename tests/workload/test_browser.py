"""Tests for browser and OS models."""

import pytest

from repro.sim.events import MS
from repro.timers.spec import TimerKind
from repro.workload.browser import (
    BROWSERS,
    CHROME,
    FIREFOX,
    LINUX,
    MACOS,
    OPERATING_SYSTEMS,
    SAFARI,
    TOR_BROWSER,
    WINDOWS,
    Browser,
    OperatingSystem,
)


class TestBrowserTimers:
    def test_chrome_timer_is_jittered_01ms(self):
        assert CHROME.timer.kind is TimerKind.JITTERED
        assert CHROME.timer.resolution_ns == pytest.approx(0.1 * MS)

    def test_firefox_timer_is_1ms(self):
        assert FIREFOX.timer.resolution_ns == pytest.approx(1 * MS)
        # Modeled as a clamp (see timers.spec): Chrome-style ε-jitter at
        # Δ = 1 ms would contradict the paper's Firefox accuracy.
        assert FIREFOX.timer.kind is TimerKind.QUANTIZED

    def test_safari_timer_is_quantized_1ms(self):
        assert SAFARI.timer.kind is TimerKind.QUANTIZED
        assert SAFARI.timer.resolution_ns == pytest.approx(1 * MS)

    def test_tor_timer_is_quantized_100ms(self):
        assert TOR_BROWSER.timer.kind is TimerKind.QUANTIZED
        assert TOR_BROWSER.timer.resolution_ns == pytest.approx(100 * MS)


class TestBrowserTraces:
    def test_tor_uses_50s_traces(self):
        """The paper collects 50 s traces for Tor, 15 s elsewhere."""
        assert TOR_BROWSER.trace_seconds == 50.0
        assert CHROME.trace_seconds == 15.0

    def test_tor_loads_slowly(self):
        assert TOR_BROWSER.load_stretch > 2.0
        assert CHROME.load_stretch == 1.0

    def test_horizon_ns(self):
        assert CHROME.horizon_ns == 15_000_000_000

    def test_with_timer_swaps(self):
        swapped = CHROME.with_timer(TOR_BROWSER.timer)
        assert swapped.timer is TOR_BROWSER.timer
        assert swapped.name == CHROME.name
        assert CHROME.timer.resolution_ns == pytest.approx(0.1 * MS)  # original intact

    def test_validation(self):
        with pytest.raises(ValueError):
            Browser(name="x", timer=CHROME.timer, load_stretch=0)
        with pytest.raises(ValueError):
            Browser(name="x", timer=CHROME.timer, trace_seconds=-1)
        with pytest.raises(ValueError):
            Browser(name="x", timer=CHROME.timer, measurement_noise=-0.1)

    def test_registry(self):
        assert set(BROWSERS) == {
            "Chrome 92", "Firefox 91", "Safari 14", "Tor Browser 10",
        }


class TestOperatingSystems:
    def test_registry(self):
        assert set(OPERATING_SYSTEMS) == {"Linux", "Windows", "macOS"}

    def test_windows_handlers_cost_more(self):
        assert WINDOWS.handler_cost_factor > LINUX.handler_cost_factor

    def test_linux_tick_rate(self):
        assert LINUX.tick_hz == 250.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingSystem(name="bad", tick_hz=0)
        with pytest.raises(ValueError):
            OperatingSystem(name="bad", handler_cost_factor=0)
        with pytest.raises(ValueError):
            OperatingSystem(name="bad", background_irq_hz=-1)

    def test_softirq_follow_probability_valid(self):
        for os_spec in OPERATING_SYSTEMS.values():
            assert 0 <= os_spec.softirq_follow_probability <= 1
