"""Tests for the interrupt taxonomy and latency models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.interrupts import (
    DEFAULT_LATENCIES,
    MOVABLE_TYPES,
    NON_MOVABLE_TYPES,
    PIGGYBACK_TYPES,
    HandlerLatencyModel,
    InterruptBatch,
    InterruptType,
    LatencySpec,
    _stable_time_order,
    is_movable,
    merge_batches,
)


class TestTaxonomy:
    def test_every_type_is_classified(self):
        assert MOVABLE_TYPES | NON_MOVABLE_TYPES == frozenset(InterruptType)

    def test_movable_and_non_movable_disjoint(self):
        assert not MOVABLE_TYPES & NON_MOVABLE_TYPES

    def test_device_irqs_are_movable(self):
        for itype in (
            InterruptType.NETWORK_RX,
            InterruptType.GRAPHICS,
            InterruptType.DISK,
            InterruptType.KEYBOARD,
        ):
            assert is_movable(itype)

    def test_paper_non_movable_examples(self):
        """Timer ticks, softirqs, resched IPIs and TLB shootdowns cannot move."""
        for itype in (
            InterruptType.TIMER,
            InterruptType.SOFTIRQ_NET_RX,
            InterruptType.RESCHED_IPI,
            InterruptType.TLB_SHOOTDOWN,
        ):
            assert not is_movable(itype)

    def test_piggyback_types_are_non_movable(self):
        assert PIGGYBACK_TYPES <= NON_MOVABLE_TYPES

    def test_every_type_has_a_latency_spec(self):
        assert set(DEFAULT_LATENCIES) == set(InterruptType)


class TestLatencySpec:
    def test_samples_respect_floor(self, rng):
        spec = LatencySpec(median_ns=100.0, sigma=1.0, floor_ns=1_500.0)
        draws = spec.sample(rng, 1000)
        assert draws.min() >= 1_500.0

    def test_median_roughly_matches(self, rng):
        spec = LatencySpec(median_ns=5_000.0, sigma=0.2, floor_ns=0.0)
        draws = spec.sample(rng, 20_000)
        assert np.median(draws) == pytest.approx(5_000.0, rel=0.05)

    def test_meltdown_floor_default(self):
        """Fig 6: all *interrupt* gaps exceed ~1.5 µs due to mitigation
        overhead.  UNKNOWN (Turbo Boost stalls) never enter the kernel,
        so they are exempt from the kernel-entry floor."""
        for itype, spec in DEFAULT_LATENCIES.items():
            if itype is InterruptType.UNKNOWN:
                assert spec.floor_ns < 1_500.0
            else:
                assert spec.floor_ns >= 1_500.0


class TestHandlerLatencyModel:
    def test_platform_factor_scales_samples(self, rng):
        base = HandlerLatencyModel(platform_factor=1.0)
        heavy = HandlerLatencyModel(platform_factor=2.0)
        a = base.sample(InterruptType.TIMER, np.random.default_rng(0), 500)
        b = heavy.sample(InterruptType.TIMER, np.random.default_rng(0), 500)
        np.testing.assert_allclose(b, 2 * a)

    def test_scaled_composes(self):
        model = HandlerLatencyModel(platform_factor=1.5).scaled(2.0)
        assert model.platform_factor == pytest.approx(3.0)

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            HandlerLatencyModel(platform_factor=0.0)


class TestInterruptBatch:
    def test_validates_alignment(self):
        with pytest.raises(ValueError, match="align"):
            InterruptBatch(InterruptType.TIMER, np.arange(3), np.arange(2))

    def test_rejects_negative_durations(self):
        with pytest.raises(ValueError, match="negative"):
            InterruptBatch(InterruptType.TIMER, [1.0], [-1.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            InterruptBatch(InterruptType.TIMER, np.ones((2, 2)), np.ones((2, 2)))

    def test_len(self):
        batch = InterruptBatch(InterruptType.TIMER, [1.0, 2.0], [3.0, 4.0])
        assert len(batch) == 2


class TestMergeBatches:
    def test_merges_and_sorts(self):
        a = InterruptBatch(InterruptType.TIMER, [10.0, 30.0], [1.0, 1.0], cause="tick")
        b = InterruptBatch(InterruptType.NETWORK_RX, [20.0], [2.0], cause="nic")
        times, durations, type_codes, cause_codes, causes = merge_batches([a, b])
        assert list(times) == [10.0, 20.0, 30.0]
        assert list(durations) == [1.0, 2.0, 1.0]
        all_types = list(InterruptType)
        assert all_types[type_codes[1]] is InterruptType.NETWORK_RX
        assert causes[cause_codes[1]] == "nic"

    def test_empty_input(self):
        times, durations, type_codes, cause_codes, causes = merge_batches([])
        assert len(times) == 0 and causes == []

    def test_empty_batches_are_skipped(self):
        empty = InterruptBatch(InterruptType.TIMER, [], [])
        full = InterruptBatch(InterruptType.DISK, [5.0], [1.0])
        times, *_ , causes = merge_batches([empty, full])
        assert len(times) == 1
        assert causes == ["system"]

    def test_stable_for_equal_times(self):
        """Equal arrivals keep batch order (tick before piggybacked work)."""
        tick = InterruptBatch(InterruptType.TIMER, [10.0], [1.0], cause="tick")
        work = InterruptBatch(InterruptType.IRQ_WORK, [10.0], [1.0], cause="work")
        _, _, type_codes, _, _ = merge_batches([tick, work])
        all_types = list(InterruptType)
        assert all_types[type_codes[0]] is InterruptType.TIMER

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e9),
                st.floats(min_value=0, max_value=1e5),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_output_times_always_sorted(self, pairs):
        batch = InterruptBatch(
            InterruptType.TIMER,
            np.array(sorted(p[0] for p in pairs)),
            np.array([p[1] for p in pairs]),
        )
        times, *_ = merge_batches([batch, batch])
        assert np.all(np.diff(times) >= 0)


class TestStableTimeOrder:
    """Boundary coverage for the packed ``group * n + index`` sort key."""

    @staticmethod
    def _tied_times(n: int, n_values: int, seed: int) -> np.ndarray:
        # Many ties: n arrivals drawn from only n_values distinct times.
        rng = np.random.default_rng(seed)
        return rng.integers(0, n_values, size=n).astype(np.float64)

    @pytest.mark.parametrize("n", [46_340, 46_341, 46_342])
    def test_matches_stable_argsort_at_dtype_switch(self, n):
        """The int32→int64 key switch at n=46_341 must not change results.

        At n=46_340 the largest int32 key is (n-1)*n + (n-1) = n²-1 =
        2_147_395_599 < 2³¹-1; one element more and int32 would overflow,
        so the implementation widens — both sides of the switch must agree
        with a stable argsort under heavy ties.
        """
        times = self._tied_times(n, n_values=7, seed=n)
        order = _stable_time_order(times)
        expected = np.argsort(times, kind="stable")
        assert np.array_equal(order, expected)

    def test_extreme_ties_single_value(self):
        """Everything tied: order must be the identity, either dtype."""
        for n in (46_340, 46_342):
            times = np.full(n, 123.0)
            assert np.array_equal(_stable_time_order(times), np.arange(n))

    def test_int32_keys_do_not_overflow_below_switch(self):
        """Worst-case int32 packing: one giant tie run at max in-range n."""
        n = 46_340
        times = np.zeros(n)
        times[-1] = 1.0  # two groups; group index reaches 1, sub reaches n-1
        order = _stable_time_order(times)
        assert np.array_equal(order, np.arange(n))

    def test_guard_rejects_unrepresentable_n(self, monkeypatch):
        """Beyond _MAX_STABLE_SORT_N the key can't fit int64: clear error.

        The real bound (≈3.04e9 elements) is unallocatable in CI, so the
        guard is exercised by lowering the constant.
        """
        from repro.sim import interrupts

        monkeypatch.setattr(interrupts, "_MAX_STABLE_SORT_N", 99)
        with pytest.raises(ValueError, match="overflow int64"):
            _stable_time_order(self._tied_times(100, n_values=3, seed=0))
        # At the bound itself the sort still runs.
        times = self._tied_times(99, n_values=3, seed=0)
        assert np.array_equal(
            _stable_time_order(times), np.argsort(times, kind="stable")
        )

    def test_guard_constant_is_the_int64_bound(self):
        from repro.sim.interrupts import _MAX_STABLE_SORT_N

        n = _MAX_STABLE_SORT_N
        assert n * n - 1 <= np.iinfo(np.int64).max
        assert (n + 1) * (n + 1) - 1 > np.iinfo(np.int64).max
