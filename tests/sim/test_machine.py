"""Integration tests for the interrupt synthesizer."""

import numpy as np
import pytest

from repro.sim.events import SEC
from repro.sim.interrupts import MOVABLE_TYPES, InterruptBatch, InterruptType
from repro.sim.machine import InterruptSynthesizer, MachineConfig
from repro.sim.vm import SEPARATE_VMS
from repro.workload.browser import LINUX, WINDOWS
from repro.workload.website import profile_for

HORIZON = 6 * SEC


def simulate(config=None, seed=11, site_name="nytimes.com", extra=None):
    config = config or MachineConfig(os=LINUX)
    synthesizer = InterruptSynthesizer(config)
    rng = np.random.default_rng(seed)
    site = profile_for(site_name)
    timeline = site.generate_load(rng, HORIZON)
    return synthesizer.synthesize(timeline, style=site.style, rng=rng, extra_batches=extra)


class TestMachineConfig:
    def test_needs_two_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=1)

    def test_attacker_core_in_range(self):
        with pytest.raises(ValueError):
            MachineConfig(n_cores=4, attacker_core=4)

    def test_irqbalance_routes_away_from_attacker(self):
        config = MachineConfig(irqbalance=True, attacker_core=1)
        policy = config.routing_policy()
        rng = np.random.default_rng(0)
        assert set(policy.route_source("nic", 10, rng).tolist()) == {0}

    def test_irqbalance_when_attacker_is_core0(self):
        config = MachineConfig(irqbalance=True, attacker_core=0)
        target = config.routing_policy().target_core
        assert target != 0

    def test_with_isolation(self):
        config = MachineConfig().with_isolation(pin_cores=True)
        assert config.pin_cores is True
        assert MachineConfig().pin_cores is False


class TestSynthesis:
    def test_every_core_gets_timer_ticks(self):
        run = simulate()
        tick_code = list(InterruptType).index(InterruptType.TIMER)
        for core in run.cores:
            ticks = (core.type_codes == tick_code).sum()
            expected = HORIZON / SEC * LINUX.tick_hz
            assert expected * 0.9 <= ticks <= expected * 1.1

    def test_stolen_fraction_plausible(self):
        """Attacker-core steal stays in the calibrated band (DESIGN §6)."""
        run = simulate()
        stolen = run.attacker_timeline.gaps.total_stolen_ns / HORIZON
        assert 0.005 < stolen < 0.30

    def test_irqbalance_removes_movable_from_attacker(self):
        run = simulate(MachineConfig(os=LINUX, irqbalance=True, pin_cores=True))
        movable_codes = {
            list(InterruptType).index(t) for t in MOVABLE_TYPES
        }
        attacker_types = set(run.attacker_timeline.type_codes.tolist())
        assert not (attacker_types & movable_codes)

    def test_non_movable_remain_under_irqbalance(self):
        """Takeaway 5: softirqs/resched IPIs still hit the attacker core."""
        run = simulate(MachineConfig(os=LINUX, irqbalance=True, pin_cores=True))
        types = set(run.attacker_timeline.itypes())
        assert InterruptType.TIMER in types
        assert types & {
            InterruptType.SOFTIRQ_NET_RX,
            InterruptType.SOFTIRQ_TIMER,
            InterruptType.RESCHED_IPI,
            InterruptType.TLB_SHOOTDOWN,
        }

    def test_pinning_removes_contention(self):
        pinned = simulate(MachineConfig(os=LINUX, pin_cores=True))
        causes = set(pinned.attacker_timeline.cause_names)
        assert "scheduler_contention" not in causes

    def test_default_has_contention_cause(self):
        run = simulate()
        assert "scheduler_contention" in run.attacker_timeline.cause_names

    def test_vm_amplifies_stolen_time(self):
        base = simulate(MachineConfig(os=LINUX, pin_cores=True, irqbalance=True))
        vm = simulate(
            MachineConfig(os=LINUX, pin_cores=True, irqbalance=True, vm=SEPARATE_VMS)
        )
        assert (
            vm.attacker_timeline.gaps.total_stolen_ns
            > 1.5 * base.attacker_timeline.gaps.total_stolen_ns
        )

    def test_windows_handlers_slower(self):
        linux_run = simulate(MachineConfig(os=LINUX, pin_cores=True))
        windows_run = simulate(MachineConfig(os=WINDOWS, pin_cores=True))
        linux_mean = np.mean(
            linux_run.attacker_timeline.ends - linux_run.attacker_timeline.starts
        )
        windows_mean = np.mean(
            windows_run.attacker_timeline.ends - windows_run.attacker_timeline.starts
        )
        assert windows_mean > linux_mean

    def test_extra_batches_injected(self):
        batch = InterruptBatch(
            InterruptType.SPURIOUS,
            np.array([1.0 * SEC, 2.0 * SEC]),
            np.array([5000.0, 5000.0]),
            cause="test_injection",
        )
        run = simulate(extra=[(1, batch)])
        assert "test_injection" in run.cores[1].cause_names

    def test_occupancy_bounded(self):
        run = simulate()
        observable = run.occupancy_at(run.occupancy_times)
        assert observable.min() >= 0.0
        assert observable.max() <= 1.0
        assert run.occupancy_victim.min() >= 0.0
        assert run.occupancy_ambient.min() >= 0.0

    def test_occupancy_interpolation(self):
        run = simulate()
        value = run.occupancy_at(HORIZON / 2)
        assert 0.0 <= float(value) <= 1.0

    def test_frequency_schedule_covers_horizon(self):
        run = simulate()
        for t in (0, HORIZON // 2, HORIZON - 1):
            assert 1.6 <= run.frequency.ghz_at(t) <= 3.0

    def test_determinism_per_seed(self):
        a = simulate(seed=42)
        b = simulate(seed=42)
        np.testing.assert_array_equal(a.attacker_timeline.arrivals, b.attacker_timeline.arrivals)

    def test_different_seeds_differ(self):
        a = simulate(seed=1)
        b = simulate(seed=2)
        assert len(a.attacker_timeline) != len(b.attacker_timeline) or not np.array_equal(
            a.attacker_timeline.arrivals, b.attacker_timeline.arrivals
        )


class TestSiteSignal:
    def test_resched_heavy_site_triggers_more_ipis(self):
        """weather.com's style produces more rescheduling traffic (§5.2)."""
        ipi_code = list(InterruptType).index(InterruptType.RESCHED_IPI)
        def ipi_count(site_name):
            total = 0
            for seed in range(3):
                run = simulate(
                    MachineConfig(os=LINUX, pin_cores=True), seed=seed, site_name=site_name
                )
                total += sum(
                    (core.type_codes == ipi_code).sum() for core in run.cores
                )
            return total
        assert ipi_count("weather.com") > 1.5 * ipi_count("amazon.com")

    def test_ripple_concentrates_arrivals(self):
        """Pulsed bursts produce clustered arrivals vs homogeneous ones."""
        from repro.workload.phases import ActivityBurst, BurstKind

        synthesizer = InterruptSynthesizer(MachineConfig())
        rng = np.random.default_rng(0)
        smooth = ActivityBurst(0, SEC, BurstKind.NETWORK, 1.0)
        pulsed = ActivityBurst(0, SEC, BurstKind.NETWORK, 1.0, ripple_hz=20.0, duty=0.4)
        t_smooth = synthesizer._poisson_times(smooth, 5000, rng)
        t_pulsed = synthesizer._poisson_times(pulsed, 5000, rng)
        # Coefficient of variation of inter-arrival times is higher for
        # the pulsed burst (long off-phase silences).
        cv = lambda t: np.std(np.diff(t)) / np.mean(np.diff(t))
        assert cv(t_pulsed) > 1.3 * cv(t_smooth)


class TestTurboBoostArtifacts:
    """Footnote 4: Turbo Boost produces gaps with no OS explanation."""

    def test_disabled_by_default(self):
        run = simulate()
        assert InterruptType.UNKNOWN not in set(run.attacker_timeline.itypes())

    def test_enabled_generates_unknown_gaps(self):
        run = simulate(MachineConfig(os=LINUX, turbo_boost_artifacts=True))
        assert InterruptType.UNKNOWN in set(run.attacker_timeline.itypes())

    def test_artifacts_break_full_attribution(self):
        """With Turbo Boost on, the tracer can no longer explain >99 %
        of gaps — which is why the paper disables it for §5.2."""
        from repro.tracing.attribution import attribute_gaps
        from repro.tracing.ebpf import KprobeTracer

        clean = simulate(MachineConfig(os=LINUX, pin_cores=True))
        boosted = simulate(
            MachineConfig(os=LINUX, pin_cores=True, turbo_boost_artifacts=True)
        )
        clean_fraction = attribute_gaps(KprobeTracer(clean)).attributed_fraction
        boosted_fraction = attribute_gaps(KprobeTracer(boosted)).attributed_fraction
        assert clean_fraction > 0.99
        assert boosted_fraction < 0.97
