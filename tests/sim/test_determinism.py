"""Regression tests: a simulated run is a pure function of (spec, seed).

Guards the ``unseeded-rng`` fix in :mod:`repro.sim.machine` — the
synthesizer used to fall back to ``np.random.default_rng()`` (fresh OS
entropy) when no generator was passed, which silently voided every
bit-identity guarantee downstream.
"""

import numpy as np
import pytest

from repro.sim.events import SEC
from repro.sim.machine import InterruptSynthesizer, MachineConfig
from repro.workload.browser import LINUX
from repro.workload.website import profile_for

HORIZON = 4 * SEC


def _fresh_run(seed=29, site_name="nytimes.com"):
    """Build machine + timeline + run from scratch, as a spec would."""
    synthesizer = InterruptSynthesizer(MachineConfig(os=LINUX))
    rng = np.random.default_rng(seed)
    site = profile_for(site_name)
    timeline = site.generate_load(rng, HORIZON)
    return synthesizer.synthesize(timeline, style=site.style, rng=rng)


class TestSynthesizeRequiresGenerator:
    def test_missing_rng_raises(self):
        synthesizer = InterruptSynthesizer(MachineConfig(os=LINUX))
        site = profile_for("nytimes.com")
        timeline = site.generate_load(np.random.default_rng(0), HORIZON)
        with pytest.raises(TypeError, match="seeded np.random.Generator"):
            synthesizer.synthesize(timeline)

    def test_legacy_randomstate_rejected(self):
        synthesizer = InterruptSynthesizer(MachineConfig(os=LINUX))
        site = profile_for("nytimes.com")
        timeline = site.generate_load(np.random.default_rng(0), HORIZON)
        legacy = np.random.RandomState(0)
        with pytest.raises(TypeError):
            synthesizer.synthesize(timeline, rng=legacy)


class TestSameSpecSameTrace:
    def test_two_machines_from_one_spec_are_bit_identical(self):
        first = _fresh_run()
        second = _fresh_run()
        assert len(first.cores) == len(second.cores)
        for core_a, core_b in zip(first.cores, second.cores):
            np.testing.assert_array_equal(core_a.arrivals, core_b.arrivals)
            np.testing.assert_array_equal(
                core_a.handler_durations, core_b.handler_durations
            )
            np.testing.assert_array_equal(core_a.type_codes, core_b.type_codes)
            np.testing.assert_array_equal(
                core_a.gaps.durations(), core_b.gaps.durations()
            )
        np.testing.assert_array_equal(
            first.occupancy_victim, second.occupancy_victim
        )
        np.testing.assert_array_equal(
            first.occupancy_ambient, second.occupancy_ambient
        )
        np.testing.assert_array_equal(
            first.frequency.boundaries_ns, second.frequency.boundaries_ns
        )
        np.testing.assert_array_equal(first.frequency.ghz, second.frequency.ghz)

    def test_different_seeds_differ(self):
        first = _fresh_run(seed=29)
        second = _fresh_run(seed=30)
        assert not np.array_equal(
            first.attacker_timeline.arrivals, second.attacker_timeline.arrivals
        )
