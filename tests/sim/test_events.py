"""Tests for the discrete-event foundations."""

import pytest

from repro.sim.events import (
    MS,
    SEC,
    US,
    Event,
    EventQueue,
    SimulationClock,
    ms_to_ns,
    ns_to_ms,
    seconds_to_ns,
)


class TestUnits:
    def test_constants_are_consistent(self):
        assert SEC == 1000 * MS == 1_000_000 * US

    def test_ms_roundtrip(self):
        assert ns_to_ms(ms_to_ns(12.5)) == pytest.approx(12.5)

    def test_seconds_to_ns(self):
        assert seconds_to_ns(1.5) == 1_500_000_000

    def test_ms_to_ns_rounds(self):
        assert ms_to_ns(0.0000014) == 1  # 1.4 ns rounds to 1


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0

    def test_advance_to(self):
        clock = SimulationClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_by(self):
        clock = SimulationClock(start_ns=50)
        clock.advance_by(25)
        assert clock.now == 75

    def test_cannot_move_backwards(self):
        clock = SimulationClock(start_ns=10)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(5)

    def test_cannot_advance_by_negative(self):
        with pytest.raises(ValueError, match="negative"):
            SimulationClock().advance_by(-1)

    def test_cannot_start_negative(self):
        with pytest.raises(ValueError):
            SimulationClock(start_ns=-1)


class TestEventQueue:
    def test_pop_returns_time_order(self):
        queue = EventQueue()
        queue.push(30, Event("c"))
        queue.push(10, Event("a"))
        queue.push(20, Event("b"))
        names = [queue.pop()[1].name for _ in range(3)]
        assert names == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        queue.push(5, Event("first"))
        queue.push(5, Event("second"))
        assert queue.pop()[1].name == "first"
        assert queue.pop()[1].name == "second"

    def test_len_counts_live_events(self):
        queue = EventQueue()
        handle = queue.push(1, Event("x"))
        queue.push(2, Event("y"))
        assert len(queue) == 2
        queue.cancel(handle)
        assert len(queue) == 1

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        handle = queue.push(1, Event("dead"))
        queue.push(2, Event("alive"))
        queue.cancel(handle)
        assert queue.pop()[1].name == "alive"

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        handle = queue.push(1, Event("x"))
        queue.cancel(handle)
        queue.cancel(handle)
        assert len(queue) == 0

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(42, Event("x"))
        assert queue.peek_time() == 42

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, Event("x"))

    def test_drain_until_respects_horizon(self):
        queue = EventQueue()
        for t in (10, 20, 30, 40):
            queue.push(t, Event(str(t)))
        drained = [t for t, _ in queue.drain_until(25)]
        assert drained == [10, 20]
        assert len(queue) == 2

    def test_drain_until_invokes_actions(self):
        queue = EventQueue()
        fired = []
        queue.push(5, Event("x", action=fired.append))
        list(queue.drain_until(10))
        assert fired == [5]

    def test_drain_until_inclusive(self):
        queue = EventQueue()
        queue.push(10, Event("edge"))
        assert [t for t, _ in queue.drain_until(10)] == [10]
