"""Tests for the VM isolation model."""

import numpy as np
import pytest

from repro.sim.vm import BARE_METAL, SEPARATE_VMS, VmConfig


class TestVmConfig:
    def test_bare_metal_is_identity(self):
        durations = np.array([1000.0, 2000.0])
        np.testing.assert_array_equal(BARE_METAL.transform_durations(durations), durations)

    def test_vm_amplifies(self):
        durations = np.array([1000.0])
        transformed = SEPARATE_VMS.transform_durations(durations)
        assert transformed[0] > durations[0]

    def test_affine_transform(self):
        config = VmConfig(enabled=True, amplification=2.0, exit_overhead_ns=500.0)
        np.testing.assert_allclose(
            config.transform_durations(np.array([1000.0])), [2500.0]
        )

    def test_amplification_increases_every_interrupt(self):
        """§5.1: host+guest handling amplifies the per-interrupt signal."""
        durations = np.linspace(1500, 10_000, 20)
        transformed = SEPARATE_VMS.transform_durations(durations)
        assert np.all(transformed > durations)
        # Relative ordering preserved: louder interrupts stay louder.
        assert np.all(np.diff(transformed) > 0)

    def test_cannot_be_cheaper_than_bare_metal(self):
        with pytest.raises(ValueError):
            VmConfig(enabled=True, amplification=0.5)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            VmConfig(enabled=True, exit_overhead_ns=-1)
