"""Tests for IRQ routing policies and softirq placement."""

import numpy as np
import pytest

from repro.sim.routing import (
    AffinitySourceRouting,
    PinnedRouting,
    SoftirqPlacement,
    SpreadRouting,
)


class TestAffinityRouting:
    def test_source_sticks_to_one_core(self, rng):
        policy = AffinitySourceRouting(4)
        targets = policy.route_source("nic0", 100, rng)
        assert len(set(targets.tolist())) == 1

    def test_stable_across_calls(self, rng):
        policy = AffinitySourceRouting(4)
        a = policy.route_source("nic0", 5, rng)
        b = policy.route_source("nic0", 5, rng)
        assert a[0] == b[0]

    def test_different_sources_can_differ(self, rng):
        policy = AffinitySourceRouting(8)
        cores = {
            int(policy.route_source(f"dev{i}", 1, rng)[0]) for i in range(40)
        }
        assert len(cores) > 1

    def test_core_for_in_range(self):
        policy = AffinitySourceRouting(4)
        for i in range(50):
            assert 0 <= policy.core_for(f"source{i}") < 4

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            AffinitySourceRouting(0)


class TestSpreadRouting:
    def test_covers_all_cores(self, rng):
        policy = SpreadRouting(4)
        targets = policy.route_source("nic0", 1000, rng)
        assert set(targets.tolist()) == {0, 1, 2, 3}


class TestPinnedRouting:
    def test_everything_to_target(self, rng):
        policy = PinnedRouting(4, target_core=0)
        targets = policy.route_source("whatever", 50, rng)
        assert set(targets.tolist()) == {0}

    def test_rejects_out_of_range_target(self):
        with pytest.raises(ValueError):
            PinnedRouting(4, target_core=4)


class TestSoftirqPlacement:
    def test_follow_probability_one_follows_trigger(self, rng):
        placement = SoftirqPlacement(follow_probability=1.0)
        triggers = np.array([2] * 100)
        assert set(placement.place(triggers, 4, rng).tolist()) == {2}

    def test_follow_probability_zero_spreads(self, rng):
        placement = SoftirqPlacement(follow_probability=0.0)
        triggers = np.array([0] * 2000)
        cores = placement.place(triggers, 4, rng)
        assert set(cores.tolist()) == {0, 1, 2, 3}

    def test_non_movable_leakage_to_other_cores(self, rng):
        """Even with IRQs pinned to core 0, softirqs reach other cores —
        the mechanism behind Takeaway 5."""
        placement = SoftirqPlacement(follow_probability=0.6)
        triggers = np.zeros(5000, dtype=np.int64)  # irqbalanced to core 0
        cores = placement.place(triggers, 4, rng)
        attacker_share = np.mean(cores == 1)
        assert attacker_share > 0.05

    def test_validates_probability(self):
        with pytest.raises(ValueError):
            SoftirqPlacement(follow_probability=1.5)
