"""Tests for the scheduler-contention model."""

import numpy as np
import pytest

from repro.sim.events import SEC
from repro.sim.interrupts import InterruptType
from repro.sim.scheduler import SchedulerConfig, contention_batch
from repro.workload.phases import ActivityBurst, ActivityTimeline, BurstKind


def busy_timeline(horizon=10 * SEC):
    burst = ActivityBurst(0, horizon, BurstKind.COMPUTE, 1.0)
    return ActivityTimeline([burst], horizon)


def idle_timeline(horizon=10 * SEC):
    burst = ActivityBurst(0, 1, BurstKind.INPUT, 0.05)
    return ActivityTimeline([burst], horizon)


class TestSchedulerConfig:
    def test_defaults_valid(self):
        config = SchedulerConfig()
        assert config.slice_min_ns < config.slice_max_ns

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(base_rate_hz=-1)
        with pytest.raises(ValueError):
            SchedulerConfig(slice_min_ns=100, slice_max_ns=50)


class TestContentionBatch:
    def test_events_are_resched_type(self, rng):
        batch = contention_batch(busy_timeline(), SchedulerConfig(), 1.0, rng)
        assert batch.itype is InterruptType.RESCHED_IPI
        assert batch.cause == "scheduler_contention"

    def test_rate_scales_with_load(self):
        config = SchedulerConfig(base_rate_hz=10.0)
        busy_counts = []
        idle_counts = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            busy_counts.append(len(contention_batch(busy_timeline(), config, 1.0, rng)))
            rng = np.random.default_rng(seed)
            idle_counts.append(len(contention_batch(idle_timeline(), config, 1.0, rng)))
        assert np.mean(busy_counts) > np.mean(idle_counts)

    def test_contention_scale_multiplies(self):
        config = SchedulerConfig(base_rate_hz=10.0)
        low = np.mean(
            [
                len(contention_batch(busy_timeline(), config, 0.5, np.random.default_rng(s)))
                for s in range(5)
            ]
        )
        high = np.mean(
            [
                len(contention_batch(busy_timeline(), config, 3.0, np.random.default_rng(s)))
                for s in range(5)
            ]
        )
        assert high > low

    def test_slices_within_bounds(self, rng):
        config = SchedulerConfig()
        batch = contention_batch(busy_timeline(), config, 2.0, rng)
        if len(batch):
            assert batch.durations.min() >= config.slice_min_ns
            assert batch.durations.max() <= config.slice_max_ns

    def test_times_sorted_and_within_horizon(self, rng):
        timeline = busy_timeline()
        batch = contention_batch(timeline, SchedulerConfig(), 2.0, rng)
        assert np.all(np.diff(batch.times) >= 0)
        if len(batch):
            assert batch.times.max() < timeline.horizon_ns + 100 * SEC // 1000

    def test_contention_is_rare(self, rng):
        """Table 3: pinning changes accuracy only ~0.2 %, so contention
        must steal far less time than interrupts do."""
        timeline = busy_timeline()
        batch = contention_batch(timeline, SchedulerConfig(), 1.0, rng)
        stolen_fraction = batch.durations.sum() / timeline.horizon_ns
        assert stolen_fraction < 0.01
