"""Tests for handler serialization and gap accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.interrupts import InterruptBatch, InterruptType
from repro.sim.timeline import (
    GAP_MERGE_EPSILON_NS,
    CoreTimeline,
    GapTimeline,
    serialize_handlers,
)


def naive_serialize(arrivals, durations):
    """Reference implementation of serial handler execution."""
    starts, ends = [], []
    busy_until = 0.0
    for arrival, duration in zip(arrivals, durations):
        start = max(arrival, busy_until)
        starts.append(start)
        ends.append(start + duration)
        busy_until = start + duration
    return np.array(starts), np.array(ends)


class TestSerializeHandlers:
    def test_non_overlapping_pass_through(self):
        starts, ends = serialize_handlers(
            np.array([0.0, 100.0]), np.array([10.0, 10.0])
        )
        assert list(starts) == [0.0, 100.0]
        assert list(ends) == [10.0, 110.0]

    def test_backlog_queues(self):
        starts, ends = serialize_handlers(
            np.array([0.0, 1.0, 2.0]), np.array([10.0, 10.0, 10.0])
        )
        assert list(starts) == [0.0, 10.0, 20.0]
        assert list(ends) == [10.0, 20.0, 30.0]

    def test_empty(self):
        starts, ends = serialize_handlers(np.array([]), np.array([]))
        assert len(starts) == 0 and len(ends) == 0

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            serialize_handlers(np.array([5.0, 1.0]), np.array([1.0, 1.0]))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=1e4),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_reference(self, pairs):
        arrivals = np.array(sorted(p[0] for p in pairs))
        durations = np.array([p[1] for p in pairs])
        starts, ends = serialize_handlers(arrivals, durations)
        ref_starts, ref_ends = naive_serialize(arrivals, durations)
        np.testing.assert_allclose(starts, ref_starts, rtol=1e-12, atol=1e-6)
        np.testing.assert_allclose(ends, ref_ends, rtol=1e-12, atol=1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=1e4),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, pairs):
        arrivals = np.array(sorted(p[0] for p in pairs))
        durations = np.array([p[1] for p in pairs])
        starts, ends = serialize_handlers(arrivals, durations)
        assert np.all(starts >= arrivals - 1e-6)  # nothing starts before arrival
        np.testing.assert_allclose(ends - starts, durations, atol=1e-6)
        assert np.all(starts[1:] >= ends[:-1] - 1e-6)  # serial execution


class TestGapTimeline:
    def make(self):
        return GapTimeline(np.array([10.0, 50.0, 100.0]), np.array([20.0, 70.0, 101.0]))

    def test_total_stolen(self):
        assert self.make().total_stolen_ns == pytest.approx(31.0)

    def test_stolen_before(self):
        gaps = self.make()
        assert gaps.stolen_before(5.0) == 0.0
        assert gaps.stolen_before(15.0) == pytest.approx(5.0)
        assert gaps.stolen_before(20.0) == pytest.approx(10.0)
        assert gaps.stolen_before(60.0) == pytest.approx(20.0)
        assert gaps.stolen_before(1_000.0) == pytest.approx(31.0)

    def test_stolen_before_vectorized(self):
        gaps = self.make()
        result = gaps.stolen_before(np.array([5.0, 15.0, 60.0]))
        np.testing.assert_allclose(result, [0.0, 5.0, 20.0])

    def test_stolen_between(self):
        gaps = self.make()
        assert gaps.stolen_between(15.0, 55.0) == pytest.approx(10.0)

    def test_stolen_between_reversed_raises(self):
        with pytest.raises(ValueError, match="reversed"):
            self.make().stolen_between(10.0, 5.0)

    def test_executed_between(self):
        gaps = self.make()
        assert gaps.executed_between(0.0, 100.0) == pytest.approx(70.0)

    def test_gap_index_at(self):
        gaps = self.make()
        assert gaps.gap_index_at(15.0) == 0
        assert gaps.gap_index_at(5.0) == -1
        assert gaps.gap_index_at(20.0) == -1  # end is exclusive

    def test_next_execution_time(self):
        gaps = self.make()
        assert gaps.next_execution_time(15.0) == 20.0
        assert gaps.next_execution_time(30.0) == 30.0

    def test_gaps_overlapping(self):
        gaps = self.make()
        assert list(gaps.gaps_overlapping(15.0, 60.0)) == [0, 1]
        assert list(gaps.gaps_overlapping(25.0, 45.0)) == []

    def test_empty_timeline(self):
        gaps = GapTimeline.empty()
        assert gaps.total_stolen_ns == 0.0
        assert gaps.stolen_before(100.0) == 0.0
        assert gaps.next_execution_time(5.0) == 5.0
        assert gaps.gap_index_at(5.0) == -1

    def test_rejects_overlapping_gaps(self):
        with pytest.raises(ValueError, match="disjoint"):
            GapTimeline(np.array([0.0, 5.0]), np.array([10.0, 15.0]))

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError, match="non-negative"):
            GapTimeline(np.array([10.0]), np.array([5.0]))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0.1, max_value=1e3),
            ),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0, max_value=2e6),
        st.floats(min_value=0, max_value=2e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_stolen_between_matches_bruteforce(self, pairs, a, b):
        # Build disjoint gaps from sorted cumulative positions.
        pairs.sort()
        starts, ends = [], []
        cursor = 0.0
        for offset, length in pairs:
            start = cursor + offset
            starts.append(start)
            ends.append(start + length)
            cursor = start + length
        gaps = GapTimeline(np.array(starts), np.array(ends))
        t0, t1 = min(a, b), max(a, b)
        brute = sum(
            max(0.0, min(e, t1) - max(s, t0)) for s, e in zip(starts, ends)
        )
        assert gaps.stolen_between(t0, t1) == pytest.approx(brute, abs=1e-6)


class TestCoreTimeline:
    def build(self, arrivals, durations, itype=InterruptType.TIMER):
        batch = InterruptBatch(itype, np.array(arrivals), np.array(durations))
        return CoreTimeline.from_batches([batch])

    def test_isolated_records_have_own_gaps(self):
        core = self.build([0.0, 1000.0, 2000.0], [10.0, 10.0, 10.0])
        assert len(core.gaps) == 3

    def test_adjacent_records_merge(self):
        core = self.build([0.0, 5.0, 8.0], [10.0, 10.0, 10.0])
        assert len(core.gaps) == 1
        assert core.gaps.gap_starts[0] == 0.0
        assert core.gaps.gap_ends[0] == pytest.approx(30.0)

    def test_merge_epsilon(self):
        """Records closer than the epsilon merge into one observed gap."""
        eps = GAP_MERGE_EPSILON_NS
        core = self.build([0.0, 10.0 + eps / 2], [10.0, 5.0])
        assert len(core.gaps) == 1
        core2 = self.build([0.0, 10.0 + 2 * eps], [10.0, 5.0])
        assert len(core2.gaps) == 2

    def test_record_gap_index(self):
        core = self.build([0.0, 5.0, 1000.0], [10.0, 10.0, 10.0])
        assert list(core.record_gap_index) == [0, 0, 1]
        assert list(core.records_in_gap(0)) == [0, 1]

    def test_records_materialization(self):
        core = self.build([0.0, 3.0], [10.0, 4.0], itype=InterruptType.DISK)
        records = core.records()
        assert len(records) == 2
        assert records[1].start_ns == pytest.approx(10.0)  # queued behind first
        assert records[1].handler_ns == pytest.approx(4.0)
        assert records[1].itype is InterruptType.DISK

    def test_mixed_batches_sorted(self):
        tick = InterruptBatch(InterruptType.TIMER, [100.0], [5.0])
        net = InterruptBatch(InterruptType.NETWORK_RX, [50.0], [5.0])
        core = CoreTimeline.from_batches([tick, net])
        assert core.itypes() == [InterruptType.NETWORK_RX, InterruptType.TIMER]

    def test_empty_core(self):
        core = CoreTimeline.from_batches([])
        assert len(core) == 0
        assert len(core.gaps) == 0
