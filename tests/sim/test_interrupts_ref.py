"""The retained reference synthesizer must match the vectorized one bit-for-bit."""

import numpy as np
import pytest

from repro.sim.interrupts import InterruptBatch, InterruptType, merge_batches
from repro.sim.interrupts_ref import (
    ReferenceHandlerLatencyModel,
    ReferenceInterruptSynthesizer,
    merge_batches_ref,
)
from repro.sim.machine import InterruptSynthesizer, MachineConfig
from repro.sim.vm import SEPARATE_VMS
from repro.workload.catalog import closed_world

HORIZON_NS = int(1.0e9)

CORE_ARRAYS = (
    "arrivals",
    "handler_durations",
    "type_codes",
    "cause_codes",
    "starts",
    "ends",
    "record_gap_index",
)


def synth_pair(seed: int, **config_kwargs):
    config = MachineConfig(**config_kwargs)
    site = closed_world(4)[seed % 4]
    timeline = site.generate_load(np.random.default_rng(seed + 1), HORIZON_NS)
    optimized = InterruptSynthesizer(config).synthesize(
        timeline, style=site.style, rng=np.random.default_rng(seed)
    )
    reference = ReferenceInterruptSynthesizer(config).synthesize(
        timeline, style=site.style, rng=np.random.default_rng(seed)
    )
    return optimized, reference


def assert_runs_identical(optimized, reference):
    for core, (a, b) in enumerate(zip(optimized.cores, reference.cores)):
        for name in CORE_ARRAYS:
            assert np.array_equal(getattr(a, name), getattr(b, name)), (core, name)
        assert a.cause_names == b.cause_names
        assert np.array_equal(a.gaps.gap_starts, b.gaps.gap_starts)
        assert np.array_equal(a.gaps.gap_ends, b.gaps.gap_ends)
    assert np.array_equal(optimized.frequency.boundaries_ns, reference.frequency.boundaries_ns)
    assert np.array_equal(optimized.frequency.ghz, reference.frequency.ghz)
    assert np.array_equal(optimized.occupancy_victim, reference.occupancy_victim)
    assert np.array_equal(optimized.occupancy_ambient, reference.occupancy_ambient)


class TestBitIdentity:
    @pytest.mark.parametrize("seed", range(5))
    def test_default_config(self, seed):
        assert_runs_identical(*synth_pair(seed))

    def test_irqbalance(self):
        assert_runs_identical(*synth_pair(3, irqbalance=True))

    def test_pinned_cores(self):
        assert_runs_identical(*synth_pair(4, pin_cores=True))

    def test_turbo_artifacts(self):
        assert_runs_identical(*synth_pair(5, turbo_boost_artifacts=True))

    def test_vm(self):
        assert_runs_identical(*synth_pair(6, vm=SEPARATE_VMS))

    def test_many_cores(self):
        assert_runs_identical(*synth_pair(7, n_cores=8, attacker_core=5))


class TestPerturbHook:
    def test_flag_moves_only_the_optimized_path(self, monkeypatch):
        monkeypatch.setenv("BIGGERFISH_SIM_PERTURB", "1")
        optimized, reference = synth_pair(0)
        with pytest.raises(AssertionError):
            assert_runs_identical(optimized, reference)

    def test_flag_absent_is_identical(self, monkeypatch):
        monkeypatch.delenv("BIGGERFISH_SIM_PERTURB", raising=False)
        assert_runs_identical(*synth_pair(0))


class TestMergeBatchesRef:
    def test_matches_optimized_merge(self):
        rng = np.random.default_rng(2)
        batches = []
        for i in range(6):
            # Quantized times force cross-batch ties.
            times = np.sort(rng.integers(0, 50, size=rng.integers(1, 30)))
            batches.append(
                InterruptBatch(
                    list(InterruptType)[i % 4],
                    times.astype(np.float64),
                    rng.uniform(1.0, 5.0, size=len(times)),
                    cause=f"b{i % 3}",
                )
            )
        ref = merge_batches_ref(batches)
        opt = merge_batches(batches)
        for r, o in zip(ref[:4], opt[:4]):
            assert np.array_equal(r, o)
        assert ref[4] == opt[4]

    def test_empty(self):
        times, durations, type_codes, cause_codes, causes = merge_batches_ref([])
        assert len(times) == 0 and causes == []


class TestReferenceLatencyModel:
    def test_unit_factor_is_bit_identical(self):
        from repro.sim.interrupts import HandlerLatencyModel

        opt = HandlerLatencyModel(platform_factor=1.0)
        ref = ReferenceHandlerLatencyModel(platform_factor=1.0)
        a = opt.sample(InterruptType.TIMER, np.random.default_rng(0), 500)
        b = ref.sample(InterruptType.TIMER, np.random.default_rng(0), 500)
        assert np.array_equal(a, b)
