"""Tests for the DVFS/turbo model."""

import numpy as np
import pytest

from repro.sim.events import MS, SEC
from repro.sim.frequency import (
    FrequencyConfig,
    FrequencyTrace,
    IterationRateModel,
    TurboGovernor,
)


class TestFrequencyConfig:
    def test_paper_machine_span(self):
        config = FrequencyConfig()
        assert config.min_ghz == 1.6
        assert config.max_ghz == 3.0
        assert config.pinned_ghz == 2.5  # cpufreq-set value from §5.1

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyConfig(min_ghz=3.0, max_ghz=2.0)
        with pytest.raises(ValueError):
            FrequencyConfig(pinned_ghz=5.0)
        with pytest.raises(ValueError):
            FrequencyConfig(turbo_droop=1.5)


class TestFrequencyTrace:
    def test_lookup(self):
        trace = FrequencyTrace(np.array([0.0, 100.0]), np.array([3.0, 2.5]))
        assert trace.ghz_at(50.0) == 3.0
        assert trace.ghz_at(100.0) == 2.5
        assert trace.ghz_at(1e9) == 2.5

    def test_before_first_boundary_clamps(self):
        trace = FrequencyTrace(np.array([100.0]), np.array([2.0]))
        assert trace.ghz_at(0.0) == 2.0

    def test_vectorized(self):
        trace = FrequencyTrace(np.array([0.0, 100.0]), np.array([3.0, 2.5]))
        np.testing.assert_allclose(trace.ghz_at(np.array([0.0, 150.0])), [3.0, 2.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyTrace(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            FrequencyTrace(np.array([0.0, 0.0]), np.array([1.0, 2.0]))


class TestTurboGovernor:
    def test_idle_runs_at_max_turbo(self):
        governor = TurboGovernor(FrequencyConfig(load_noise=0.0))
        assert governor.ghz_for_load(0.0) == 3.0

    def test_load_droops_frequency(self):
        governor = TurboGovernor(FrequencyConfig(load_noise=0.0))
        assert governor.ghz_for_load(1.0) < governor.ghz_for_load(0.0)

    def test_binned_to_100mhz(self):
        governor = TurboGovernor(FrequencyConfig())
        for load in np.linspace(0, 1, 21):
            ghz = governor.ghz_for_load(float(load))
            assert abs(ghz * 10 - round(ghz * 10)) < 1e-9

    def test_disabled_scaling_pins_frequency(self, rng):
        config = FrequencyConfig(scaling_enabled=False)
        trace = TurboGovernor(config).run(lambda t: 1.0, SEC, rng)
        assert trace.ghz_at(0.5 * SEC) == config.pinned_ghz

    def test_run_tracks_load_curve(self, rng):
        config = FrequencyConfig(load_noise=0.0)
        load_at = lambda t: 1.0 if t > 0.5 * SEC else 0.0
        trace = TurboGovernor(config).run(load_at, SEC, rng)
        assert trace.ghz_at(0.1 * SEC) > trace.ghz_at(0.9 * SEC)

    def test_run_rejects_bad_horizon(self, rng):
        with pytest.raises(ValueError):
            TurboGovernor(FrequencyConfig()).run(lambda t: 0.0, 0, rng)


class TestIterationRateModel:
    def test_calibration_hits_paper_counter_ceiling(self):
        """At max turbo, one 5 ms period fits ~27 000 iterations (Fig 3)."""
        model = IterationRateModel()
        counter = 5 * MS * model.iterations_per_ns(3.0)
        assert 26_000 <= counter <= 28_500

    def test_rate_scales_with_frequency(self):
        model = IterationRateModel()
        assert model.iterations_per_ns(3.0) == pytest.approx(
            1.2 * model.iterations_per_ns(2.5)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            IterationRateModel(base_iter_ns=0)
