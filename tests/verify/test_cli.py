"""``biggerfish verify`` CLI: exit codes, JSON reports, shrinking."""

import json

import pytest

from repro.experiments.runner import main as runner_main
from repro.verify.cli import main

FAST = "--sites=1", "--traces=1", "--horizon-ms=50"


class TestList:
    def test_lists_builtin_oracles(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "sim.synthesize" in out
        assert "invariant" in out and "bit" in out


class TestSweep:
    def test_passing_sweep_exits_zero(self, capsys):
        code = main(["--oracles", "ml.artifact,timers.crossing", "--seeds", "2", *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS  ml.artifact" in out
        assert "all oracles agree" in out

    def test_failing_sweep_exits_one_with_counterexample(self, capsys, monkeypatch):
        monkeypatch.setenv("BIGGERFISH_SIM_PERTURB", "1")
        code = main(
            ["--oracles", "sim.synthesize", "--seed-list", "0",
             "--sites", "2", "--traces", "1", "--horizon-ms", "50"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL  sim.synthesize" in out
        assert "case: seed=0" in out

    def test_json_report_written(self, capsys, tmp_path):
        destination = tmp_path / "report.json"
        code = main(
            ["--oracles", "ml.artifact", "--seed-list", "3,5", *FAST,
             "--json", str(destination)]
        )
        assert code == 0
        report = json.loads(destination.read_text())
        assert report["ok"] is True
        assert report["cases"] == 2
        assert report["oracles"]["ml.artifact"]["mode"] == "bit"

    def test_shrink_emits_repro_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("BIGGERFISH_SIM_PERTURB", "1")
        destination = tmp_path / "report.json"
        code = main(
            ["--oracles", "sim.synthesize", "--seed-list", "0", "--traces", "1",
             "--shrink", "--json", str(destination)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "repro: PYTHONPATH=src python -m repro.verify" in out
        report = json.loads(destination.read_text())
        assert report["ok"] is False
        (entry,) = report["shrunk"]
        assert entry["oracle"] == "sim.synthesize"
        assert "--seed-list 0" in entry["repro_command"]


class TestUsageErrors:
    @pytest.mark.parametrize(
        "argv",
        [
            ["--oracles", "no.such.oracle", "--seeds", "1", *FAST],
            ["--seed-list", "1,zebra"],
            ["--seed-list", ""],
            ["--seeds", "0"],
            ["--jobs", "0"],
            ["--sites", "0"],
        ],
    )
    def test_exit_code_two(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2


class TestRunnerDispatch:
    def test_biggerfish_verify_subcommand(self, capsys):
        code = runner_main(["verify", "--oracles", "ml.artifact", "--seeds", "1", *FAST])
        assert code == 0
        assert "PASS  ml.artifact" in capsys.readouterr().out
