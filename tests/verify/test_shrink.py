"""Greedy shrinker: minimization, fixpoints, repro commands."""

import pytest

import repro.verify.oracles  # noqa: F401 - populate the registry
from repro.verify.oracle import ORACLES, Case, Oracle
from repro.verify.shrink import repro_command, shrink, shrink_report


def _install(monkeypatch, name, check):
    monkeypatch.setitem(
        ORACLES,
        name,
        Oracle(name=name, description="synthetic", mode="invariant", check=check),
    )


class TestShrink:
    def test_always_failing_collapses_to_floor(self, monkeypatch):
        _install(monkeypatch, "test.always", lambda case: "broken")
        result = shrink("test.always", Case(seed=9, sites=8, traces=4, horizon_ms=800.0))
        assert result.shrunk == Case(seed=9, sites=1, traces=1, horizon_ms=50.0)
        # Original failure + one floor probe; no halving needed.
        assert result.attempts == 2
        assert result.failure == "broken"

    def test_partial_shrink_respects_the_failure(self, monkeypatch):
        _install(
            monkeypatch,
            "test.needs_scale",
            lambda case: "broken" if case.sites >= 2 and case.traces >= 2 else None,
        )
        result = shrink(
            "test.needs_scale", Case(seed=1, sites=8, traces=8, horizon_ms=400.0)
        )
        assert result.shrunk.sites == 2
        assert result.shrunk.traces == 2
        assert result.shrunk.horizon_ms == 50.0
        assert result.shrunk.seed == 1  # the seed is never changed

    def test_passing_case_is_rejected(self, monkeypatch):
        _install(monkeypatch, "test.pass", lambda case: None)
        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink("test.pass", Case(seed=0))

    def test_attempt_budget_is_respected(self, monkeypatch):
        calls = []

        def check(case):
            calls.append(case)
            return "broken"

        _install(monkeypatch, "test.budget", check)
        shrink("test.budget", Case(seed=0, sites=64, traces=64), max_attempts=3)
        assert len(calls) <= 3

    def test_perturbed_synthesizer_shrinks_to_one_line_repro(self, monkeypatch):
        monkeypatch.setenv("BIGGERFISH_SIM_PERTURB", "1")
        result = shrink("sim.synthesize", Case(seed=0, sites=2, traces=2))
        assert result.shrunk.traces == 1  # the oracle ignores traces entirely
        assert result.shrunk.horizon_ms == 50.0
        command = result.repro_command
        assert command.startswith("PYTHONPATH=src python -m repro.verify")
        assert "--oracles sim.synthesize" in command
        assert "--seed-list 0" in command
        report = shrink_report(result)
        assert command in report and "attempt(s)" in report


class TestReproCommand:
    def test_round_trips_every_case_field(self):
        command = repro_command("timers.crossing", Case(seed=7, sites=3, traces=5, horizon_ms=125.0))
        assert "--seed-list 7" in command
        assert "--sites 3" in command
        assert "--traces 5" in command
        assert "--horizon-ms 125" in command
