"""Structural comparator: modes, paths, first-mismatch reporting."""

import numpy as np
import pytest

from repro.verify.compare import diff_structures


class TestAgreement:
    def test_identical_nested_structure(self):
        value = {
            "cores": [
                {"arrivals": np.arange(5.0), "label": "a"},
                {"arrivals": np.empty(0), "label": "b"},
            ],
            "count": 3,
        }
        assert diff_structures(value, value) is None

    def test_nan_equals_nan_in_bit_mode(self):
        a = np.array([1.0, np.nan, 3.0])
        assert diff_structures(a, a.copy(), mode="bit") is None
        assert diff_structures(float("nan"), float("nan"), mode="bit") is None

    def test_int_float_cross_type_numbers_agree(self):
        assert diff_structures(2, 2.0, mode="bit") is None
        assert diff_structures(np.float64(1.5), 1.5, mode="bit") is None

    def test_allclose_tolerates_small_drift(self):
        a = np.linspace(0.0, 1.0, 10)
        b = a + 1e-12
        assert diff_structures(a, b, mode="bit") is not None
        assert diff_structures(a, b, mode="allclose", rtol=1e-9, atol=1e-9) is None


class TestDivergence:
    def test_array_mismatch_reports_path_and_element(self):
        a = {"cores": [{"arrivals": np.array([1.0, 2.0, 3.0])}]}
        b = {"cores": [{"arrivals": np.array([1.0, 2.5, 3.0])}]}
        message = diff_structures(a, b)
        assert "$.cores[0].arrivals" in message
        assert "element 1" in message
        assert "1 of 3" in message

    def test_shape_and_dtype_kind_mismatches(self):
        assert "shapes differ" in diff_structures(np.zeros(3), np.zeros(4))
        assert "dtype kinds differ" in diff_structures(
            np.zeros(3), np.zeros(3, dtype=np.int64)
        )

    def test_dict_key_mismatch(self):
        message = diff_structures({"a": 1}, {"b": 1})
        assert "only in reference: ['a']" in message
        assert "only in optimized: ['b']" in message

    def test_length_and_scalar_mismatches(self):
        assert "lengths differ" in diff_structures([1], [1, 2])
        assert "values differ" in diff_structures("x", "y")
        assert "numbers differ" in diff_structures(1.0, 2.0)

    def test_type_mismatch(self):
        assert "types differ" in diff_structures("1", 1)
        assert "types differ" in diff_structures(np.zeros(2), [0.0, 0.0])

    def test_unsupported_leaf(self):
        message = diff_structures(object(), object())
        assert "unsupported leaf" in message

    @pytest.mark.parametrize("mode", ["bit", "allclose"])
    def test_first_divergence_only(self, mode):
        a = [np.array([1.0]), np.array([2.0]), np.array([3.0])]
        b = [np.array([1.0]), np.array([9.0]), np.array([8.0])]
        message = diff_structures(a, b, mode=mode)
        assert "$[1]" in message and "$[2]" not in message
