"""Case/Oracle model and the process-global registry."""

import pytest

import repro.verify.oracles  # noqa: F401 - populate the registry
from repro.verify.oracle import (
    ORACLES,
    Case,
    Oracle,
    get_oracle,
    list_oracles,
    register,
)


class TestCase:
    def test_defaults_and_dict(self):
        case = Case(seed=3)
        assert case.as_dict() == {
            "seed": 3,
            "sites": 2,
            "traces": 2,
            "horizon_ms": 400.0,
        }
        assert "seed=3" in case.describe()

    @pytest.mark.parametrize(
        "kwargs", [{"sites": 0}, {"traces": 0}, {"horizon_ms": 0.0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Case(seed=0, **kwargs)


class TestOracleModel:
    def test_invariant_mode_requires_exactly_check(self):
        with pytest.raises(ValueError, match="invariant"):
            Oracle(name="x", description="", mode="invariant")
        with pytest.raises(ValueError, match="invariant"):
            Oracle(
                name="x",
                description="",
                mode="invariant",
                check=lambda case: None,
                reference=lambda case: 1,
                optimized=lambda case: 1,
            )

    def test_differential_modes_require_both_sides(self):
        with pytest.raises(ValueError, match="reference"):
            Oracle(name="x", description="", mode="bit", reference=lambda case: 1)

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="comparison mode"):
            Oracle(name="x", description="", mode="fuzzy", check=lambda case: None)

    def test_run_case_differential_and_invariant(self):
        bit = Oracle(
            name="x",
            description="",
            mode="bit",
            reference=lambda case: case.seed,
            optimized=lambda case: case.seed + (case.seed % 2),
        )
        assert bit.run_case(Case(seed=0)) is None
        assert "numbers differ" in bit.run_case(Case(seed=1))
        inv = Oracle(
            name="y",
            description="",
            mode="invariant",
            check=lambda case: None if case.seed == 0 else "broken",
        )
        assert inv.run_case(Case(seed=0)) is None
        assert inv.run_case(Case(seed=1)) == "broken"


class TestRegistry:
    def test_builtins_are_registered(self):
        names = list_oracles()
        assert {
            "engine.parallel",
            "engine.trace_cache",
            "ml.artifact",
            "serve.batched",
            "sim.gap_timeline",
            "sim.synthesize",
            "timers.crossing",
        } <= set(names)
        assert names == sorted(names)

    def test_duplicate_registration_rejected(self):
        existing = ORACLES["sim.synthesize"]
        with pytest.raises(ValueError, match="already registered"):
            register(existing)

    def test_get_oracle_error_lists_known_names(self):
        with pytest.raises(KeyError, match="sim.synthesize"):
            get_oracle("no.such.oracle")
