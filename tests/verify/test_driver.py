"""Seed-sweep driver: aggregation, parallel fan-out, fault surfacing."""

import pytest

import repro.verify.oracles  # noqa: F401 - populate the registry
from repro.verify.driver import make_cases, sweep
from repro.verify.oracle import ORACLES, Case, Oracle

#: Cheap built-ins for driver-shape tests (no trace collection).
FAST_ORACLES = ["ml.artifact", "timers.crossing"]
SMALL = {"sites": 1, "traces": 1, "horizon_ms": 50.0}


class TestMakeCases:
    def test_one_case_per_seed(self):
        cases = make_cases([0, 5], sites=1, traces=3, horizon_ms=60.0)
        assert [c.seed for c in cases] == [0, 5]
        assert all(c.sites == 1 and c.traces == 3 for c in cases)

    def test_invalid_shape_propagates(self):
        with pytest.raises(ValueError):
            make_cases([0], sites=0)


class TestSweep:
    def test_empty_cases_rejected(self):
        with pytest.raises(ValueError, match="at least one case"):
            sweep([])

    def test_unknown_oracle_fails_fast(self):
        with pytest.raises(KeyError, match="no.such"):
            sweep(make_cases([0], **SMALL), oracles=["no.such"])

    def test_passing_sweep_report(self):
        cases = make_cases([0, 1], **SMALL)
        report = sweep(cases, oracles=FAST_ORACLES)
        assert report.ok
        assert report.n_cases == len(FAST_ORACLES) * len(cases)
        assert report.n_failures == 0
        for name in FAST_ORACLES:
            oracle_report = report.oracles[name]
            assert oracle_report.ok and oracle_report.counterexample is None
            assert len(oracle_report.results) == 2
        as_dict = report.as_dict()
        assert as_dict["ok"] is True
        assert set(as_dict["oracles"]) == set(FAST_ORACLES)

    def test_synthetic_failure_is_aggregated(self, monkeypatch):
        monkeypatch.setitem(
            ORACLES,
            "test.flaky",
            Oracle(
                name="test.flaky",
                description="fails on odd seeds",
                mode="invariant",
                check=lambda case: None if case.seed % 2 == 0 else "odd seed",
            ),
        )
        report = sweep(make_cases([0, 1, 2, 3], **SMALL), oracles=["test.flaky"])
        assert not report.ok
        assert report.n_failures == 2
        counterexample = report.oracles["test.flaky"].counterexample
        assert counterexample.case.seed == 1
        assert counterexample.failure == "odd seed"
        failures = report.as_dict()["oracles"]["test.flaky"]["failures"]
        assert [f["case"]["seed"] for f in failures] == [1, 3]

    def test_parallel_matches_serial(self):
        cases = make_cases([0, 1, 2], **SMALL)
        serial = sweep(cases, oracles=FAST_ORACLES, jobs=1)
        parallel = sweep(cases, oracles=FAST_ORACLES, jobs=2)
        assert parallel.ok and serial.ok
        assert parallel.n_cases == serial.n_cases
        # Engine results come back in task order, like the serial path.
        for name in FAST_ORACLES:
            serial_cases = [r.case for r in serial.oracles[name].results]
            parallel_cases = [r.case for r in parallel.oracles[name].results]
            assert serial_cases == parallel_cases


class TestFaultInjection:
    """The acceptance path: a perturbed RNG draw must trip its oracle."""

    def test_perturb_trips_only_sim_synthesize(self, monkeypatch):
        monkeypatch.setenv("BIGGERFISH_SIM_PERTURB", "1")
        case = Case(seed=0, sites=2, traces=1, horizon_ms=50.0)
        report = sweep([case], oracles=["sim.synthesize", "timers.crossing"])
        assert not report.ok
        assert not report.oracles["sim.synthesize"].ok
        assert report.oracles["timers.crossing"].ok
        failure = report.oracles["sim.synthesize"].counterexample.failure
        assert "arrivals" in failure

    def test_clean_environment_passes(self, monkeypatch):
        monkeypatch.delenv("BIGGERFISH_SIM_PERTURB", raising=False)
        case = Case(seed=0, sites=2, traces=1, horizon_ms=50.0)
        report = sweep([case], oracles=["sim.synthesize"])
        assert report.ok
