"""Exporters: spool merge, profile.jsonl round-trip, summary, SVG timeline."""

from __future__ import annotations

import json

from repro import obs
from repro.obs.export import (
    Profile,
    export_run,
    merge_spool,
    read_profile,
    render_timeline,
    summarize,
    write_profile,
)


def _sample_profile() -> Profile:
    """A hand-built two-process profile with known numbers."""
    spans = [
        {
            "type": "span", "name": "engine.map", "pid": 100, "tid": 1,
            "span_id": 1, "parent_id": None, "depth": 0, "t_start": 10.0,
            "wall_s": 2.0, "cpu_s": 0.5, "rss_peak_kb": 1000,
            "attrs": {"stage": "collect", "tasks": 4, "jobs": 2},
        },
        {
            "type": "span", "name": "collect.trace", "pid": 200, "tid": 2,
            "span_id": 1, "parent_id": None, "depth": 0, "t_start": 10.5,
            "wall_s": 0.8, "cpu_s": 0.7, "rss_peak_kb": 2000,
            "attrs": {"site": "a.com", "index": 0},
        },
        {
            "type": "span", "name": "collect.trace", "pid": 200, "tid": 2,
            "span_id": 2, "parent_id": None, "depth": 0, "t_start": 11.4,
            "wall_s": 0.5, "cpu_s": 0.4, "rss_peak_kb": 2100,
            "attrs": {"site": "b.com", "index": 1},
        },
    ]
    metrics = {
        "counters": {"engine.cache.hits": 3, "engine.cache.misses": 1},
        "gauges": {},
        "histograms": {},
    }
    return Profile(spans=spans, metrics=metrics)


class TestMergeSpool:
    def test_round_trip_through_live_spool(self, spool):
        with obs.span("outer"):
            with obs.span("inner"):
                obs.counter("n").inc(7)
        obs.flush_metrics()
        profile = merge_spool(spool)
        # Spool files hold completion order; the merge re-sorts by start time.
        assert [e["name"] for e in profile.spans] == ["outer", "inner"]
        assert profile.metrics["counters"] == {"n": 7}

    def test_empty_spool(self, tmp_path):
        profile = merge_spool(tmp_path)
        assert profile.spans == []
        assert profile.metrics["counters"] == {}


class TestProfileFile:
    def test_write_read_round_trip(self, tmp_path):
        profile = _sample_profile()
        path = write_profile(profile, tmp_path / "profile.jsonl")
        loaded = read_profile(path)
        assert loaded.spans == profile.spans
        assert loaded.metrics["counters"] == profile.metrics["counters"]

    def test_jsonl_lines_parse(self, tmp_path):
        path = write_profile(_sample_profile(), tmp_path / "p.jsonl")
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        assert json.loads(lines[-1])["type"] == "metrics"


class TestSummarize:
    def test_aggregates_by_name(self):
        summary = summarize(_sample_profile())
        assert summary["processes"] == 2
        assert summary["events"] == 3
        assert summary["peak_rss_kb"] == 2100
        collect = summary["spans"]["collect.trace"]
        assert collect["count"] == 2
        assert collect["wall_s"] == 1.3
        assert collect["max_rss_kb"] == 2100

    def test_stage_rollup_from_engine_map(self):
        summary = summarize(_sample_profile())
        assert summary["stages"] == {
            "collect": {"wall_s": 2.0, "maps": 1, "tasks": 4}
        }

    def test_top_spans_sorted_and_capped(self):
        summary = summarize(_sample_profile(), top_n=2)
        names = [s["name"] for s in summary["top_spans"]]
        assert names == ["engine.map", "collect.trace"]
        assert summary["top_spans"][1]["attrs"]["site"] == "a.com"

    def test_metrics_passthrough(self):
        summary = summarize(_sample_profile())
        assert summary["metrics"]["counters"]["engine.cache.hits"] == 3


class TestTimeline:
    def test_empty_profile_renders_nothing(self):
        assert render_timeline(Profile()) is None

    def test_svg_structure(self):
        svg = render_timeline(_sample_profile())
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "engine.map" in svg  # legend carries span names
        assert "pid 100" in svg and "pid 200" in svg

    def test_lane_per_process(self):
        # Two processes -> two pid labels even with overlapping times.
        svg = render_timeline(_sample_profile())
        assert svg.count("pid ") == 2


class TestExportRun:
    def test_writes_artifacts(self, spool, tmp_path):
        with obs.span("solo"):
            obs.counter("k").inc()
        obs.flush_metrics()
        out = tmp_path / "out"
        profile, summary = export_run(spool, out)
        assert (out / "profile.jsonl").exists()
        assert (out / "profile_timeline.svg").exists()
        assert summary["spans"]["solo"]["count"] == 1
        assert profile.metrics["counters"] == {"k": 1}

    def test_no_save_dir(self, spool):
        with obs.span("solo"):
            pass
        profile, summary = export_run(spool, None)
        assert summary["events"] == 1
