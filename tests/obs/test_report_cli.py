"""``biggerfish report`` rendering on a synthetic, fully deterministic run."""

from __future__ import annotations

import json

from repro.experiments import runner
from repro.obs.export import Profile, write_profile
from repro.obs.report import report_command


def _make_run_dir(
    tmp_path, status="ok", with_profile=True, with_manifest=True, with_faults=False
):
    """A hand-built run directory with fixed timestamps and sizes."""
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    if with_profile:
        spans = [
            {
                "type": "span", "name": "engine.map", "pid": 100, "tid": 1,
                "span_id": 1, "parent_id": None, "depth": 0, "t_start": 10.0,
                "wall_s": 2.0, "cpu_s": 0.5, "rss_peak_kb": 1024,
                "attrs": {"stage": "collect", "tasks": 4, "jobs": 2},
            },
            {
                "type": "span", "name": "collect.trace", "pid": 200, "tid": 2,
                "span_id": 1, "parent_id": None, "depth": 0, "t_start": 10.5,
                "wall_s": 0.8, "cpu_s": 0.7, "rss_peak_kb": 2048,
                "attrs": {"site": "a.com", "index": 0},
            },
        ]
        metrics = {
            "counters": {"collect.traces": 4},
            "gauges": {"engine.jobs": 2.0},
            "histograms": {
                "ml.epoch_seconds": {
                    "buckets": [1.0], "counts": [4, 0], "sum": 2.0, "count": 4,
                }
            },
        }
        write_profile(Profile(spans=spans, metrics=metrics), run_dir / "profile.jsonl")
    if with_manifest:
        manifest = {
            "schema": 1,
            "status": status,
            "scale": "smoke",
            "seed": 0,
            "jobs": 2,
            "experiments": {
                "table1": {
                    "elapsed_s": 2.5,
                    "stages": {
                        "collect": {
                            "seconds": 2.0,
                            "tasks": 4,
                            "task_seconds": {"min": 0.4, "mean": 0.5, "max": 0.6},
                        }
                    },
                }
            },
            "cache": {"hits": 3, "misses": 1, "puts": 1, "evictions": 0},
        }
        if with_faults:
            manifest["faults"] = {
                "retries": 2, "timeouts": 1, "tasks_lost": 0,
                "pool_respawns": 0, "task_errors": 2,
            }
            manifest["experiments"]["table1"]["stages"]["collect"]["task_errors"] = [
                {
                    "stage": "collect", "index": 3, "attempt": 0,
                    "kind": "exception", "error_type": "InjectedFault",
                    "message": "injected raise fault", "where": "faults.py:1",
                },
                {
                    "stage": "collect", "index": 1, "attempt": 1,
                    "kind": "timeout", "error_type": "TimeoutError",
                    "message": "task exceeded the 0.5s task timeout", "where": "",
                },
            ]
        if status == "failed":
            manifest["error"] = {
                "experiment": "table1",
                "type": "ValueError",
                "message": "boom",
                "where": "pipeline.py:1",
            }
        (run_dir / "run_manifest.json").write_text(json.dumps(manifest))
    return run_dir


class TestReportCommand:
    def test_full_breakdown(self, tmp_path):
        run_dir = _make_run_dir(tmp_path)
        code, text = report_command(str(run_dir))
        assert code == 0
        lines = text.splitlines()
        assert lines[0] == f"run: {run_dir}"
        assert lines[1] == "scale=smoke seed=0 jobs=2 status=ok"
        assert "per-stage breakdown:" in text
        stage_row = next(line for line in lines if line.startswith("table1"))
        for cell in ("collect", "2.000s", "4", "0.400s", "0.500s", "0.600s"):
            assert cell in stage_row
        assert "spans (2 events from 2 process(es), peak rss 2.0MB):" in lines
        span_rows = [line for line in lines if line.startswith("collect.trace")]
        assert any("0.800s" in row and "0.700s" in row for row in span_rows)
        assert any("slowest spans" in line for line in lines)
        top_row = next(line for line in lines if "stage=collect" in line)
        assert "engine.map" in top_row and "2.000s" in top_row
        assert "metrics:" in text
        assert any("collect.traces" in line and "4" in line for line in lines)
        assert any("n=4 mean=0.5" in line for line in lines)
        assert lines[-1] == (
            "cache: 3 hit(s), 1 miss(es), 1 put(s), 0 eviction(s) (75.0% hit rate)"
        )

    def test_clean_run_has_no_faults_section(self, tmp_path):
        run_dir = _make_run_dir(tmp_path)
        _, text = report_command(str(run_dir))
        assert "fault tolerance:" not in text
        assert "task errors:" not in text

    def test_faults_section_rendered(self, tmp_path):
        run_dir = _make_run_dir(tmp_path, with_faults=True)
        code, text = report_command(str(run_dir))
        assert code == 0
        assert (
            "fault tolerance: 2 retried attempt(s), 1 timeout(s), "
            "0 task(s) lost to dead workers, 0 pool respawn(s)" in text
        )
        assert "task errors:" in text
        lines = text.splitlines()
        error_row = next(line for line in lines if "InjectedFault" in line)
        for cell in ("table1", "collect", "3", "exception"):
            assert cell in error_row
        timeout_row = next(line for line in lines if "TimeoutError" in line)
        assert "timeout" in timeout_row

    def test_failed_run_surfaces_error(self, tmp_path):
        run_dir = _make_run_dir(tmp_path, status="failed")
        code, text = report_command(str(run_dir))
        assert code == 0
        assert "status=failed" in text
        assert "failed in table1: ValueError: boom" in text

    def test_profile_only_falls_back_to_span_stages(self, tmp_path):
        run_dir = _make_run_dir(tmp_path, with_manifest=False)
        code, text = report_command(str(run_dir))
        assert code == 0
        stage_row = next(
            line for line in text.splitlines() if "collect" in line and "2.000s" in line
        )
        assert stage_row.startswith("-")  # no experiment id without a manifest

    def test_manifest_only_uses_recorded_stages(self, tmp_path):
        run_dir = _make_run_dir(tmp_path, with_profile=False)
        code, text = report_command(str(run_dir))
        assert code == 0
        assert "table1" in text
        assert "spans (" not in text

    def test_missing_directory(self, tmp_path):
        code, text = report_command(str(tmp_path / "nope"))
        assert code == 2
        assert "not a directory" in text

    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, text = report_command(str(empty))
        assert code == 2
        assert "--profile --save-dir" in text


class TestReportCli:
    def test_cli_prints_report(self, tmp_path, capsys):
        run_dir = _make_run_dir(tmp_path)
        assert runner.main(["report", str(run_dir)]) == 0
        captured = capsys.readouterr()
        assert "per-stage breakdown:" in captured.out
        assert captured.err == ""

    def test_cli_top_limits_slowest_spans(self, tmp_path, capsys):
        run_dir = _make_run_dir(tmp_path)
        assert runner.main(["report", str(run_dir), "--top", "1"]) == 0
        out = capsys.readouterr().out
        header_idx = next(
            i for i, line in enumerate(out.splitlines()) if "slowest spans" in line
        )
        rows = out.splitlines()[header_idx + 2 :]
        section = rows[: rows.index("")] if "" in rows else rows
        assert len(section) == 1
        assert section[0].startswith("engine.map")

    def test_cli_usage_error(self, capsys):
        assert runner.main(["report"]) == 2
        assert "usage: biggerfish report" in capsys.readouterr().err

    def test_cli_missing_run_dir_errors_to_stderr(self, tmp_path, capsys):
        assert runner.main(["report", str(tmp_path / "missing")]) == 2
        captured = capsys.readouterr()
        assert "not a directory" in captured.err
        assert captured.out == ""
