"""Metrics registry: instruments, histogram bucketing, delta flush, merging."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    MetricsRegistry,
    active_registry,
    merge_deltas,
)


class TestDisabled:
    def test_accessors_return_shared_noop(self):
        assert obs.counter("x") is NULL_INSTRUMENT
        assert obs.gauge("y") is NULL_INSTRUMENT
        assert obs.histogram("z") is NULL_INSTRUMENT
        obs.counter("x").inc()
        obs.gauge("y").set(3.0)
        obs.histogram("z").observe(1.0)

    def test_flush_is_noop(self):
        assert obs.flush_metrics() is False


class TestInstruments:
    def test_counter_accumulates(self, spool):
        obs.counter("engine.cache.hits").inc()
        obs.counter("engine.cache.hits").inc(4)
        snap = active_registry().snapshot()
        assert snap["counters"]["engine.cache.hits"] == 5

    def test_gauge_last_write_wins(self, spool):
        obs.gauge("engine.jobs").set(2)
        obs.gauge("engine.jobs").set(8)
        assert active_registry().snapshot()["gauges"]["engine.jobs"] == 8.0

    def test_same_name_same_instrument(self, spool):
        assert obs.counter("a") is obs.counter("a")

    def test_kind_conflict_rejected(self, spool):
        obs.counter("dual")
        with pytest.raises(TypeError):
            obs.gauge("dual")

    def test_histogram_bucketing(self, spool):
        hist = obs.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 2.0, 100.0):
            hist.observe(value)
        snap = active_registry().snapshot()["histograms"]["lat"]
        assert snap["buckets"] == [0.1, 1.0, 10.0]
        # <=0.1 gets two (0.05 and the boundary 0.1), 0.5 -> <=1.0,
        # 2.0 -> <=10.0, 100.0 -> overflow.
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(102.65)

    def test_histogram_rejects_unsorted_buckets(self, spool):
        with pytest.raises(ValueError):
            obs.histogram("bad", buckets=(1.0, 0.5))


class TestDeltaFlush:
    def test_flush_writes_only_changes(self, spool):
        obs.counter("c").inc(3)
        assert obs.flush_metrics() is True
        assert obs.flush_metrics() is False  # nothing moved since
        obs.counter("c").inc(2)
        assert obs.flush_metrics() is True
        lines = [
            json.loads(line)
            for path in sorted(spool.glob("metrics-*.jsonl"))
            for line in path.read_text().splitlines()
        ]
        assert [event["counters"]["c"] for event in lines] == [3, 2]

    def test_histogram_deltas(self, spool):
        hist = obs.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        obs.flush_metrics()
        hist.observe(2.0)
        obs.flush_metrics()
        lines = [
            json.loads(line)
            for path in sorted(spool.glob("metrics-*.jsonl"))
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["histograms"]["h"]["counts"] == [1, 0]
        assert lines[1]["histograms"]["h"]["counts"] == [0, 1]

    def test_merge_deltas_sums_processes(self):
        events = [
            {"pid": 1, "counters": {"hits": 2}, "histograms": {
                "h": {"buckets": [1.0], "counts": [1, 0], "sum": 0.5, "count": 1}}},
            {"pid": 2, "counters": {"hits": 3}, "gauges": {"jobs": 4.0}},
            {"pid": 1, "histograms": {
                "h": {"buckets": [1.0], "counts": [0, 2], "sum": 5.0, "count": 2}}},
        ]
        merged = merge_deltas(events)
        assert merged["counters"] == {"hits": 5}
        assert merged["gauges"] == {"jobs": 4.0}
        assert merged["histograms"]["h"]["counts"] == [1, 2]
        assert merged["histograms"]["h"]["count"] == 3
        assert merged["histograms"]["h"]["sum"] == pytest.approx(5.5)


class TestConcurrentFlush:
    def test_racing_flushers_never_double_count(self, spool):
        """Delta computation is atomic under the registry lock.

        The old ``_delta`` snapshotted under the lock but diffed and
        updated ``_flushed`` outside it, so two racing flushers could
        read the same previous values and spool the same delta twice.
        Hammer counters and flush from several threads at once: the
        spooled deltas must sum exactly to the final snapshot.
        """
        import threading

        registry = active_registry()
        increments_per_thread = 200
        flusher_rounds = 50

        def incrementer():
            for _ in range(increments_per_thread):
                registry.counter("race.hits").inc()

        def flusher():
            for _ in range(flusher_rounds):
                registry.flush()

        threads = [threading.Thread(target=incrementer) for _ in range(4)]
        threads += [threading.Thread(target=flusher) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        registry.flush()  # spool whatever the racers left behind
        events = [
            json.loads(line)
            for path in sorted(spool.glob("metrics-*.jsonl"))
            for line in path.read_text().splitlines()
        ]
        merged = merge_deltas(events)
        total = registry.snapshot()["counters"]["race.hits"]
        assert total == 4 * increments_per_thread
        assert merged["counters"]["race.hits"] == total


class TestForkSafety:
    def test_inherited_registry_resets_in_child(self, spool, monkeypatch):
        obs.counter("parent.only").inc(10)
        registry = active_registry()
        # Simulate what a forked worker sees: same object, different pid.
        monkeypatch.setattr(registry, "pid", registry.pid - 1)
        child_registry = active_registry()
        assert child_registry is not registry
        assert child_registry.snapshot()["counters"] == {}
        assert child_registry.spool_dir == registry.spool_dir


class TestStandaloneRegistry:
    def test_no_spool_no_flush(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert registry.flush() is False
