"""Span tracer: nesting, no-op defaults, env activation, cross-process merge."""

from __future__ import annotations

import json
import os

from repro import obs
from repro.obs import spans as spans_module
from repro.obs.export import merge_spool
from repro.obs.spans import NULL_SPAN


def _read_events(spool_dir):
    events = []
    for path in sorted(spool_dir.glob("spans-*.jsonl")):
        for line in path.read_text().splitlines():
            events.append(json.loads(line))
    return events


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert obs.span("anything", k=1) is NULL_SPAN
        with obs.span("anything") as s:
            s.set(outcome="ignored")

    def test_nothing_written(self, tmp_path):
        with obs.span("quiet"):
            pass
        assert sorted(tmp_path.rglob("*.jsonl")) == []

    def test_enabled_flag(self):
        assert not obs.enabled()


class TestEnabled:
    def test_event_fields(self, spool):
        with obs.span("unit.work", fold=3):
            pass
        (event,) = _read_events(spool)
        assert event["type"] == "span"
        assert event["name"] == "unit.work"
        assert event["pid"] == os.getpid()
        assert event["depth"] == 0
        assert event["parent_id"] is None
        assert event["attrs"] == {"fold": 3}
        assert event["wall_s"] >= 0.0
        assert event["cpu_s"] >= 0.0
        assert event["rss_peak_kb"] > 0

    def test_nesting_parent_and_depth(self, spool):
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
            with obs.span("sibling"):
                pass
        by_name = {e["name"]: e for e in _read_events(spool)}
        assert by_name["outer"]["depth"] == 0
        assert by_name["middle"]["depth"] == 1
        assert by_name["middle"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["depth"] == 2
        assert by_name["inner"]["parent_id"] == by_name["middle"]["span_id"]
        assert by_name["sibling"]["parent_id"] == by_name["outer"]["span_id"]

    def test_exit_order_inner_first(self, spool):
        with obs.span("a"):
            with obs.span("b"):
                pass
        names = [e["name"] for e in _read_events(spool)]
        assert names == ["b", "a"]  # completion order

    def test_error_recorded(self, spool):
        try:
            with obs.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        (event,) = _read_events(spool)
        assert event["error"] == "ValueError"

    def test_set_attaches_attrs(self, spool):
        with obs.span("attrs") as s:
            s.set(events=42)
        (event,) = _read_events(spool)
        assert event["attrs"] == {"events": 42}


class TestEnvActivation:
    def test_env_var_activates_lazily(self, tmp_path, monkeypatch):
        spool_dir = tmp_path / "env-spool"
        monkeypatch.setenv(obs.PROFILE_DIR_ENV_VAR, str(spool_dir))
        # Force the one-shot env check to rerun, as a fresh process would.
        spans_module._ENV_CHECKED = False
        with obs.span("from.env"):
            pass
        assert [e["name"] for e in _read_events(spool_dir)] == ["from.env"]

    def test_enable_exports_env(self, tmp_path):
        obs.enable(tmp_path / "s")
        assert os.environ[obs.PROFILE_DIR_ENV_VAR] == str(tmp_path / "s")
        obs.disable()
        assert obs.PROFILE_DIR_ENV_VAR not in os.environ


def _spanned_square(x: int) -> int:
    """Module-level worker task that opens its own span."""
    with obs.span("worker.square", x=x):
        return x * x


class TestCrossProcess:
    def test_worker_spans_merge(self, spool):
        from repro.engine import ExecutionEngine

        engine = ExecutionEngine(jobs=2)
        results = engine.map(_spanned_square, list(range(8)), stage="unit")
        assert results == [x * x for x in range(8)]

        profile = merge_spool(spool)
        pids = {e["pid"] for e in profile.spans}
        assert os.getpid() in pids
        assert len(pids) >= 2, "worker processes must contribute spans"
        worker_spans = [e for e in profile.spans if e["name"] == "worker.square"]
        assert len(worker_spans) == 8
        assert all(e["pid"] != os.getpid() for e in worker_spans)
        # Each worker span nests under that worker's engine.task span.
        tasks = {
            (e["pid"], e["span_id"]): e
            for e in profile.spans
            if e["name"] == "engine.task"
        }
        for event in worker_spans:
            parent = tasks[(event["pid"], event["parent_id"])]
            assert parent["depth"] == event["depth"] - 1

    def test_merge_is_start_ordered(self, spool):
        from repro.engine import ExecutionEngine

        ExecutionEngine(jobs=2).map(_spanned_square, list(range(6)))
        starts = [e["t_start"] for e in merge_spool(spool).spans]
        assert starts == sorted(starts)
