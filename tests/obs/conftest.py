"""Observability test fixtures: every test gets a clean, isolated obs state."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs(monkeypatch):
    """Guarantee profiling is off (and env-clean) before and after each test."""
    monkeypatch.delenv(obs.PROFILE_DIR_ENV_VAR, raising=False)
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def spool(tmp_path):
    """An enabled obs subsystem spooling into a temp directory."""
    spool_dir = tmp_path / "spool"
    obs.enable(spool_dir)
    return spool_dir
