"""Cross-module integration tests: the paper's claims end to end.

These run the full stack (workload -> simulator -> attacker -> traces ->
classifier) at a small-but-meaningful scale and assert the qualitative
results that define the paper.  Heavier quantitative shape checks live
in the benchmark harness.
"""

import numpy as np
import pytest

from repro.config import Scale
from repro.core.attacker import LoopCountingAttacker, SweepCountingAttacker
from repro.core.collector import TraceCollector
from repro.core.pipeline import FingerprintingPipeline
from repro.core.trace import average_traces
from repro.sim.machine import MachineConfig
from repro.stats.summary import pearson_r
from repro.timers.spec import RANDOMIZED_DEFENSE_TIMER
from repro.workload.browser import CHROME, LINUX, Browser
from repro.workload.website import profile_for

SCALE = Scale(
    name="integration", n_sites=6, traces_per_site=6, trace_seconds=4.0,
    period_ms=10.0, n_folds=2, backend="feature", open_world_sites=0,
)


@pytest.fixture(scope="module")
def loop_result():
    pipeline = FingerprintingPipeline(
        MachineConfig(os=LINUX), CHROME, scale=SCALE, seed=21
    )
    return pipeline.run_closed_world()


class TestAttackWorks:
    def test_fingerprinting_far_above_base_rate(self, loop_result):
        """Takeaway 1: a no-memory-access attack fingerprints websites."""
        base = 1.0 / SCALE.n_sites
        assert loop_result.top1.mean > 3 * base

    def test_randomized_timer_destroys_attack(self, loop_result):
        """Table 4's defense kills the signal end to end."""
        pipeline = FingerprintingPipeline(
            MachineConfig(os=LINUX), CHROME, scale=SCALE,
            timer=RANDOMIZED_DEFENSE_TIMER, seed=21,
        )
        defended = pipeline.run_closed_world()
        assert defended.top1.mean < loop_result.top1.mean / 2


class TestAttackersCorrelate:
    def test_loop_and_sweep_see_the_same_events(self):
        """Fig 4: averaged traces of both attackers correlate strongly."""
        browser = Browser(
            name=CHROME.name, timer=CHROME.timer, trace_seconds=6.0,
            measurement_noise=CHROME.measurement_noise,
        )
        machine = MachineConfig(os=LINUX)
        site = profile_for("nytimes.com")
        averages = {}
        for attacker in (LoopCountingAttacker(), SweepCountingAttacker()):
            collector = TraceCollector(machine, browser, attacker=attacker, seed=3)
            traces = list(collector.collect(site, 8))
            averages[attacker.name] = average_traces(traces)
        r = pearson_r(averages["loop-counting"], averages["sweep-counting"])
        assert r > 0.5


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        results = []
        for _ in range(2):
            pipeline = FingerprintingPipeline(
                MachineConfig(os=LINUX), CHROME, scale=SCALE, seed=5
            )
            x, labels = pipeline.collect_closed_world()
            results.append((x, tuple(labels)))
        np.testing.assert_array_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]
