"""Tests for the randomized-timer defense."""

import numpy as np
import pytest

from repro.sim.events import MS
from repro.timers.randomized import RandomizedTimer


def make(seed=0, **kwargs):
    defaults = dict(
        delta_ns=1 * MS,
        alpha_range=(5, 25),
        beta_range=(5, 25),
        threshold_ns=100 * MS,
        seed=seed,
    )
    defaults.update(kwargs)
    return RandomizedTimer(**defaults)


class TestMonotonicity:
    def test_output_never_decreases(self):
        timer = make(seed=3)
        last = -1.0
        for t in np.linspace(0, 500 * MS, 3_000):
            value = timer.read(float(t))
            assert value >= last
            last = value

    def test_rejects_backwards_queries(self):
        timer = make()
        timer.read(50 * MS)
        with pytest.raises(ValueError, match="backwards"):
            timer.read(10 * MS)

    def test_reset_allows_restart(self):
        timer = make()
        timer.read(50 * MS)
        timer.reset()
        assert timer.read(0.0) == 0.0


class TestLagBounds:
    def test_lag_bounded_by_threshold_plus_jump(self):
        """T_real - T_secure never exceeds threshold + max update slack."""
        timer = make(seed=9)
        max_lag = 0.0
        for t in np.arange(0, 2_000 * MS, 0.5 * MS):
            lag = t - timer.read(float(t))
            max_lag = max(max_lag, lag)
        # Threshold resync guarantees the timer never falls further behind
        # than threshold plus one update interval.
        assert max_lag <= 100 * MS + 1 * MS

    def test_timer_can_run_ahead(self):
        """β jumps can push the observed time past real time."""
        timer = make(seed=2)
        ahead = [
            timer.read(float(t)) - t for t in np.arange(0, 1_000 * MS, 0.5 * MS)
        ]
        assert max(ahead) > 0

    def test_value_changes_in_beta_steps(self):
        timer = make(seed=4)
        values = [timer.read(float(t)) for t in np.arange(0, 500 * MS, 0.25 * MS)]
        jumps = {round(b - a, 3) for a, b in zip(values, values[1:]) if b > a}
        # Every advance is a whole number of Δ (β or resync + β).
        assert all(abs(j - round(j / MS) * MS) < 1e-6 for j in jumps)


class TestFirstCrossing:
    def test_crossing_satisfies_elapsed(self):
        timer = make(seed=5)
        t0 = 10 * MS
        timer.read(t0)
        t = timer.first_crossing(t0, 5 * MS)
        assert t >= t0

    def test_crossing_durations_vary_wildly(self):
        """Fig 8c: one 5 ms loop spans 0-100 ms of real time."""
        timer = make(seed=6)
        durations = []
        t = 0.0
        for _ in range(300):
            t_next = timer.first_crossing(t, 5 * MS)
            durations.append(t_next - t)
            t = max(t_next, t + 0.01 * MS)
        durations = np.array(durations)
        assert durations.std() > 2 * MS  # vs ~0.06 ms for Chrome's jitter
        assert durations.max() > 20 * MS

    def test_zero_elapsed(self):
        timer = make()
        assert timer.first_crossing(0.0, 0.0) == 0.0

    def test_read_between_t0_and_crossing_allowed(self):
        """Regression: the boundary walk used to advance _last_query_ns
        to the crossing, so a legitimate read at an intermediate real
        time raised 'timer queried backwards'."""
        timer = make(seed=3)
        timer.read(0.0)
        crossing = timer.first_crossing(0.0, 5 * MS)
        assert crossing > 0.0
        timer.read(crossing / 2)  # must not raise

    def test_walked_state_consistent_with_returned_time(self):
        """Reads after first_crossing match a fresh timer that never
        called it: the walk peeks at the update stream without
        consuming it."""
        walked = make(seed=11)
        walked.read(0.0)
        crossing = walked.first_crossing(0.0, 5 * MS)
        fresh = make(seed=11)
        fresh.read(0.0)
        for t in (crossing / 3, crossing, crossing + 7 * MS, crossing + 40 * MS):
            assert walked.read(t) == fresh.read(t)

    def test_crossing_value_unchanged_by_state_restore(self):
        """The returned crossing still satisfies the elapsed contract
        and matches a brute-force scan on an independent timer."""
        timer = make(seed=5)
        timer.read(0.0)
        crossing = timer.first_crossing(0.0, 5 * MS)
        probe = make(seed=5)
        start = probe.read(0.0)
        scan = next(
            t
            for t in np.arange(0.0, 500 * MS, 0.25 * MS)
            if probe.read(float(t)) - start >= 5 * MS
        )
        assert crossing == pytest.approx(scan, abs=1 * MS)
        check = make(seed=5)
        s0 = check.read(0.0)
        assert check.read(crossing) - s0 >= 5 * MS

    def test_repeated_crossings_identical(self):
        """Same t0 and elapsed, asked twice in a row, agree — the first
        call must not have consumed RNG draws."""
        timer = make(seed=8)
        timer.read(0.0)
        first = timer.first_crossing(0.0, 5 * MS)
        second = timer.first_crossing(0.0, 5 * MS)
        assert first == second

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            make().first_crossing(0.0, -5.0)


class TestValidation:
    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            make(delta_ns=0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            make(alpha_range=(10, 5))
        with pytest.raises(ValueError):
            make(alpha_range=(-1, 5))

    def test_rejects_non_advancing_beta(self):
        with pytest.raises(ValueError, match="advance"):
            make(beta_range=(0, 5))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            make(threshold_ns=0)

    def test_deterministic_per_seed(self):
        a, b = make(seed=42), make(seed=42)
        times = np.arange(0, 300 * MS, 0.7 * MS)
        assert [a.read(float(t)) for t in times] == [b.read(float(t)) for t in times]
