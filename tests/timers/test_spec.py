"""Tests for declarative timer specs."""

import pytest

from repro.sim.events import MS
from repro.timers.base import PreciseTimer
from repro.timers.quantized import JitteredTimer, QuantizedTimer
from repro.timers.randomized import RandomizedTimer
from repro.timers.spec import (
    CHROME_TIMER,
    FIREFOX_TIMER,
    NATIVE_TIMER,
    RANDOMIZED_DEFENSE_TIMER,
    SAFARI_TIMER,
    TOR_TIMER,
    TimerKind,
    TimerSpec,
)


class TestBuild:
    def test_precise(self):
        assert isinstance(NATIVE_TIMER.build(), PreciseTimer)

    def test_quantized(self):
        timer = TOR_TIMER.build()
        assert isinstance(timer, QuantizedTimer)
        assert timer.delta_ns == 100 * MS

    def test_jittered(self):
        timer = CHROME_TIMER.build(seed=4)
        assert isinstance(timer, JitteredTimer)
        assert timer.seed == 4

    def test_randomized(self):
        timer = RANDOMIZED_DEFENSE_TIMER.build(seed=9)
        assert isinstance(timer, RandomizedTimer)
        assert timer.alpha_range == (5, 25)
        assert timer.threshold_ns == 100 * MS

    def test_each_build_is_fresh(self):
        a = RANDOMIZED_DEFENSE_TIMER.build(seed=1)
        b = RANDOMIZED_DEFENSE_TIMER.build(seed=1)
        assert a is not b
        a.read(50 * MS)
        assert b.read(0.0) == 0.0  # unaffected by a's state


class TestPaperParameters:
    def test_chrome_01ms(self):
        assert CHROME_TIMER.resolution_ms == pytest.approx(0.1)
        assert CHROME_TIMER.kind is TimerKind.JITTERED

    def test_firefox_1ms(self):
        assert FIREFOX_TIMER.resolution_ms == pytest.approx(1.0)
        assert FIREFOX_TIMER.kind is TimerKind.QUANTIZED

    def test_safari_1ms_quantized(self):
        assert SAFARI_TIMER.kind is TimerKind.QUANTIZED
        assert SAFARI_TIMER.resolution_ms == pytest.approx(1.0)

    def test_tor_100ms(self):
        assert TOR_TIMER.resolution_ms == pytest.approx(100.0)

    def test_defense_published_parameters(self):
        """§6.1: α, β ~ U[5, 25], Δ = 1 ms, threshold = 100 ms."""
        spec = RANDOMIZED_DEFENSE_TIMER
        assert spec.resolution_ms == pytest.approx(1.0)
        assert spec.alpha_range == (5, 25)
        assert spec.beta_range == (5, 25)
        assert spec.threshold_ns == 100 * MS
