"""Tests for quantized and jittered timers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import MS
from repro.timers.base import PreciseTimer
from repro.timers.quantized import JitteredTimer, QuantizedTimer


class TestPreciseTimer:
    def test_identity(self):
        timer = PreciseTimer()
        assert timer.read(12345.6) == 12345.6

    def test_first_crossing(self):
        assert PreciseTimer().first_crossing(100.0, 50.0) == 150.0

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            PreciseTimer().first_crossing(0.0, -1.0)


class TestQuantizedTimer:
    def test_floor_quantization(self):
        timer = QuantizedTimer(delta_ns=100.0)
        assert timer.read(0.0) == 0.0
        assert timer.read(99.9) == 0.0
        assert timer.read(100.0) == 100.0
        assert timer.read(250.0) == 200.0

    def test_monotone(self):
        timer = QuantizedTimer(delta_ns=100.0)
        times = np.linspace(0, 10_000, 500)
        reads = [timer.read(t) for t in times]
        assert all(b >= a for a, b in zip(reads, reads[1:]))

    def test_first_crossing_exact(self):
        timer = QuantizedTimer(delta_ns=100.0)
        t = timer.first_crossing(50.0, 300.0)
        assert timer.read(t) - timer.read(50.0) >= 300.0

    def test_first_crossing_minimal(self):
        """No earlier instant already satisfies the crossing."""
        timer = QuantizedTimer(delta_ns=100.0)
        t0 = 50.0
        t = timer.first_crossing(t0, 300.0)
        before = t - 1.0
        assert timer.read(before) - timer.read(t0) < 300.0

    def test_crossing_with_coarse_resolution(self):
        """Tor-style: Δ = 100 ms >> P = 5 ms forces 100 ms periods."""
        timer = QuantizedTimer(delta_ns=100 * MS)
        t = timer.first_crossing(0.0, 5 * MS)
        assert t == 100 * MS

    def test_zero_elapsed(self):
        timer = QuantizedTimer(delta_ns=100.0)
        assert timer.first_crossing(42.0, 0.0) == 42.0

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            QuantizedTimer(delta_ns=0.0)

    @given(
        st.floats(min_value=0, max_value=1e9),
        st.floats(min_value=1, max_value=1e7),
        st.floats(min_value=1, max_value=1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_crossing_property(self, t0, elapsed, delta):
        timer = QuantizedTimer(delta_ns=delta)
        t = timer.first_crossing(t0, elapsed)
        assert t >= t0
        assert timer.read(t) - timer.read(t0) >= elapsed - 1e-6


class TestJitteredTimer:
    def test_deviation_bounded_by_2_delta(self):
        """Chrome's guarantee: |T_secure - T_real| < 2Δ."""
        timer = JitteredTimer(delta_ns=100.0, seed=7)
        for t in np.linspace(0, 100_000, 2_000):
            assert abs(timer.read(float(t)) - t) < 200.0

    def test_monotone(self):
        timer = JitteredTimer(delta_ns=100.0, seed=3)
        times = np.linspace(0, 50_000, 5_000)
        reads = [timer.read(float(t)) for t in times]
        assert all(b >= a for a, b in zip(reads, reads[1:]))

    def test_jitter_actually_present(self):
        timer = JitteredTimer(delta_ns=100.0, seed=1)
        quantized = QuantizedTimer(delta_ns=100.0)
        diffs = {
            timer.read(float(t)) - quantized.read(float(t))
            for t in np.arange(0, 20_000, 100.0)
        }
        assert diffs == {0.0, 100.0}

    def test_deterministic_per_seed(self):
        a = JitteredTimer(delta_ns=100.0, seed=5)
        b = JitteredTimer(delta_ns=100.0, seed=5)
        assert a.read(12_345.0) == b.read(12_345.0)

    def test_seeds_differ(self):
        values_a = [JitteredTimer(100.0, seed=1).read(t) for t in np.arange(0, 5e4, 100)]
        values_b = [JitteredTimer(100.0, seed=2).read(t) for t in np.arange(0, 5e4, 100)]
        assert values_a != values_b

    @given(
        st.floats(min_value=0, max_value=1e8),
        st.floats(min_value=1, max_value=1e6),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_crossing_property(self, t0, elapsed, seed):
        timer = JitteredTimer(delta_ns=100.0, seed=seed)
        t = timer.first_crossing(t0, elapsed)
        assert t >= t0
        assert timer.read(t) - timer.read(t0) >= elapsed - 1e-6

    def test_crossing_minimal_against_bruteforce(self):
        """first_crossing matches a brute-force scan of bucket boundaries."""
        timer = JitteredTimer(delta_ns=100.0, seed=11)
        for t0 in (0.0, 55.0, 123.0, 999.0):
            target = 500.0
            t_fast = timer.first_crossing(t0, target)
            t_brute = None
            base = timer.read(t0)
            for k in range(1, 20):
                boundary = (int(t0 // 100.0) + k) * 100.0
                if timer.read(boundary) - base >= target:
                    t_brute = boundary
                    break
            assert t_fast == pytest.approx(max(t_brute, t0))
