"""Tests for the timer base utilities."""

import pytest

from repro.timers.base import MonotonicQueryMixin, PreciseTimer


class _Stateful(MonotonicQueryMixin):
    def probe(self, t):
        self._check_monotonic(t)
        return t


class TestMonotonicQueryMixin:
    def test_accepts_increasing(self):
        timer = _Stateful()
        for t in (0.0, 1.0, 1.0, 5.0):
            timer.probe(t)

    def test_rejects_decreasing(self):
        timer = _Stateful()
        timer.probe(10.0)
        with pytest.raises(ValueError, match="backwards"):
            timer.probe(9.0)

    def test_reset_clears_watermark(self):
        timer = _Stateful()
        timer.probe(10.0)
        timer._reset_monotonic()
        timer.probe(0.0)


class TestPreciseTimerReset:
    def test_reset_is_noop(self):
        timer = PreciseTimer()
        timer.reset()
        assert timer.read(5.0) == 5.0
