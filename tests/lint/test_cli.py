"""Exit codes and output formats of ``biggerfish lint``."""

from __future__ import annotations

import json

import pytest

from repro.lint import rule_ids
from repro.lint.cli import main


def _bad(fixtures) -> str:
    return str(fixtures / "bad_unseeded_rng.py")


def _clean(fixtures) -> str:
    return str(fixtures / "clean.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, fixtures, capsys):
        assert main([_clean(fixtures)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, fixtures, capsys):
        assert main([_bad(fixtures)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out
        assert "bad_unseeded_rng.py" in out

    def test_unknown_rule_exits_two(self, fixtures, capsys):
        assert main(["--select", "no-such-rule", _clean(fixtures)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["does/not/exist.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_missing_explicit_baseline_exits_two(self, fixtures, capsys):
        code = main(["--baseline", "no/such/baseline.json", _clean(fixtures)])
        assert code == 2
        assert "baseline" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "--select" in capsys.readouterr().out


class TestOutput:
    def test_json_round_trips(self, fixtures, capsys):
        assert main(["--format", "json", _bad(fixtures)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["findings"] == len(payload["findings"])
        assert payload["counts"]["findings"] >= 6
        assert all(f["rule"] == "unseeded-rng" for f in payload["findings"])
        assert payload["files_checked"] == 1

    def test_json_clean_run_round_trips(self, fixtures, capsys):
        assert main(["--format", "json", _clean(fixtures)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_select_and_ignore(self, fixtures, capsys):
        assert main(["--select", "wall-clock-in-sim", _bad(fixtures)]) == 0
        capsys.readouterr()
        assert main(["--ignore", "unseeded-rng", _bad(fixtures)]) == 0

    def test_select_by_family(self, fixtures, capsys):
        bad_concurrency = str(fixtures / "bad_unlocked_write.py")
        assert main(["--select", "determinism", bad_concurrency]) == 0
        capsys.readouterr()
        assert main(["--select", "concurrency", bad_concurrency]) == 1
        assert "unlocked-shared-write" in capsys.readouterr().out
        assert main(["--ignore", "concurrency", bad_concurrency]) == 0

    def test_sarif_output(self, fixtures, capsys):
        assert main(["--format", "sarif", _bad(fixtures)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert results and all(
            r["ruleId"] == "unseeded-rng" for r in results
        )

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out
        assert "[concurrency/" in out and "[determinism/" in out

    @pytest.mark.parametrize("rule_id", rule_ids())
    def test_explain_every_rule(self, rule_id, capsys):
        assert main(["--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert rule_id in out
        assert "Bad" in out and "Good" in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["--explain", "nope"]) == 2


class TestBaselineWorkflow:
    def test_write_then_pass(self, fixtures, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(["--baseline", str(baseline), "--write-baseline", _bad(fixtures)])
            == 0
        )
        assert baseline.exists()
        capsys.readouterr()
        assert main(["--baseline", str(baseline), _bad(fixtures)]) == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_baseline_does_not_hide_new_findings(self, fixtures, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(["--baseline", str(baseline), "--write-baseline", _bad(fixtures)])
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "--baseline",
                str(baseline),
                _bad(fixtures),
                str(fixtures / "bad_env_hash.py"),
            ]
        )
        assert code == 1
        assert "env-dependent-hash" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, fixtures, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{\"nope\": true}")
        assert main(["--baseline", str(baseline), _clean(fixtures)]) == 2
        assert "baseline" in capsys.readouterr().err
