"""Phase-1 project summaries and cross-module rule resolution."""

from __future__ import annotations

from repro.lint import build_project, lint_paths
from repro.lint.walker import discover, load_module


def _crossmod(fixtures):
    return str(fixtures / "crossmod")


def _project(fixtures):
    modules = [load_module(path) for path in discover([_crossmod(fixtures)])]
    assert len(modules) == 2, "discover must see explicitly-passed fixture dirs"
    return build_project(modules)


class TestSummaries:
    def test_lock_ownership_is_recorded(self, fixtures):
        project = _project(fixtures)
        base = project.resolve_class("lintfix.base.LockedBase")
        assert base is not None
        assert base.lock_attrs == frozenset({"_lock"})
        assert base.owns_lock

    def test_subclass_inherits_lock_across_modules(self, fixtures):
        project = _project(fixtures)
        worker = project.resolve_class("lintfix.worker.Worker")
        assert worker is not None
        assert worker.bases == ("lintfix.base.LockedBase",)
        assert not worker.lock_attrs  # owns nothing itself...
        assert project.lock_attrs_of(worker) == frozenset({"_lock"})  # ...inherits

    def test_attr_types_and_thread_targets(self, fixtures):
        project = _project(fixtures)
        base = project.resolve_class("lintfix.base.LockedBase")
        assert base.attr_types["_lock"] == "threading.Lock"
        assert base.attr_types["_worker"] == "threading.Thread"
        assert base.thread_targets == frozenset({"_run"})
        worker = project.resolve_class("lintfix.worker.Worker")
        assert project.attr_type_of(worker, "_lock") == "threading.Lock"

    def test_attr_writes_are_indexed_by_method(self, fixtures):
        project = _project(fixtures)
        base = project.resolve_class("lintfix.base.LockedBase")
        methods = {method for method, _ in base.attr_writes["count"]}
        assert methods == {"__init__", "bump_safe"}

    def test_mutable_globals_resolve_across_modules(self, fixtures):
        project = _project(fixtures)
        assert "SHARED" in project.modules["lintfix.base"].mutable_globals
        assert project.is_mutable_global("lintfix.base.SHARED")
        assert not project.is_mutable_global("lintfix.base.job")


class TestCrossModuleFindings:
    def test_inherited_lock_discipline_is_enforced(self, fixtures):
        run = lint_paths([_crossmod(fixtures)])
        by_rule = {}
        for finding in run.findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        racy = by_rule.get("unlocked-shared-write", [])
        assert len(racy) == 1
        assert racy[0].path.endswith("worker.py")
        assert "self.count" in racy[0].message
        assert "lintfix.worker.Worker" in racy[0].message

    def test_imported_mutable_global_into_worker_is_flagged(self, fixtures):
        run = lint_paths([_crossmod(fixtures)])
        shared = [
            finding
            for finding in run.findings
            if finding.rule == "shared-state-into-worker"
        ]
        assert len(shared) == 1
        assert shared[0].path.endswith("worker.py")
        assert "lintfix.base.SHARED" in shared[0].message

    def test_no_other_rules_fire(self, fixtures):
        run = lint_paths([_crossmod(fixtures)])
        assert {finding.rule for finding in run.findings} == {
            "unlocked-shared-write",
            "shared-state-into-worker",
        }

    def test_single_file_runs_cannot_see_the_base(self, fixtures):
        """The same worker.py linted alone is silent — the point of phase 1."""
        run = lint_paths([str(fixtures / "crossmod" / "worker.py")])
        assert run.findings == []
