"""The repo lints its own source — including the linter itself.

This is the machine-checked form of the acceptance criterion that
``biggerfish lint src/ tests/`` exits 0 with an empty baseline: every
recorded table and figure comes from a lint-clean tree.
"""

from __future__ import annotations

from repro.lint import lint_paths

from tests.lint.conftest import REPO_ROOT


def test_src_and_tests_are_lint_clean():
    run = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
    assert run.files_checked > 100
    assert run.findings == [], "\n".join(
        finding.render() for finding in run.findings
    )


def test_linter_package_itself_is_covered():
    run = lint_paths([str(REPO_ROOT / "src" / "repro" / "lint")])
    assert run.files_checked >= 10
    assert run.findings == []
