"""SARIF reporter: 2.1.0 shape, suppressions, and JSON round-trip."""

from __future__ import annotations

import json

import pytest

from repro.lint import lint_paths
from repro.lint.reporters import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    render_json,
    render_sarif,
)

#: Subset of the official SARIF 2.1.0 schema covering every construct
#: the reporter emits — enough for jsonschema to catch a malformed
#: report without fetching the full schema from the network.
_SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": ["artifactLocation"],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {"type": "string"},
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": ["inSource", "external"]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


@pytest.fixture(scope="module")
def mixed_run(request):
    fixtures = request.path.parent / "fixtures"
    return lint_paths(
        [
            str(fixtures / "bad_unlocked_write.py"),
            str(fixtures / "suppressed_cond_wait.py"),
            str(fixtures / "bad_wall_clock.py"),
        ]
    )


@pytest.fixture(scope="module")
def sarif(mixed_run):
    return json.loads(render_sarif(mixed_run))


class TestShape:
    def test_validates_against_schema_subset(self, sarif):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(instance=sarif, schema=_SARIF_SUBSET_SCHEMA)

    def test_version_and_schema_pointer(self, sarif):
        assert sarif["version"] == SARIF_VERSION == "2.1.0"
        assert sarif["$schema"] == SARIF_SCHEMA

    def test_driver_lists_every_rule_with_level(self, sarif):
        from repro.lint import all_rules

        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "biggerfish-lint"
        by_id = {rule["id"]: rule for rule in driver["rules"]}
        for rule in all_rules():
            entry = by_id[rule.id]
            assert entry["defaultConfiguration"]["level"] == rule.severity
            assert entry["properties"]["family"] == rule.family

    def test_rule_index_points_at_the_right_rule(self, sarif):
        driver = sarif["runs"][0]["tool"]["driver"]
        for result in sarif["runs"][0]["results"]:
            index = result.get("ruleIndex")
            if index is not None:
                assert driver["rules"][index]["id"] == result["ruleId"]


class TestRoundTrip:
    def test_same_findings_as_json_reporter(self, mixed_run, sarif):
        plain = json.loads(render_json(mixed_run))
        unsuppressed = [
            result
            for result in sarif["runs"][0]["results"]
            if "suppressions" not in result
        ]

        def key_of_sarif(result):
            location = result["locations"][0]["physicalLocation"]
            return (
                result["ruleId"],
                location["artifactLocation"]["uri"],
                location["region"]["startLine"],
                location["region"]["startColumn"] - 1,
            )

        def key_of_json(finding):
            return (
                finding["rule"],
                finding["path"],
                finding["line"],
                finding["col"],
            )

        assert sorted(map(key_of_sarif, unsuppressed)) == sorted(
            map(key_of_json, plain["findings"])
        )

    def test_levels_match_json_severities(self, mixed_run, sarif):
        plain = json.loads(render_json(mixed_run))
        sarif_levels = {
            result["partialFingerprints"]["biggerfishLint/v1"]: result["level"]
            for result in sarif["runs"][0]["results"]
        }
        for finding in plain["findings"]:
            fingerprint = (
                f"{finding['rule']}:{finding['path']}:{finding['line']}"
            )
            assert sarif_levels[fingerprint] == finding["severity"]

    def test_suppressed_findings_carry_in_source_kind(self, mixed_run, sarif):
        suppressed = [
            result
            for result in sarif["runs"][0]["results"]
            if "suppressions" in result
        ]
        assert len(suppressed) == len(mixed_run.suppressed) >= 2
        assert all(
            result["suppressions"] == [{"kind": "inSource"}]
            for result in suppressed
        )


class TestJsonEnrichment:
    def test_json_findings_carry_severity_and_family(self, mixed_run):
        plain = json.loads(render_json(mixed_run))
        for finding in plain["findings"]:
            assert finding["severity"] in ("error", "warning", "note")
            assert finding["family"] in ("determinism", "concurrency")
