"""Inline suppression parsing and baseline round-trips."""

from __future__ import annotations

import json

import pytest

from repro.lint import Baseline, lint_paths
from repro.lint.registry import Finding
from repro.lint.suppress import suppressed_rules


class TestInlineSuppressions:
    def test_single_rule(self):
        parsed = suppressed_rules(["x = 1  # lint: disable=unseeded-rng"])
        assert parsed == {1: frozenset({"unseeded-rng"})}

    def test_comma_separated_rules_and_spacing(self):
        parsed = suppressed_rules(
            ["", "y = 2  #lint: disable=unseeded-rng , wall-clock-in-sim"]
        )
        assert parsed == {2: frozenset({"unseeded-rng", "wall-clock-in-sim"})}

    def test_disable_all(self):
        parsed = suppressed_rules(["z = 3  # lint: disable=all"])
        assert parsed == {1: frozenset({"all"})}

    def test_unrelated_comments_ignored(self):
        assert suppressed_rules(["# lint me gently", "x = 1  # disable=foo"]) == {}


def _finding(line: int = 3) -> Finding:
    return Finding(
        rule="unseeded-rng",
        path="src/repro/sim/machine.py",
        line=line,
        col=0,
        message="...",
    )


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [_finding()])
        loaded = Baseline.load(path)
        assert len(loaded) == 1
        assert loaded.contains(_finding())
        assert not loaded.contains(_finding(line=4))

    def test_malformed_entries_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "findings": [{"rule": "x"}]}))
        with pytest.raises(ValueError):
            Baseline.load(path)
        path.write_text("[]")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_baselined_findings_do_not_fail_the_run(self, tmp_path, fixtures):
        bad = fixtures / "bad_mutable_default.py"
        first = lint_paths([str(bad)])
        assert first.findings
        path = tmp_path / "baseline.json"
        Baseline.write(path, first.findings)
        second = lint_paths([str(bad)], baseline=Baseline.load(path))
        assert second.findings == []
        assert len(second.baselined) == len(first.findings)

    def test_shipped_baseline_is_empty(self):
        from tests.lint.conftest import REPO_ROOT

        shipped = Baseline.load(REPO_ROOT / ".lint-baseline.json")
        assert len(shipped) == 0
