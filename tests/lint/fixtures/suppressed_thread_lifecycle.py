# lint: module=lintfix.threads_ok
"""Fixture: the same unjoined threads, suppressed inline."""
import threading


def fire_and_forget(fn):
    worker = threading.Thread(target=fn)  # lint: disable=nondaemon-unjoined-thread
    worker.start()
    return worker


def inline(fn):
    threading.Thread(target=fn, name="oneshot").start()  # lint: disable=all
