# lint: module=lintfix.condwait_ok
"""Fixture: the same wait misuses, suppressed inline."""
import threading


class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = []

    def get_if_guarded(self):
        with self._cond:
            if not self._items:
                self._cond.wait()  # lint: disable=condition-wait-without-predicate
            return self._items.pop()

    def get_polling(self):
        with self._cond:
            while not self._items:
                self._cond.wait(0.1)  # lint: disable=all
            return self._items.pop()
