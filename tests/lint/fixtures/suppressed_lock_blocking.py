# lint: module=lintfix.blocking_ok
"""Fixture: the same blocking calls under a lock, suppressed inline."""
import threading
import time


class Server:
    def __init__(self):
        self._lock = threading.Lock()

    def slow_io(self, path):
        with self._lock:
            handle = open(path)  # lint: disable=blocking-call-under-lock
            time.sleep(0.5)  # lint: disable=all
        return handle
