# lint: module=lintfix.condwait
"""Fixture: condition waits without a predicate loop, and timed polls."""
import threading


class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()
        self._items = []

    def get_if_guarded(self):
        with self._cond:
            if not self._items:
                self._cond.wait()
            return self._items.pop()

    def get_unguarded(self):
        with self._cond:
            self._cond.wait()
            return self._items.pop()

    def get_polling(self):
        with self._cond:
            while not self._items:
                self._cond.wait(0.1)
            return self._items.pop()

    def get_slow_poll(self):
        with self._cond:
            while not self._items:
                self._cond.wait(1)
            return self._items.pop()

    def get_correct(self):
        with self._cond:
            while not self._items:
                self._cond.wait()
            return self._items.pop()

    def get_deadline(self, remaining):
        with self._cond:
            while not self._items:
                if not self._cond.wait(remaining):
                    return None
            return self._items.pop()


def wait_local():
    cond = threading.Condition()
    with cond:
        cond.wait()
