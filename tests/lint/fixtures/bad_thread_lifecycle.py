# lint: module=lintfix.threads
"""Fixture: non-daemon threads that nobody ever joins."""
import threading


class Runner:
    def start(self):
        self._worker = threading.Thread(target=self._run)
        self._worker.start()

    def _run(self):
        pass


def fire_and_forget(fn):
    worker = threading.Thread(target=fn)
    worker.start()
    return worker


def inline(fn):
    threading.Thread(target=fn, name="oneshot").start()


def joined(fn):
    worker = threading.Thread(target=fn)
    worker.start()
    worker.join()


def daemonized(fn):
    threading.Thread(target=fn, daemon=True).start()


def swept(fn):
    threads = [threading.Thread(target=fn) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
