# lint: module=lintfix.unlocked_ok
"""Fixture: the same unlocked writes, suppressed inline."""
import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self.hits = 0

    def add(self, name, value):
        self._entries[name] = value  # lint: disable=unlocked-shared-write

    def bump(self):
        self.hits += 1  # lint: disable=all
