"""Fixture: directory listings consumed without sorted()."""
import glob
import os
import pathlib


def scan(root: pathlib.Path):
    names = os.listdir(root)
    matches = glob.glob("*.npz")
    for path in root.glob("*.jsonl"):
        names.append(path.name)
    for path in root.iterdir():
        names.append(path.name)
    deep = list(root.rglob("*.py"))
    return names, matches, deep
