"""Fixture: PYTHONHASHSEED-dependent hash() in control flow and keys."""


def shard_of(site, n_shards, table, flags):
    shard = hash(site) % n_shards
    if hash(site + ".com") & 1:
        shard += 1
    bucket = table[hash(b"key")]
    lookup = {hash(f"{site}"): shard}
    ordered = sorted(flags, key=lambda flag: hash(flag))
    return shard, bucket, lookup, ordered
