# lint: module=lintfix.workers
"""Fixture: shared mutable state handed to process-pool workers."""
import threading
from concurrent.futures import ProcessPoolExecutor

CACHE = {}
RESULTS = []


def work(payload):
    return payload


def fan_out(items):
    with ProcessPoolExecutor() as pool:
        for item in items:
            pool.submit(work, CACHE)
        pool.map(work, RESULTS)


class Owner:
    def __init__(self):
        self._lock = threading.Lock()
        self._pool = ProcessPoolExecutor()

    def kick(self):
        return self._pool.submit(work, self)

    def kick_method(self):
        return self._pool.submit(self._job, 1)

    def _job(self, n):
        return n


def fine(items):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, dict(item)) for item in items]
    return [future.result() for future in futures]
