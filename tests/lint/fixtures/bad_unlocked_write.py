# lint: module=lintfix.unlocked
"""Fixture: lock-owning class mutating shared state outside its lock."""
import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self._order = []
        self.hits = 0

    def add(self, name, value):
        self._entries[name] = value

    def bump(self):
        self.hits += 1

    def track(self, name):
        self._order.append(name)

    def reset(self):
        self._entries = {}

    def forget(self, name):
        self._entries.pop(name, None)

    def guarded(self, name, value):
        with self._lock:
            self._entries[name] = value

    def _merge_locked(self, other):
        self._entries.update(other)
