# lint: module=repro.sim.fixture
"""Fixture: host-clock reads inside a simulated-time-only package."""
import time
from datetime import datetime
from time import perf_counter


def now_everything():
    wall = time.time()
    mono = time.monotonic_ns()
    perf = perf_counter()
    stamp = datetime.now()
    return wall, mono, perf, stamp
