"""Fixture: the same hash() sinks, suppressed inline."""


def shard_of(site, n_shards):
    shard = hash(site) % n_shards  # lint: disable=env-dependent-hash
    if hash(site) & 1:  # lint: disable=all
        shard += 1
    return shard
