# lint: module=lintfix.base
"""Cross-module fixture: the lock-owning base class and a shared global."""
import threading

SHARED = {}


class LockedBase:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self._worker = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        pass

    def bump_safe(self):
        with self._lock:
            self.count += 1
