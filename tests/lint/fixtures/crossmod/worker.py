# lint: module=lintfix.worker
"""Cross-module fixture: violations only visible with project summaries.

The base class owning the lock and the mutable global both live in
``base.py`` — a one-file-at-a-time walker cannot see either from here.
"""
from concurrent.futures import ProcessPoolExecutor

from lintfix.base import SHARED, LockedBase


def job(payload):
    return payload


class Worker(LockedBase):
    def bump_racy(self):
        self.count += 1

    def bump_safe_here(self):
        with self._lock:
            self.count += 1


def fan_out():
    with ProcessPoolExecutor() as pool:
        pool.submit(job, SHARED)
