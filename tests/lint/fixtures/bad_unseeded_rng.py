"""Fixture: every statement below violates unseeded-rng."""
import random

import numpy as np


def entropy_everywhere():
    rng = np.random.default_rng()
    noise = np.random.normal(0.0, 1.0, 16)
    np.random.seed(0)
    generator = random.Random()
    system = random.SystemRandom()
    pick = random.choice([1, 2, 3])
    return rng, noise, generator, system, pick
