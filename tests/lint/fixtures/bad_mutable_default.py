"""Fixture: mutable default arguments."""
import collections


def accumulate(batch, sink=[]):
    sink.append(batch)
    return sink


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts


def dedupe(item, seen=set()):
    seen.add(item)
    return seen


def queue_up(item, pending=collections.deque()):
    pending.append(item)
    return pending


def keyword_only(*, history=list()):
    history.append(1)
    return history
