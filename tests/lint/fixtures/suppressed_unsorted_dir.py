"""Fixture: unsorted listings, suppressed (order genuinely irrelevant)."""
import os
import pathlib


def nuke(root: pathlib.Path):
    for name in os.listdir(root):  # lint: disable=unsorted-dir-iteration
        (root / name).unlink()
    for path in root.glob("*.tmp"):  # lint: disable=all
        path.unlink()
