# lint: module=repro.sim.fixture
"""Fixture: the good spellings of every rule — must produce no findings."""
import hashlib
import os
import pathlib
import random

import numpy as np


class Keyed:
    def __init__(self, value):
        self.value = value

    def __hash__(self):
        return hash((Keyed, self.value))


def all_good(seed: int, root: pathlib.Path, labels, sink=None):
    rng = np.random.default_rng(seed)
    stdlib_rng = random.Random(seed)
    noise = rng.normal(0.0, 1.0, 16)
    names = sorted(os.listdir(root))
    files = sorted(root.glob("*.jsonl"))
    columns = sorted(set(labels))
    membership = "bbc" in {"nytimes", "cnn", "bbc"}
    digest = hashlib.sha256(str(labels).encode()).hexdigest()
    sink = [] if sink is None else sink
    sink.append(digest)
    return rng, stdlib_rng, noise, names, files, columns, membership, sink
