"""Fixture: same violations as bad_unseeded_rng, all suppressed inline."""
import random

import numpy as np


def entropy_everywhere():
    rng = np.random.default_rng()  # lint: disable=unseeded-rng
    noise = np.random.normal(0.0, 1.0, 16)  # lint: disable=unseeded-rng
    generator = random.Random()  # lint: disable=all
    return rng, noise, generator
