# lint: module=repro.sim.fixture
"""Fixture: the same host-clock reads, suppressed inline."""
import time


def now_everything():
    wall = time.time()  # lint: disable=wall-clock-in-sim
    mono = time.monotonic_ns()  # lint: disable=all
    return wall, mono
