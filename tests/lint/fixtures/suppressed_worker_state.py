# lint: module=lintfix.workers_ok
"""Fixture: the same worker submissions, suppressed inline."""
from concurrent.futures import ProcessPoolExecutor

CACHE = {}


def work(payload):
    return payload


def fan_out(items):
    with ProcessPoolExecutor() as pool:
        for item in items:
            pool.submit(work, CACHE)  # lint: disable=shared-state-into-worker
        pool.map(work, CACHE)  # lint: disable=all
