# lint: module=repro.sim.fixture
"""Fixture: sets feeding order-sensitive sinks in a deterministic module."""


def order_chaos(labels):
    for site in {"nytimes", "cnn", "bbc"}:
        print(site)
    columns = list(set(labels))
    pairs = [(x, x) for x in {1, 2, 3}]
    joined = ",".join({str(x) for x in labels})
    frozen = tuple(frozenset(labels))
    return columns, pairs, joined, frozen
