"""Fixture: mutable defaults, suppressed (intentional module-level cache)."""


def accumulate(batch, sink=[]):  # lint: disable=mutable-default-arg
    sink.append(batch)
    return sink


def tally(key, counts={}):  # lint: disable=all
    counts[key] = counts.get(key, 0) + 1
    return counts
