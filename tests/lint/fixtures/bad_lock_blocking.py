# lint: module=lintfix.blocking
"""Fixture: slow and indefinitely-blocking calls under a held lock."""
import subprocess
import threading
import time


class Server:
    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self._worker = threading.Thread(target=self._run, daemon=True)
        self._log = []

    def _run(self):
        pass

    def slow_io(self, path, model, batch):
        with self._lock:
            handle = open(path)
            time.sleep(0.5)
            subprocess.run(["true"], check=True)
            probs = model.predict_proba(batch)
        return handle, probs

    def slow_sync(self):
        with self._lock:
            self._ready.wait()
            self._worker.join()

    def fine(self, path, model, batch):
        with self._lock:
            self._log.append(path)
        handle = open(path)
        return handle, model.predict_proba(batch)
