# lint: module=repro.sim.fixture
"""Fixture: the same set consumption, suppressed inline."""


def order_chaos(labels):
    for site in {"nytimes", "cnn", "bbc"}:  # lint: disable=set-iteration-order
        print(site)
    columns = list(set(labels))  # lint: disable=all
    return columns
