"""Every rule fires on its bad fixture and stays quiet when suppressed."""

from __future__ import annotations

import pytest

from repro.lint import lint_paths, rule_ids

#: rule id -> (fixture stem, minimum expected findings in the bad file).
RULE_FIXTURES = {
    "unseeded-rng": ("unseeded_rng", 6),
    "wall-clock-in-sim": ("wall_clock", 4),
    "unsorted-dir-iteration": ("unsorted_dir", 5),
    "set-iteration-order": ("set_iteration", 5),
    "mutable-default-arg": ("mutable_default", 5),
    "env-dependent-hash": ("env_hash", 5),
    "unlocked-shared-write": ("unlocked_write", 5),
    "blocking-call-under-lock": ("lock_blocking", 6),
    "condition-wait-without-predicate": ("cond_wait", 5),
    "nondaemon-unjoined-thread": ("thread_lifecycle", 3),
    "shared-state-into-worker": ("worker_state", 4),
}


def test_every_rule_has_a_fixture():
    assert sorted(RULE_FIXTURES) == rule_ids()


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_bad_fixture_is_flagged(rule_id, fixtures):
    stem, expected = RULE_FIXTURES[rule_id]
    run = lint_paths([str(fixtures / f"bad_{stem}.py")], select=[rule_id])
    assert len(run.findings) >= expected
    assert {finding.rule for finding in run.findings} == {rule_id}
    assert all(finding.line > 0 for finding in run.findings)


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_suppressed_fixture_is_quiet(rule_id, fixtures):
    stem, _ = RULE_FIXTURES[rule_id]
    run = lint_paths([str(fixtures / f"suppressed_{stem}.py")], select=[rule_id])
    assert run.findings == []
    assert len(run.suppressed) >= 2  # one per-rule disable, one disable=all


def test_clean_fixture_has_no_findings(fixtures):
    run = lint_paths([str(fixtures / "clean.py")])
    assert run.findings == []
    assert run.suppressed == []


def test_bad_fixtures_only_trip_their_own_rule(fixtures):
    """Cross-check: the clean spellings in one fixture don't trip others."""
    for rule_id, (stem, _) in sorted(RULE_FIXTURES.items()):
        run = lint_paths([str(fixtures / f"bad_{stem}.py")])
        assert {finding.rule for finding in run.findings} == {rule_id}


def test_select_and_ignore_are_validated(fixtures):
    with pytest.raises(KeyError):
        lint_paths([str(fixtures / "clean.py")], select=["no-such-rule"])
    with pytest.raises(KeyError):
        lint_paths([str(fixtures / "clean.py")], ignore=["no-such-rule"])


def test_ignore_removes_a_rule(fixtures):
    stem, _ = RULE_FIXTURES["unseeded-rng"]
    run = lint_paths(
        [str(fixtures / f"bad_{stem}.py")], ignore=["unseeded-rng"]
    )
    assert run.findings == []
