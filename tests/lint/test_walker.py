"""Discovery order, module resolution and parse-error handling."""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import lint_paths
from repro.lint.walker import discover, load_module, resolve_module_name

from tests.lint.conftest import REPO_ROOT


def test_discovery_is_sorted_and_deduplicated(tmp_path):
    for name in ("b.py", "a.py", "c.py"):
        (tmp_path / name).write_text("x = 1\n")
    found = list(discover([str(tmp_path), str(tmp_path / "a.py")]))
    assert [path.name for path in found] == ["a.py", "b.py", "c.py"]


def test_directory_walk_skips_fixture_and_cache_dirs(tmp_path):
    (tmp_path / "fixtures").mkdir()
    (tmp_path / "fixtures" / "bad.py").write_text("x = 1\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert [path.name for path in discover([str(tmp_path)])] == ["ok.py"]


def test_explicit_file_beats_directory_excludes(tmp_path):
    nested = tmp_path / "fixtures"
    nested.mkdir()
    target = nested / "bad.py"
    target.write_text("import random\nrandom.random()\n")
    run = lint_paths([str(target)])
    assert [finding.rule for finding in run.findings] == ["unseeded-rng"]


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        list(discover(["no/such/path.py"]))


def test_module_resolution_follows_init_chain():
    machine = REPO_ROOT / "src" / "repro" / "sim" / "machine.py"
    assert resolve_module_name(machine) == "repro.sim.machine"
    package = REPO_ROOT / "src" / "repro" / "sim" / "__init__.py"
    assert resolve_module_name(package) == "repro.sim"


def test_module_pragma_overrides_resolution(tmp_path):
    path = tmp_path / "loose.py"
    path.write_text("# lint: module=repro.sim.pretend\nx = 1\n")
    module = load_module(path)
    assert module.module == "repro.sim.pretend"
    assert module.in_package("repro.sim")
    assert not module.in_package("repro.obs")


def test_syntax_error_becomes_a_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def oops(:\n")
    run = lint_paths([str(path)])
    assert len(run.findings) == 1
    assert run.findings[0].rule == "syntax-error"
    assert "does not parse" in run.findings[0].message


def test_parent_links_are_annotated(tmp_path):
    path = tmp_path / "linked.py"
    path.write_text("value = [1, 2]\n")
    module = load_module(path)
    assign = module.tree.body[0]
    assert assign.value.parent is assign
    assert pathlib.Path(module.display_path) == path
