"""Shared paths for the lint test suite."""

from __future__ import annotations

import pathlib

import pytest

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO_ROOT = pathlib.Path(__file__).parents[2]


@pytest.fixture
def fixtures() -> pathlib.Path:
    return FIXTURES
