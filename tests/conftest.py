"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Scale
from repro.sim.machine import InterruptSynthesizer, MachineConfig
from repro.workload.browser import LINUX
from repro.workload.website import profile_for


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def machine_config() -> MachineConfig:
    return MachineConfig(os=LINUX)


@pytest.fixture(scope="session")
def nytimes_run(machine_config):
    """One cached 8-second simulated load of nytimes.com."""
    synthesizer = InterruptSynthesizer(machine_config)
    generator = np.random.default_rng(7)
    site = profile_for("nytimes.com")
    timeline = site.generate_load(generator, 8_000_000_000)
    return synthesizer.synthesize(timeline, style=site.style, rng=generator)


#: A very small scale for experiment smoke tests.
TINY = Scale(
    name="tiny",
    n_sites=4,
    traces_per_site=4,
    trace_seconds=2.0,
    period_ms=10.0,
    n_folds=2,
    backend="feature",
    open_world_sites=10,
)


@pytest.fixture(scope="session")
def tiny_scale() -> Scale:
    return TINY
