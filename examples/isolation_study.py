"""Isolation study: can the system isolate the attacker? (Table 3)

Evaluates a native (undegraded-timer) loop-counting attacker while
isolation mechanisms are stacked one at a time: disable frequency
scaling, pin attacker/victim to separate cores, bind movable IRQs away
with irqbalance, and finally run attacker and victim in separate VMs.

The punchline (Takeaway 3): none of it stops the attack, and VM
isolation makes things *worse* by amplifying every interrupt.

Run:  python examples/isolation_study.py
"""

from repro import CHROME, SMOKE, FingerprintingPipeline
from repro.isolation.ladder import isolation_ladder
from repro.timers.spec import NATIVE_TIMER

SCALE = SMOKE.with_(traces_per_site=8)


def main() -> None:
    print(f"Python attacker, {SCALE.n_sites} sites, closed world:")
    previous = None
    for step in isolation_ladder():
        pipeline = FingerprintingPipeline(
            step.machine, CHROME, scale=SCALE, timer=NATIVE_TIMER, seed=13
        )
        result = pipeline.run_closed_world()
        delta = ""
        if previous is not None:
            delta = f"  ({(result.top1.mean - previous) * 100:+.1f})"
        print(f"  {step.name:30s} top-1 {result.top1.as_percent()}%{delta}")
        previous = result.top1.mean
    print(
        "\npaper reference: 95.2 -> 94.2 -> 94.0 -> 88.2 -> 91.6 "
        "(VMs amplify interrupts and accuracy recovers)"
    )


if __name__ == "__main__":
    main()
