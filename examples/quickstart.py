"""Quickstart: mount the loop-counting website-fingerprinting attack.

Collects loop-counting traces (the paper's Fig 2b attacker) while a
simulated victim loads websites in Chrome on Linux, then trains the
fingerprinting classifier and reports closed-world accuracy.

Run:  python examples/quickstart.py
"""

from repro import CHROME, SMOKE, FingerprintingPipeline, MachineConfig, profile_for
from repro.core.collector import TraceCollector
from repro.experiments.base import sparkline


def show_example_traces() -> None:
    """Collect and display one trace per marquee site (paper Fig 3)."""
    collector = TraceCollector(MachineConfig(), CHROME, seed=7)
    print("Example loop-counting traces (15 s, P = 5 ms):")
    for name in ("nytimes.com", "amazon.com", "weather.com"):
        trace = collector.collect(profile_for(name))[0]
        vector = trace.to_vector()
        print(
            f"  {name:13s} counts {vector.min():6.0f}..{vector.max():6.0f}  "
            f"{sparkline(vector, width=56)}"
        )
    print()


def run_fingerprinting() -> None:
    """Closed-world fingerprinting at smoke scale (fast)."""
    pipeline = FingerprintingPipeline(MachineConfig(), CHROME, scale=SMOKE, seed=7)
    print(
        f"Fingerprinting {SMOKE.n_sites} websites x {SMOKE.traces_per_site} "
        f"traces (closed world, {SMOKE.n_folds}-fold CV)..."
    )
    result = pipeline.run_closed_world()
    base_rate = 100.0 / SMOKE.n_sites
    print(f"  top-1 accuracy: {result.top1.as_percent()}%  (base rate {base_rate:.1f}%)")
    print(f"  top-5 accuracy: {result.top5.as_percent()}%")


if __name__ == "__main__":
    show_example_traces()
    run_fingerprinting()
