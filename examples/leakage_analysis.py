"""Leakage analysis: prove the attack's signal comes from interrupts.

Reproduces the paper's §5.2 methodology end to end:

1. simulate a victim page load with the attacker pinned to one core,
2. observe execution gaps from user space (the Rust clock poller),
3. log interrupts from the kernel side (the eBPF tracer),
4. attribute every gap >100 ns to the interrupts inside it, and
5. profile per-type handling times (Fig 6) and handler-time share
   over the load (Fig 5).

Run:  python examples/leakage_analysis.py
"""

import numpy as np

from repro import InterruptSynthesizer, InterruptType, MachineConfig, profile_for
from repro.core.analysis import analyze_run
from repro.experiments.base import sparkline
from repro.sim.events import MS, US, seconds_to_ns
from repro.tracing.ebpf import KprobeTracer
from repro.tracing.histograms import FIG6_TYPES, gap_length_histograms


def main() -> None:
    # irqbalance + pinning: only non-movable interrupts can reach the
    # attacker's core, as in the paper's Fig 5 experiment.
    machine = MachineConfig(irqbalance=True, pin_cores=True)
    synthesizer = InterruptSynthesizer(machine)
    rng = np.random.default_rng(42)
    site = profile_for("weather.com")
    timeline = site.generate_load(rng, seconds_to_ns(15.0))
    run = synthesizer.synthesize(timeline, style=site.style, rng=rng)

    analysis = analyze_run(run)
    print(f"victim: {site.name}")
    print(f"observed gaps > 100 ns: {len(analysis.observed_gaps)}")
    print(
        f"attributed to interrupts: {analysis.attributed_fraction * 100:.2f}% "
        "(paper: >99%)"
    )
    print(f"core time stolen by handlers: {analysis.stolen_fraction * 100:.2f}%")

    counter = analysis.attribution.type_counter()
    print("\ninterrupt types participating in gaps:")
    for itype, count in counter.most_common():
        print(f"  {itype.value:18s} {count:7d}")

    tracer = KprobeTracer(run)
    times, fraction = tracer.handler_time_fraction(100 * MS)
    print("\nhandler-time share over the load (Fig 5):")
    print(f"  peak {fraction.max() * 100:.1f}%   {sparkline(fraction, width=60)}")

    print("\ngap-length distributions (Fig 6, all cores):")
    histograms = gap_length_histograms([run], core=-1)
    for itype in FIG6_TYPES:
        hist = histograms[itype]
        if not hist.n_samples:
            continue
        print(
            f"  {itype.value:18s} n={hist.n_samples:6d} "
            f"min={hist.min_ns() / US:5.2f}us mode={hist.mode_ns() / US:5.2f}us  "
            f"{sparkline(hist.counts, width=40)}"
        )


if __name__ == "__main__":
    main()
