"""Extension: keystroke-timing recovery over the interrupt channel.

The related work the paper discusses (§7.1) uses interrupt timing to
monitor keystrokes.  This example mounts that attack on the simulated
substrate: a victim types while a co-located attacker polls the clock on
the keyboard's interrupt core, detects keystroke-shaped execution gaps
(filtering out the periodic scheduler tick), and recovers inter-key
intervals — enough, in the literature, to infer what was typed.

It also shows the two mitigations the paper mentions: a busy system
drowns the signal, and irqbalance moves keyboard IRQs off the attacker's
core entirely.

Run:  python examples/keystroke_timing.py
"""

from dataclasses import replace

import numpy as np

from repro.core.keystroke import quiet_machine, run_keystroke_attack
from repro.sim.machine import MachineConfig
from repro.workload.browser import LINUX


def report(label: str, recovery) -> None:
    errors = recovery.timing_errors_ns()
    error_ms = np.median(errors) / 1e6 if len(errors) else float("nan")
    print(
        f"  {label:34s} recall {recovery.recall * 100:5.1f}%  "
        f"precision {recovery.precision * 100:5.1f}%  "
        f"median timing error {error_ms:.2f} ms"
    )


def main() -> None:
    print("Keystroke-timing attack (40 keystrokes, ~330 chars/min):")
    report("quiet system (idle desktop)", run_keystroke_attack(seed=3))

    busy_os = replace(LINUX, background_irq_hz=800.0)
    report(
        "busy system (heavy device traffic)",
        run_keystroke_attack(seed=3, machine=MachineConfig(os=busy_os, pin_cores=True)),
    )

    # Recovered inter-key intervals on the quiet system.
    recovery = run_keystroke_attack(seed=3)
    detected_intervals = np.diff(recovery.detected_ns) / 1e6
    true_intervals = np.diff(recovery.true_ns) / 1e6
    print(
        f"\ninter-key intervals (ms): true median "
        f"{np.median(true_intervals):.0f}, recovered median "
        f"{np.median(detected_intervals):.0f}"
    )
    print(
        "\nmitigation per the paper: these attacks only consider movable\n"
        "interrupts, so handling keyboard IRQs on a different core\n"
        "(irqbalance) defeats them — unlike the loop-counting attack,\n"
        "which also feeds on non-movable softirqs and IPIs."
    )


if __name__ == "__main__":
    main()
