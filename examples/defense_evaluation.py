"""Defense evaluation: the paper's two countermeasures (§6).

Compares the loop-counting attack's closed-world accuracy under:

* the browser's default (jittered) timer — no defense,
* the randomized timer (random increments at random intervals), and
* spurious-interrupt noise injection (with its +15.7 % page-load cost).

Run:  python examples/defense_evaluation.py
"""

from repro import CHROME, SMOKE, FingerprintingPipeline, MachineConfig
from repro.defenses.interrupt_noise import PAGE_LOAD_OVERHEAD, interrupt_noise_hooks
from repro.defenses.timer_defense import randomized_defense

SCALE = SMOKE.with_(traces_per_site=8)


def evaluate(label, timer=None, noise=None) -> None:
    pipeline = FingerprintingPipeline(
        MachineConfig(), CHROME, scale=SCALE, timer=timer, seed=11
    )
    result = pipeline.run_closed_world(noise=noise)
    print(f"  {label:32s} top-1 {result.top1.as_percent()}%")


def main() -> None:
    base_rate = 100.0 / SCALE.n_sites
    print(
        f"Loop-counting attack vs defenses "
        f"({SCALE.n_sites} sites, base rate {base_rate:.1f}%):"
    )
    evaluate("no defense (Chrome jittered)")
    defense = randomized_defense()
    evaluate(f"randomized timer ({defense.name})", timer=defense.spec)
    evaluate("spurious-interrupt noise", noise=interrupt_noise_hooks())
    print(
        f"\ninterrupt-noise cost: page loads slow down by "
        f"{(PAGE_LOAD_OVERHEAD - 1) * 100:.1f}% (paper: 3.12 s -> 3.61 s)"
    )
    print("paper reference: 96.6% undefended -> 5.2% randomized timer, 70.7% noise")


if __name__ == "__main__":
    main()
