"""Isolation mechanisms evaluated in Table 3."""

from repro.isolation.ladder import IsolationStep, isolation_ladder, iter_ladder

__all__ = ["IsolationStep", "isolation_ladder", "iter_ladder"]
