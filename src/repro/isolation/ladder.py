"""The Table-3 isolation ladder.

The paper evaluates the Python loop-counting attacker under isolation
mechanisms added *incrementally*: each configuration inherits all
mechanisms of the previous one.

1. Default — no isolation.
2. + Disable frequency scaling (``cpufreq-set`` pins 2.5 GHz).
3. + Pin attacker and victim to separate cores (``taskset``).
4. + Remove IRQ interrupts (``irqbalance`` binds movable IRQs to core 0;
   timer ticks, softirqs, rescheduling IPIs and TLB shootdowns cannot be
   moved and stay on the attacker's core).
5. + Run attacker and victim in separate VMs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.sim.machine import MachineConfig
from repro.sim.vm import SEPARATE_VMS


@dataclass(frozen=True)
class IsolationStep:
    """One rung of the ladder: a label and a full machine config."""

    name: str
    machine: MachineConfig


def isolation_ladder(base: MachineConfig | None = None) -> list[IsolationStep]:
    """The five Table-3 configurations, in order."""
    default = base or MachineConfig()
    no_dvfs = default.with_isolation(
        frequency=replace(default.frequency, scaling_enabled=False)
    )
    pinned = no_dvfs.with_isolation(pin_cores=True)
    irqbalanced = pinned.with_isolation(irqbalance=True)
    vms = irqbalanced.with_isolation(vm=SEPARATE_VMS)
    return [
        IsolationStep("Default", default),
        IsolationStep("+ Disable frequency scaling", no_dvfs),
        IsolationStep("+ Pin to separate cores", pinned),
        IsolationStep("+ Remove IRQ interrupts", irqbalanced),
        IsolationStep("+ Run in separate VMs", vms),
    ]


def iter_ladder(base: MachineConfig | None = None) -> Iterator[IsolationStep]:
    """Iterate the ladder lazily."""
    return iter(isolation_ladder(base))
