"""Experiment scaling knobs.

Every experiment accepts a :class:`Scale` controlling dataset size,
trace length and classifier backend, so the whole suite runs on a
laptop in minutes at ``SMOKE``/``DEFAULT`` scale while ``PAPER`` scale
mirrors the publication's dataset sizes (100 sites x 100 traces, 15 s
traces at P = 5 ms, 10-fold CV, full-width LSTM).  EXPERIMENTS.md
records the scale used for every reported number.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace


@dataclass(frozen=True)
class Scale:
    """Dataset and evaluation sizing for one experiment run."""

    name: str
    n_sites: int
    traces_per_site: int
    trace_seconds: float
    period_ms: float
    n_folds: int
    backend: str
    open_world_sites: int

    def __post_init__(self) -> None:
        if self.n_sites < 2:
            raise ValueError("need at least two sites to classify")
        if self.traces_per_site < 1 or self.open_world_sites < 0:
            raise ValueError("invalid trace counts")
        if self.trace_seconds <= 0 or self.period_ms <= 0:
            raise ValueError("invalid trace timing")
        if self.n_folds < 2:
            raise ValueError("cross-validation needs at least two folds")

    def scaled_trace_seconds(self, browser_trace_seconds: float) -> float:
        """Trace length for a browser, preserving the paper's Tor ratio.

        The paper uses 15 s traces except on Tor Browser (50 s); scales
        shrink both proportionally.
        """
        return self.trace_seconds * (browser_trace_seconds / 15.0)

    def with_(self, **changes) -> "Scale":
        """Copy with fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict rendition (recorded in run manifests)."""
        return asdict(self)


SMOKE = Scale(
    name="smoke", n_sites=8, traces_per_site=6, trace_seconds=4.0,
    period_ms=10.0, n_folds=2, backend="feature", open_world_sites=40,
)
DEFAULT = Scale(
    name="default", n_sites=30, traces_per_site=15, trace_seconds=8.0,
    period_ms=5.0, n_folds=3, backend="feature", open_world_sites=150,
)
PAPER = Scale(
    name="paper", n_sites=100, traces_per_site=100, trace_seconds=15.0,
    period_ms=5.0, n_folds=10, backend="lstm-paper", open_world_sites=5000,
)

SCALES = {s.name: s for s in (SMOKE, DEFAULT, PAPER)}
