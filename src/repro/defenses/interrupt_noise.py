"""Spurious-interrupt noise countermeasure (paper §6.2).

Implemented in the paper as a Chrome extension that schedules thousands
of activity bursts and network pings at random intervals while sites
load, generating thousands of interrupts.  Here the injector produces
extra interrupt batches delivered to every core (pings raise real NIC
IRQs plus softirqs; activity bursts raise timer/resched work).

The countermeasure has a measured cost: average page-load time on the
100 closed-world sites rose from 3.12 s to 3.61 s (+15.7 %), which we
carry as a ``load_stretch`` on the victim workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.collector import NoiseHooks
from repro.sim.events import SEC
from repro.sim.interrupts import HandlerLatencyModel, InterruptBatch, InterruptType
from repro.sim.machine import MachineConfig

#: The paper's measured page-load overhead: 3.12 s -> 3.61 s.
PAGE_LOAD_OVERHEAD = 3.61 / 3.12


@dataclass
class SpuriousInterruptInjector:
    """Generates defense-injected interrupts for one victim run.

    ``ping_rate_hz`` is the per-core rate of injected interrupts,
    continuous over the whole trace (the extension schedules its bursts
    uniformly at random, so the noise is unpredictable).  Burstiness
    concentrates injections into short windows, which is more disruptive
    per interrupt than a uniform drizzle.
    """

    ping_rate_hz: float = 3_500.0
    burst_fraction: float = 0.7
    burst_rate_hz: float = 25_000.0
    mean_burst_ns: float = 50_000_000.0
    duration_scale: float = 5.0
    seed_salt: int = 0x5EED

    def __post_init__(self) -> None:
        if self.ping_rate_hz < 0 or self.burst_rate_hz < 0:
            raise ValueError("injection rates cannot be negative")
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be in [0, 1]")

    def inject(
        self,
        machine: MachineConfig,
        horizon_ns: int,
        rng: np.random.Generator,
    ) -> list[tuple[int, InterruptBatch]]:
        """Batches of spurious interrupts, one list entry per core."""
        latency = HandlerLatencyModel(platform_factor=machine.os.handler_cost_factor)
        batches: list[tuple[int, InterruptBatch]] = []
        for core in range(machine.n_cores):
            times = self._arrival_times(horizon_ns, rng)
            if not len(times):
                continue
            durations = (
                latency.sample(InterruptType.SPURIOUS, rng, len(times))
                * self.duration_scale
            )
            batches.append(
                (
                    core,
                    InterruptBatch(
                        InterruptType.SPURIOUS, times, durations, cause="defense_noise"
                    ),
                )
            )
        return batches

    def _arrival_times(self, horizon_ns: int, rng: np.random.Generator) -> np.ndarray:
        steady = rng.poisson(self.ping_rate_hz * (1 - self.burst_fraction) * horizon_ns / SEC)
        times = [rng.uniform(0, horizon_ns, steady)]
        # Bursty component: random windows of concentrated pings.
        burst_budget_hz = self.ping_rate_hz * self.burst_fraction
        n_bursts = rng.poisson(
            burst_budget_hz * horizon_ns / SEC / max(
                self.burst_rate_hz * self.mean_burst_ns / SEC, 1e-9
            )
        )
        for _ in range(n_bursts):
            start = rng.uniform(0, horizon_ns)
            length = rng.exponential(self.mean_burst_ns)
            count = rng.poisson(self.burst_rate_hz * length / SEC)
            if count:
                times.append(rng.uniform(start, min(start + length, horizon_ns), count))
        merged = np.concatenate(times)
        return np.sort(merged)


def interrupt_noise_hooks(
    injector: SpuriousInterruptInjector | None = None,
) -> NoiseHooks:
    """Noise hooks enabling the §6.2 countermeasure during collection."""
    return NoiseHooks(
        interrupt_injector=injector or SpuriousInterruptInjector(),
        load_stretch=PAGE_LOAD_OVERHEAD,
    )
