"""Countermeasures: timer defenses, interrupt noise, cache-sweep noise."""

from repro.defenses.cache_noise import CacheSweepNoise, cache_noise_hooks
from repro.defenses.interrupt_noise import (
    PAGE_LOAD_OVERHEAD,
    SpuriousInterruptInjector,
    interrupt_noise_hooks,
)
from repro.defenses.timer_defense import TimerDefense, quantized_defense, randomized_defense

__all__ = [
    "CacheSweepNoise", "cache_noise_hooks", "PAGE_LOAD_OVERHEAD",
    "SpuriousInterruptInjector", "interrupt_noise_hooks", "TimerDefense",
    "quantized_defense", "randomized_defense",
]
