"""Cache-sweep noise countermeasure (Shusterman et al., evaluated in §4.3).

The defense repeatedly evicts the entire last-level cache by allocating
an LLC-sized buffer and touching every line in a loop.  Its effect on
the *cache* channel is strong — victim occupancy readings are masked by
a constantly high baseline — but it generates almost no interrupts, so
the interrupt channel is untouched.  Table 2 shows exactly that: it
costs the sweep-counting attack only 2.2 points and the loop-counting
attack ~3 points, versus >20 points for interrupt noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.collector import NoiseHooks
from repro.workload.phases import ActivityBurst, ActivityTimeline, BurstKind


@dataclass(frozen=True)
class CacheSweepNoise:
    """Configuration for the cache-sweeping defender process."""

    #: Occupancy baseline the defender's sweeps impose on the LLC.
    occupancy_floor: float = 0.5
    #: CPU-load footprint of the sweeping thread (memory-bound, small).
    cpu_intensity: float = 0.06

    def __post_init__(self) -> None:
        if not 0.0 <= self.occupancy_floor <= 1.0:
            raise ValueError("occupancy_floor must be in [0, 1]")
        if not 0.0 < self.cpu_intensity <= 1.0:
            raise ValueError("cpu_intensity must be in (0, 1]")

    def hooks(self, horizon_ns: int) -> NoiseHooks:
        """Noise hooks applying this defense over a full trace."""
        sweeping = ActivityTimeline(
            [
                ActivityBurst(
                    start_ns=0.0,
                    duration_ns=float(horizon_ns),
                    kind=BurstKind.MEMORY,
                    intensity=self.cpu_intensity,
                    source="defense/cache-sweeper",
                )
            ],
            horizon_ns,
        )
        return NoiseHooks(
            extra_timelines=(sweeping,),
            occupancy_floor=self.occupancy_floor,
        )


def cache_noise_hooks(horizon_ns: int) -> NoiseHooks:
    """Default cache-sweep noise hooks for a trace of ``horizon_ns``."""
    return CacheSweepNoise().hooks(horizon_ns)
