"""Timer-based countermeasures (paper §6.1, Table 4).

These defenses replace the browser's ``performance.now()``:

* quantization to a coarse resolution (Tor's approach, Δ = 100 ms);
* the paper's randomized timer (random increments at random intervals).

Each defense is expressed as a :class:`~repro.timers.spec.TimerSpec`
substituted into the attack pipeline via ``Browser.with_timer`` /
``TraceCollector(timer=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.events import MS
from repro.timers.spec import TimerKind, TimerSpec


@dataclass(frozen=True)
class TimerDefense:
    """A named timer replacement with its expected security effect."""

    name: str
    spec: TimerSpec
    description: str


def quantized_defense(resolution_ms: float = 100.0) -> TimerDefense:
    """Tor Browser's coarse quantized timer."""
    if resolution_ms <= 0:
        raise ValueError(f"resolution must be positive, got {resolution_ms}")
    return TimerDefense(
        name=f"Quantized {resolution_ms:g}ms",
        spec=TimerSpec(TimerKind.QUANTIZED, resolution_ns=resolution_ms * MS),
        description=(
            "Floor-quantizes the timer; the attacker can no longer measure "
            "short periods but can still measure throughput per resolution "
            "step, so accuracy degrades only partially (Table 4: 86.0%)."
        ),
    )


def randomized_defense(
    delta_ms: float = 1.0,
    alpha_range: tuple[int, int] = (5, 25),
    beta_range: tuple[int, int] = (5, 25),
    threshold_ms: float = 100.0,
) -> TimerDefense:
    """The paper's randomized timer with its published parameters."""
    if delta_ms <= 0 or threshold_ms <= 0:
        raise ValueError("delta and threshold must be positive")
    return TimerDefense(
        name=f"Randomized Δ={delta_ms:g}ms",
        spec=TimerSpec(
            TimerKind.RANDOMIZED,
            resolution_ns=delta_ms * MS,
            alpha_range=alpha_range,
            beta_range=beta_range,
            threshold_ns=threshold_ms * MS,
        ),
        description=(
            "Monotonic timer with random increments at random intervals; a "
            "nominally 5 ms attacker period spans 0-100 ms of real time, "
            "destroying the throughput signal (Table 4: ~1% accuracy)."
        ),
    )
