"""The two attacker programs (paper Fig 2).

Both attackers run the same outer structure — count inner-loop
iterations until the browser timer says ``P`` elapsed, store the count —
and differ only in the inner loop body:

* **loop-counting** (Fig 2b, this paper's attack): increment + timer
  read.  Iteration throughput depends only on core frequency, so the
  counter measures how much execution time interrupts stole.
* **sweep-counting** (Fig 2a, Shusterman et al.): increment + a full
  sweep of an LLC-sized buffer + timer read.  Iteration time additionally
  depends on LLC occupancy, so the counter mixes the interrupt signal
  with a (coarse) cache-occupancy signal.

The collector hands each attacker the execution time available in a
period; the attacker converts it into a counter value.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.cache.sweep import SweepTimingModel
from repro.sim.frequency import IterationRateModel
from repro.sim.machine import MachineRun


class Attacker(abc.ABC):
    """Converts per-period execution time into a counter value."""

    name: str = "attacker"

    @abc.abstractmethod
    def count(
        self,
        exec_ns: float,
        t_begin_ns: float,
        run: MachineRun,
        rng: np.random.Generator,
    ) -> float:
        """Expected inner-loop iterations completed in ``exec_ns``."""


@dataclass
class LoopCountingAttacker(Attacker):
    """This paper's attack: no memory accesses, pure instruction throughput."""

    rate_model: IterationRateModel = field(default_factory=IterationRateModel)
    name: str = "loop-counting"

    def count(
        self,
        exec_ns: float,
        t_begin_ns: float,
        run: MachineRun,
        rng: np.random.Generator,
    ) -> float:
        ghz = run.frequency.ghz_at(t_begin_ns)
        return exec_ns * self.rate_model.iterations_per_ns(ghz)


@dataclass
class SweepCountingAttacker(Attacker):
    """Shusterman et al.'s cache-occupancy attack.

    One iteration sweeps the whole LLC, so the iteration rate is two to
    three orders of magnitude lower (the paper observes ~32 sweeps per
    5 ms vs ~27 000 loop iterations) and varies with victim occupancy.
    Sweeps are memory-bound, so frequency scaling affects them weakly
    (``frequency_sensitivity`` < 1).
    """

    sweep_model: SweepTimingModel = field(default_factory=SweepTimingModel)
    frequency_sensitivity: float = 0.3
    base_ghz: float = 2.5
    #: Timing noise of a single sweep (DRAM contention, prefetcher state).
    sweep_jitter: float = 0.05
    #: Extra scaling on observed occupancy (the machine model already
    #: caps victim residency and adds ambient noise); 1.0 means "use the
    #: machine's observable occupancy as-is".  Setting 0 ablates the
    #: cache channel entirely (benchmarks/test_ablations.py).
    occupancy_coupling: float = 1.0
    name: str = "sweep-counting"

    def count(
        self,
        exec_ns: float,
        t_begin_ns: float,
        run: MachineRun,
        rng: np.random.Generator,
    ) -> float:
        victim, ambient = run.occupancy_components_at(t_begin_ns)
        occupancy = float(np.clip(self.occupancy_coupling * victim + ambient, 0.0, 1.0))
        sweep_ns = self.sweep_model.sweep_ns(occupancy)
        sweep_ns *= max(0.1, 1.0 + rng.normal(0.0, self.sweep_jitter))
        ghz = run.frequency.ghz_at(t_begin_ns)
        speedup = (ghz / self.base_ghz) ** self.frequency_sensitivity
        return exec_ns * speedup / sweep_ns
