"""The paper's contribution: attacks, trace collection, leakage analysis."""

from repro.core.analysis import ClockPollingAttacker, LeakageAnalysis, ObservedGap, analyze_run
from repro.core.attacker import Attacker, LoopCountingAttacker, SweepCountingAttacker
from repro.core.collector import NoiseHooks, TraceBatch, TraceCollector
from repro.core.dataset import TraceDataset, collect_and_save
from repro.core.keystroke import (
    KeystrokeAttacker,
    KeystrokeRecovery,
    TypingModel,
    run_keystroke_attack,
)
from repro.core.pipeline import FingerprintingPipeline, OpenWorldResult
from repro.core.trace import Trace, TraceSpec, average_traces, stack_dataset, trace_correlation

__all__ = [
    "ClockPollingAttacker", "LeakageAnalysis", "ObservedGap", "analyze_run",
    "Attacker", "LoopCountingAttacker", "SweepCountingAttacker", "NoiseHooks",
    "TraceBatch", "TraceCollector", "TraceDataset", "collect_and_save",
    "KeystrokeAttacker",
    "KeystrokeRecovery", "TypingModel", "run_keystroke_attack",
    "FingerprintingPipeline", "OpenWorldResult", "Trace", "TraceSpec",
    "average_traces", "stack_dataset", "trace_correlation",
]
