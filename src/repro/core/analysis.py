"""Attacker-side gap analysis (the paper's Rust clock-polling attacker).

§5.2's user-space side: a native program pinned to one core repeatedly
reads ``CLOCK_MONOTONIC`` and records every jump larger than a
threshold.  Here the polling loop is replayed against a simulated run:
the attacker observes a gap wherever the core's merged gap timeline
steals more time than one polling iteration would take.

Combined with the kernel tracer (:mod:`repro.tracing`), this closes the
loop for the >99 % attribution claim: user-observed gaps on one side,
kernel-logged interrupts on the other, one shared clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.machine import MachineRun
from repro.tracing.attribution import AttributionReport, attribute_gaps
from repro.tracing.ebpf import KprobeTracer

#: Cost of one poll iteration (read clock, compare, store) — the
#: attacker cannot observe gaps shorter than this.
POLL_ITERATION_NS = 60.0


@dataclass(frozen=True)
class ObservedGap:
    """One jump in the monotonic clock as seen from user space."""

    start_ns: float
    length_ns: float

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.length_ns


class ClockPollingAttacker:
    """Replays the §5.2 native attacker over a simulated run."""

    def __init__(self, threshold_ns: float = 100.0, core: int | None = None):
        if threshold_ns <= 0:
            raise ValueError(f"threshold must be positive, got {threshold_ns}")
        self.threshold_ns = float(threshold_ns)
        self.core = core

    def observe(self, run: MachineRun) -> list[ObservedGap]:
        """All clock jumps above the threshold during the run."""
        core = run.config.attacker_core if self.core is None else self.core
        gaps = run.cores[core].gaps
        observed = []
        for start, end in zip(gaps.gap_starts, gaps.gap_ends):
            length = float(end - start)
            if length > max(self.threshold_ns, POLL_ITERATION_NS):
                observed.append(ObservedGap(start_ns=float(start), length_ns=length))
        return observed


@dataclass
class LeakageAnalysis:
    """Joint user/kernel view of one run's execution gaps."""

    observed_gaps: list[ObservedGap]
    attribution: AttributionReport
    stolen_fraction: float

    @property
    def attributed_fraction(self) -> float:
        """Fraction of observed gaps explained by logged interrupts."""
        return self.attribution.attributed_fraction


def analyze_run(
    run: MachineRun,
    threshold_ns: float = 100.0,
    core: int | None = None,
) -> LeakageAnalysis:
    """Full §5.2 analysis of one run: observe, trace, attribute."""
    attacker = ClockPollingAttacker(threshold_ns=threshold_ns, core=core)
    observed = attacker.observe(run)
    tracer = KprobeTracer(run, core=core)
    report = attribute_gaps(tracer, threshold_ns=threshold_ns)
    core_idx = run.config.attacker_core if core is None else core
    stolen = run.cores[core_idx].gaps.total_stolen_ns / run.timeline.horizon_ns
    return LeakageAnalysis(
        observed_gaps=observed,
        attribution=report,
        stolen_fraction=float(stolen),
    )
