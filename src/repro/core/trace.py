"""Trace containers and trace arithmetic.

A trace is the attack's raw output: one counter value per attacker
period, indexed by the *observed* (browser-timer) start time of the
period (Fig 2: ``Trace[t_begin] = counter``).  Classifiers consume a
fixed-length vector resampled onto a uniform observed-time grid; under
honest timers this matches real time, under the randomized-timer defense
the placement itself is scrambled — which is part of why the defense
works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.sim.events import MS, seconds_to_ns


@dataclass(frozen=True)
class TraceSpec:
    """Shape of a trace: total horizon and nominal attacker period."""

    horizon_ns: int
    period_ns: int

    def __post_init__(self) -> None:
        if self.horizon_ns <= 0 or self.period_ns <= 0:
            raise ValueError(f"horizon and period must be positive: {self}")
        if self.period_ns > self.horizon_ns:
            raise ValueError("period cannot exceed the horizon")

    @property
    def n_samples(self) -> int:
        """Length of the fixed-size vector representation."""
        return int(self.horizon_ns // self.period_ns)

    @classmethod
    def from_ms(cls, horizon_seconds: float, period_ms: float) -> "TraceSpec":
        return cls(seconds_to_ns(horizon_seconds), int(period_ms * MS))


@dataclass
class Trace:
    """One collected trace with its metadata."""

    spec: TraceSpec
    observed_starts: np.ndarray
    counters: np.ndarray
    label: str = ""
    attacker: str = ""

    def __post_init__(self) -> None:
        self.observed_starts = np.asarray(self.observed_starts, dtype=np.float64)
        self.counters = np.asarray(self.counters, dtype=np.float64)
        if self.observed_starts.shape != self.counters.shape:
            raise ValueError("observed_starts and counters must align")
        if len(self.counters) and self.counters.min() < 0:
            raise ValueError("counters cannot be negative")

    def __len__(self) -> int:
        return len(self.counters)

    def to_vector(self) -> np.ndarray:
        """Fixed-length vector on the uniform observed-time grid.

        Each sample lands in the grid cell of its observed start time
        (later samples win collisions, as a real attacker's array-store
        would); cells with no sample carry the previous value forward.
        """
        n = self.spec.n_samples
        vector = np.full(n, np.nan)
        idx = np.floor(self.observed_starts / self.spec.period_ns).astype(np.int64)
        valid = (idx >= 0) & (idx < n)
        vector[idx[valid]] = self.counters[valid]
        # Forward-fill gaps; leading gap takes the first available value.
        filled = _forward_fill(vector)
        return np.nan_to_num(filled, nan=0.0)

    def normalized(self) -> np.ndarray:
        """Vector divided by its maximum (the paper's Fig 4 normalization)."""
        vector = self.to_vector()
        peak = vector.max()
        return vector / peak if peak > 0 else vector


def _forward_fill(values: np.ndarray) -> np.ndarray:
    """Propagate the last finite value into NaN holes (then backfill head)."""
    result = values.copy()
    mask = np.isnan(result)
    if mask.all():
        return result
    idx = np.where(~mask, np.arange(len(result)), -1)
    np.maximum.accumulate(idx, out=idx)
    filled = np.where(idx >= 0, result[np.maximum(idx, 0)], np.nan)
    # Backfill anything before the first sample with the first value.
    first = np.flatnonzero(~np.isnan(filled))[0]
    filled[:first] = filled[first]
    return filled


def average_traces(traces: Sequence[Trace]) -> np.ndarray:
    """Mean of normalized trace vectors (Fig 4's 'averaged over 100 runs')."""
    if not traces:
        raise ValueError("cannot average zero traces")
    vectors = np.stack([t.normalized() for t in traces])
    return vectors.mean(axis=0)


def trace_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation between two averaged trace vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shapes differ: {a.shape} vs {b.shape}")
    if a.std() == 0 or b.std() == 0:
        raise ValueError("correlation undefined for constant traces")
    return float(np.corrcoef(a, b)[0, 1])


def stack_dataset(traces: Iterable[Trace]) -> tuple[np.ndarray, list[str]]:
    """Stack traces into ``(X, labels)`` for the classifiers."""
    vectors: list[np.ndarray] = []
    labels: list[str] = []
    for trace in traces:
        vectors.append(trace.normalized())
        labels.append(trace.label)
    if not vectors:
        raise ValueError("empty dataset")
    return np.stack(vectors), labels
