"""Keystroke-timing recovery over the interrupt channel.

Related work (§7.1) uses interrupt timing to monitor keystrokes [43, 63,
70]; the paper notes these attacks assume movable keyboard interrupts
and are defeated by handling them on another core.  This extension
demonstrates the base attack on our substrate: a victim types while an
attacker on the keyboard's interrupt core watches for execution gaps in
the keyboard-characteristic length band and recovers the keystroke
timeline — inter-key intervals are enough to infer typed words in the
literature.

It also reproduces the defense: route keyboard IRQs to a different core
(irqbalance) and recall collapses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.sim.events import MS, SEC, US
from repro.sim.interrupts import DEFAULT_LATENCIES, InterruptType
from repro.sim.machine import InterruptSynthesizer, MachineConfig, MachineRun
from repro.sim.routing import AffinitySourceRouting
from repro.workload.phases import ActivityBurst, ActivityTimeline, BurstKind

#: Source label for typing activity (fixes the IRQ affinity core).
KEYBOARD_SOURCE = "victim/keyboard"


@dataclass(frozen=True)
class TypingModel:
    """Inter-keystroke timing: lognormal gaps around a typist's speed."""

    mean_interval_ms: float = 180.0
    sigma: float = 0.35

    def __post_init__(self) -> None:
        if self.mean_interval_ms <= 0:
            raise ValueError("typing interval must be positive")

    def sample_key_times(
        self, n_keys: int, rng: np.random.Generator, start_ns: float = 500 * MS
    ) -> np.ndarray:
        """Absolute press times for ``n_keys`` keystrokes."""
        if n_keys < 1:
            raise ValueError("need at least one keystroke")
        intervals = rng.lognormal(
            np.log(self.mean_interval_ms * MS), self.sigma, n_keys
        )
        return start_ns + np.cumsum(intervals)


def typing_timeline(key_times_ns: Sequence[float], horizon_ns: int) -> ActivityTimeline:
    """An activity timeline with one INPUT burst per keystroke."""
    key_times_ns = np.asarray(key_times_ns, dtype=np.float64)
    if len(key_times_ns) == 0:
        raise ValueError("no keystrokes")
    bursts = [
        ActivityBurst(
            start_ns=float(t),
            duration_ns=2 * MS,
            kind=BurstKind.INPUT,
            intensity=1.0,
            source=KEYBOARD_SOURCE,
        )
        for t in key_times_ns
        if t < horizon_ns - 2 * MS
    ]
    if not bursts:
        raise ValueError("all keystrokes fall outside the horizon")
    return ActivityTimeline(bursts, horizon_ns)


def keyboard_core(machine: MachineConfig) -> int:
    """The core the keyboard's IRQs land on under default routing."""
    if machine.irqbalance:
        return machine.routing_policy().target_core
    return AffinitySourceRouting(machine.n_cores).core_for(KEYBOARD_SOURCE)


@dataclass
class KeystrokeRecovery:
    """Recovered keystroke timeline with its quality metrics."""

    detected_ns: np.ndarray
    true_ns: np.ndarray
    tolerance_ns: float

    @property
    def recall(self) -> float:
        """Fraction of true keystrokes matched by a detection."""
        if not len(self.true_ns):
            return 1.0
        hits = sum(
            1
            for t in self.true_ns
            if len(self.detected_ns)
            and np.min(np.abs(self.detected_ns - t)) <= self.tolerance_ns
        )
        return hits / len(self.true_ns)

    @property
    def precision(self) -> float:
        """Fraction of detections that correspond to a true keystroke."""
        if not len(self.detected_ns):
            return 1.0
        hits = sum(
            1
            for d in self.detected_ns
            if len(self.true_ns)
            and np.min(np.abs(self.true_ns - d)) <= self.tolerance_ns
        )
        return hits / len(self.detected_ns)

    def timing_errors_ns(self) -> np.ndarray:
        """|detected - true| for every matched keystroke."""
        errors = []
        for t in self.true_ns:
            if len(self.detected_ns):
                error = float(np.min(np.abs(self.detected_ns - t)))
                if error <= self.tolerance_ns:
                    errors.append(error)
        return np.array(errors)


class KeystrokeAttacker:
    """Recovers keystroke times from execution gaps on one core.

    The attacker spins on the keyboard's interrupt core polling the
    clock; keyboard interrupts produce gaps in a characteristic length
    band (they are short handlers, distinct from the timer tick's).  A
    minimum-separation debounce merges the key-press/release IRQ pair.
    """

    def __init__(
        self,
        gap_band_ns: tuple[float, float] | None = None,
        min_separation_ns: float = 30 * MS,
    ):
        if gap_band_ns is None:
            spec = DEFAULT_LATENCIES[InterruptType.KEYBOARD]
            gap_band_ns = (spec.floor_ns, spec.median_ns * 1.6)
        if gap_band_ns[0] >= gap_band_ns[1]:
            raise ValueError(f"invalid gap band {gap_band_ns}")
        self.gap_band_ns = gap_band_ns
        self.min_separation_ns = float(min_separation_ns)

    def recover(
        self,
        run: MachineRun,
        true_key_times_ns: Sequence[float],
        core: Optional[int] = None,
        tolerance_ns: float = 5 * MS,
    ) -> KeystrokeRecovery:
        """Detect keystroke-like gaps and score against ground truth.

        The scheduler tick is the main confounder — its gap lengths
        overlap the keyboard band's tail.  The attacker exploits its
        periodicity: it estimates the tick phase from the observed gap
        train (the tick rate is public OS configuration) and discards
        candidates aligned with predicted ticks.
        """
        core_index = keyboard_core(run.config) if core is None else core
        gaps = run.cores[core_index].gaps
        lengths = gaps.durations()
        in_band = (lengths >= self.gap_band_ns[0]) & (lengths <= self.gap_band_ns[1])
        candidates = gaps.gap_starts[in_band]
        candidates = self._drop_tick_aligned(candidates, gaps, run)
        detected: list[float] = []
        for t in candidates:
            if not detected or t - detected[-1] >= self.min_separation_ns:
                detected.append(float(t))
        return KeystrokeRecovery(
            detected_ns=np.array(detected),
            true_ns=np.asarray(true_key_times_ns, dtype=np.float64),
            tolerance_ns=float(tolerance_ns),
        )

    def _drop_tick_aligned(
        self,
        candidates: np.ndarray,
        gaps,
        run: MachineRun,
        tick_margin_ns: float = 0.4 * MS,
    ) -> np.ndarray:
        """Remove candidates coinciding with the periodic tick train."""
        if not len(candidates):
            return candidates
        period_ns = SEC / run.config.os.tick_hz
        # Estimate the tick phase from gaps in the tick-length band.
        lengths = gaps.durations()
        tick_like = gaps.gap_starts[(lengths > 3 * US) & (lengths < 8 * US)]
        if len(tick_like) < 10:
            return candidates
        phases = np.mod(tick_like, period_ns)
        # Circular median via the densest histogram bin.
        histogram, edges = np.histogram(phases, bins=50, range=(0, period_ns))
        phase = float(edges[np.argmax(histogram)] + (edges[1] - edges[0]) / 2)
        offset = np.abs(np.mod(candidates - phase + period_ns / 2, period_ns)
                        - period_ns / 2)
        return candidates[offset > tick_margin_ns]


def quiet_machine(**overrides) -> MachineConfig:
    """An idle desktop: little background device activity.

    Keystroke-timing attacks in the literature assume a quiet system —
    keyboard and network IRQ gaps are indistinguishable by length, so a
    busy NIC drowns the signal (which is also why the paper's website
    traffic is such a strong interrupt source).
    """
    from dataclasses import replace as _replace

    from repro.workload.browser import LINUX

    os_spec = _replace(LINUX, background_irq_hz=15.0)
    return MachineConfig(os=os_spec, pin_cores=True, **overrides)


def run_keystroke_attack(
    n_keys: int = 40,
    machine: Optional[MachineConfig] = None,
    typing: Optional[TypingModel] = None,
    seed: int = 0,
    horizon_s: float = 12.0,
) -> KeystrokeRecovery:
    """End-to-end demo: simulate typing, attack, score."""
    machine = machine or quiet_machine()
    typing = typing or TypingModel()
    rng = np.random.default_rng(seed)
    horizon_ns = int(horizon_s * SEC)
    key_times = typing.sample_key_times(n_keys, rng)
    key_times = key_times[key_times < horizon_ns - 10 * MS]
    timeline = typing_timeline(key_times, horizon_ns)
    run = InterruptSynthesizer(machine).synthesize(timeline, rng=rng)
    attacker = KeystrokeAttacker()
    return attacker.recover(run, key_times)
