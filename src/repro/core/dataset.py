"""Trace dataset persistence and manipulation.

The paper's pipeline separates trace collection (slow, Selenium-driven)
from model training.  This module provides the same separation for the
simulated stack: collected datasets can be saved to a single ``.npz``
archive with their labels and collection metadata, reloaded, merged
(e.g. closed world + open world), subsampled and split.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

import numpy as np

_FORMAT_VERSION = 1


@dataclass
class TraceDataset:
    """A labeled trace matrix with collection metadata.

    **Aliasing contract.**  :meth:`select` — and the operations built on
    it, :meth:`filter_classes` and :meth:`train_test_split` — returns a
    dataset whose ``x`` is a *view* of this dataset's matrix whenever
    the selected rows form one contiguous ascending run (the shape class
    filtering produces on site-ordered collections), and an owned copy
    otherwise.  In-place writes to a view are visible through the parent
    and vice versa; callers that need independence should copy
    explicitly (``dataset.x = dataset.x.copy()``).  :meth:`merge` and
    :meth:`load` always return owned arrays.
    """

    x: np.ndarray
    labels: list[str]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        if self.x.ndim != 2:
            raise ValueError(f"expected (n_traces, length), got {self.x.shape}")
        if len(self.labels) != len(self.x):
            raise ValueError(
                f"{len(self.labels)} labels for {len(self.x)} traces"
            )

    def __len__(self) -> int:
        return len(self.x)

    @property
    def n_classes(self) -> int:
        return len(set(self.labels))

    @property
    def trace_length(self) -> int:
        return self.x.shape[1]

    def class_counts(self) -> dict[str, int]:
        """Traces per class label."""
        counts: dict[str, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # manipulation
    # ------------------------------------------------------------------

    def select(self, indices: Sequence[int]) -> "TraceDataset":
        """Subset by row indices.

        Contiguous ascending selections slice instead of fancy-indexing,
        so the result's ``x`` aliases this dataset's matrix (no copy of
        the trace payload); see the class docstring for the contract.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if (
            len(indices) > 0
            and indices[0] >= 0
            and np.array_equal(
                indices, np.arange(indices[0], indices[0] + len(indices))
            )
        ):
            start = int(indices[0])
            x = self.x[start : start + len(indices)]
        else:
            x = self.x[indices]
        return TraceDataset(
            x=x,
            labels=[self.labels[int(i)] for i in indices],
            metadata=dict(self.metadata),
        )

    def filter_classes(self, keep: Sequence[str]) -> "TraceDataset":
        """Keep only traces whose label is in ``keep``."""
        wanted = set(keep)
        indices = [i for i, label in enumerate(self.labels) if label in wanted]
        if not indices:
            raise ValueError("no traces left after filtering")
        return self.select(indices)

    def merge(self, other: "TraceDataset") -> "TraceDataset":
        """Concatenate two datasets (e.g. sensitive + non-sensitive)."""
        if other.trace_length != self.trace_length:
            raise ValueError(
                f"trace lengths differ: {self.trace_length} vs {other.trace_length}"
            )
        return TraceDataset(
            x=np.concatenate([self.x, other.x]),
            labels=self.labels + other.labels,
            metadata={**other.metadata, **self.metadata},
        )

    def train_test_split(
        self, test_fraction: float = 0.2, seed: int = 0
    ) -> tuple["TraceDataset", "TraceDataset"]:
        """Stratified split preserving per-class proportions."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        rng = np.random.default_rng(seed)
        labels = np.array(self.labels)
        test_idx: list[int] = []
        for cls in np.unique(labels):
            members = np.flatnonzero(labels == cls)
            rng.shuffle(members)
            n_test = max(int(round(len(members) * test_fraction)), 1)
            if n_test >= len(members):
                raise ValueError(
                    f"class {cls!r} too small to split at {test_fraction}"
                )
            test_idx.extend(members[:n_test].tolist())
        test_mask = np.zeros(len(self), dtype=bool)
        test_mask[test_idx] = True
        return self.select(np.flatnonzero(~test_mask)), self.select(
            np.flatnonzero(test_mask)
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Write the dataset to one ``.npz`` archive."""
        path = Path(path)
        np.savez_compressed(
            path,
            x=self.x,
            labels=np.array(self.labels, dtype=object),
            metadata=json.dumps({"format": _FORMAT_VERSION, **self.metadata}),
        )

    @classmethod
    def load(cls, path) -> "TraceDataset":
        """Read a dataset written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(path)
        with np.load(path, allow_pickle=True) as archive:
            metadata = json.loads(str(archive["metadata"]))
            version = metadata.pop("format", None)
            if version != _FORMAT_VERSION:
                raise ValueError(f"unsupported dataset format {version!r}")
            return cls(
                x=archive["x"],
                labels=[str(l) for l in archive["labels"]],
                metadata=metadata,
            )


def collect_and_save(
    collector,
    sites,
    traces_per_site: int,
    path,
    noise=None,
    extra_metadata: Optional[Mapping] = None,
) -> TraceDataset:
    """Collect a dataset with ``collector`` and persist it."""
    x, labels = collector.collect(sites, traces_per_site, noise=noise).stacked()
    metadata = {
        "attacker": collector.attacker.name,
        "browser": collector.browser.name,
        "period_ns": collector.period_ns,
        "horizon_ns": collector.spec.horizon_ns,
        "traces_per_site": traces_per_site,
        **(extra_metadata or {}),
    }
    dataset = TraceDataset(x=x, labels=labels, metadata=metadata)
    dataset.save(path)
    return dataset
