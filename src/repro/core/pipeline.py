"""End-to-end website-fingerprinting pipeline (paper §4.1).

Combines trace collection, label encoding, classifier training and
cross-validated evaluation for both of the paper's setups:

* **closed world** — the attacker knows all N candidate sites and
  classifies among them (base rate 1/N);
* **open world** — the attacker knows N "sensitive" sites; the victim
  also visits unknown sites, all labeled "non-sensitive", forming an
  (N+1)-class problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.config import DEFAULT, Scale
from repro.core.attacker import Attacker, LoopCountingAttacker
from repro.core.collector import NoiseHooks, TraceCollector
from repro.ml.crossval import CrossValResult, cross_validate, stratified_kfold
from repro.ml.encoding import LabelEncoder
from repro.ml.metrics import open_world_metrics
from repro.ml.models import make_fingerprinter
from repro.sim.events import MS
from repro.sim.machine import MachineConfig
from repro.stats.summary import MeanStd
from repro.timers.spec import TimerSpec
from repro.workload.browser import Browser
from repro.workload.catalog import NON_SENSITIVE_LABEL, closed_world, open_world
from repro.workload.website import WebsiteProfile

from dataclasses import replace as _dc_replace


@dataclass
class OpenWorldResult:
    """Open-world accuracies, matching Table 1's three sub-columns.

    ``false_accusation_rate`` and ``missed_sensitive_rate`` decompose
    the errors from the attacker's deployment perspective (see
    :mod:`repro.ml.metrics`).
    """

    sensitive: MeanStd
    non_sensitive: MeanStd
    combined: MeanStd
    false_accusation_rate: MeanStd | None = None
    missed_sensitive_rate: MeanStd | None = None


class FingerprintingPipeline:
    """One attack configuration, ready to evaluate."""

    def __init__(
        self,
        machine: MachineConfig,
        browser: Browser,
        attacker: Optional[Attacker] = None,
        scale: Scale = DEFAULT,
        timer: Optional[TimerSpec] = None,
        period_ms: Optional[float] = None,
        seed: int = 0,
    ):
        self.machine = machine
        self.scale = scale
        self.seed = int(seed)
        trace_seconds = scale.scaled_trace_seconds(browser.trace_seconds)
        self.browser = _dc_replace(browser, trace_seconds=trace_seconds)
        self.attacker = attacker or LoopCountingAttacker()
        period = period_ms if period_ms is not None else scale.period_ms
        self.collector = TraceCollector(
            machine,
            self.browser,
            attacker=self.attacker,
            period_ns=int(period * MS),
            timer=timer,
            seed=seed,
        )

    # ------------------------------------------------------------------

    def sites(self) -> list[WebsiteProfile]:
        """The closed-world candidate sites at this scale."""
        return closed_world(self.scale.n_sites)

    def collect_closed_world(
        self, noise: Optional[NoiseHooks] = None
    ) -> tuple[np.ndarray, list[str]]:
        """Closed-world dataset ``(X, labels)``."""
        return self.collector.collect_dataset(
            self.sites(), self.scale.traces_per_site, noise=noise
        )

    def run_closed_world(self, noise: Optional[NoiseHooks] = None) -> CrossValResult:
        """Collect and cross-validate the closed-world experiment."""
        x, labels = self.collect_closed_world(noise=noise)
        return self.evaluate(x, labels)

    def evaluate(self, x: np.ndarray, labels: Sequence[str]) -> CrossValResult:
        """Cross-validate this pipeline's classifier on a dataset."""
        encoder = LabelEncoder()
        y = encoder.fit_transform(list(labels))
        return cross_validate(
            lambda fold: make_fingerprinter(self.scale.backend, seed=self.seed + fold),
            x,
            y,
            n_classes=encoder.n_classes,
            n_folds=self.scale.n_folds,
            seed=self.seed,
        )

    # ------------------------------------------------------------------

    def run_open_world(self, noise: Optional[NoiseHooks] = None) -> OpenWorldResult:
        """The paper's open-world experiment (§4.1, Table 1 right half)."""
        x_sensitive, labels = self.collect_closed_world(noise=noise)
        open_sites = open_world(self.scale.open_world_sites)
        x_open, open_labels = self.collector.collect_dataset(
            open_sites,
            traces_per_site=1,
            noise=noise,
            labels=[NON_SENSITIVE_LABEL] * len(open_sites),
        )
        x = np.concatenate([x_sensitive, x_open])
        all_labels = list(labels) + list(open_labels)
        encoder = LabelEncoder()
        y = encoder.fit_transform(all_labels)
        non_sensitive_class = encoder.transform([NON_SENSITIVE_LABEL])[0]
        fold_sensitive: list[float] = []
        fold_non_sensitive: list[float] = []
        fold_combined: list[float] = []
        fold_false_accusation: list[float] = []
        fold_missed: list[float] = []
        for fold, (train_idx, test_idx) in enumerate(
            stratified_kfold(y, self.scale.n_folds, self.seed)
        ):
            classifier = make_fingerprinter(self.scale.backend, seed=self.seed + fold)
            classifier.fit(x[train_idx], y[train_idx], encoder.n_classes)
            predictions = classifier.predict_proba(x[test_idx]).argmax(axis=1)
            truth = y[test_idx]
            correct = predictions == truth
            sensitive_mask = truth != non_sensitive_class
            fold_combined.append(float(correct.mean()))
            if sensitive_mask.any():
                fold_sensitive.append(float(correct[sensitive_mask].mean()))
            if (~sensitive_mask).any():
                fold_non_sensitive.append(float(correct[~sensitive_mask].mean()))
            if sensitive_mask.any() and (~sensitive_mask).any():
                errors = open_world_metrics(truth, predictions, int(non_sensitive_class))
                fold_false_accusation.append(errors.false_accusation_rate)
                fold_missed.append(errors.missed_sensitive_rate)
        return OpenWorldResult(
            sensitive=MeanStd.of(fold_sensitive),
            non_sensitive=MeanStd.of(fold_non_sensitive),
            combined=MeanStd.of(fold_combined),
            false_accusation_rate=(
                MeanStd.of(fold_false_accusation) if fold_false_accusation else None
            ),
            missed_sensitive_rate=(
                MeanStd.of(fold_missed) if fold_missed else None
            ),
        )
