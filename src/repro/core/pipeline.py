"""End-to-end website-fingerprinting pipeline (paper §4.1).

Combines trace collection, label encoding, classifier training and
cross-validated evaluation for both of the paper's setups:

* **closed world** — the attacker knows all N candidate sites and
  classifies among them (base rate 1/N);
* **open world** — the attacker knows N "sensitive" sites; the victim
  also visits unknown sites, all labeled "non-sensitive", forming an
  (N+1)-class problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.config import DEFAULT, Scale
from repro.core.attacker import Attacker, LoopCountingAttacker
from repro.core.collector import NoiseHooks, TraceCollector
from repro.ml.crossval import CrossValResult, cross_validate, stratified_kfold
from repro.ml.encoding import LabelEncoder
from repro.ml.metrics import open_world_metrics
from repro.ml.models import make_fingerprinter
from repro.sim.events import MS
from repro.sim.machine import MachineConfig
from repro.stats.summary import MeanStd
from repro.timers.spec import TimerSpec
from repro.workload.browser import Browser
from repro.workload.catalog import NON_SENSITIVE_LABEL, closed_world, open_world
from repro.workload.website import WebsiteProfile

from dataclasses import replace as _dc_replace


@dataclass
class OpenWorldResult:
    """Open-world accuracies, matching Table 1's three sub-columns.

    ``false_accusation_rate`` and ``missed_sensitive_rate`` decompose
    the errors from the attacker's deployment perspective (see
    :mod:`repro.ml.metrics`).
    """

    sensitive: MeanStd
    non_sensitive: MeanStd
    combined: MeanStd
    false_accusation_rate: MeanStd | None = None
    missed_sensitive_rate: MeanStd | None = None


@dataclass(frozen=True)
class _BackendFactory:
    """Picklable ``make_classifier(fold)`` for parallel cross-validation."""

    backend: str
    seed: int

    def __call__(self, fold: int):
        return make_fingerprinter(self.backend, seed=self.seed + fold)


class FingerprintingPipeline:
    """One attack configuration, ready to evaluate.

    Everything after ``machine``/``browser`` is keyword-only; prefer
    :meth:`from_spec`, which also accepts a
    :class:`~repro.engine.context.RunContext` so experiments never
    hand-wire :class:`~repro.core.collector.TraceCollector` internals.
    """

    def __init__(
        self,
        machine: MachineConfig,
        browser: Browser,
        *,
        attacker: Optional[Attacker] = None,
        scale: Scale = DEFAULT,
        timer: Optional[TimerSpec] = None,
        seed: int = 0,
        engine=None,
    ):
        self.machine = machine
        self.scale = scale
        self.seed = int(seed)
        self.engine = engine
        trace_seconds = scale.scaled_trace_seconds(browser.trace_seconds)
        self.browser = _dc_replace(browser, trace_seconds=trace_seconds)
        self.attacker = attacker or LoopCountingAttacker()
        self.collector = TraceCollector(
            machine,
            self.browser,
            attacker=self.attacker,
            period_ns=int(scale.period_ms * MS),
            timer=timer,
            seed=seed,
            engine=engine,
        )

    @classmethod
    def from_spec(
        cls,
        machine: MachineConfig,
        browser: Browser,
        *,
        ctx=None,
        attacker: Optional[Attacker] = None,
        scale: Optional[Scale] = None,
        timer: Optional[TimerSpec] = None,
        seed: Optional[int] = None,
        engine=None,
    ) -> "FingerprintingPipeline":
        """Build a pipeline from declarative parts.

        A :class:`~repro.engine.context.RunContext` supplies scale, seed
        and engine defaults; explicit keyword arguments override it.
        """
        if ctx is not None:
            scale = scale if scale is not None else ctx.scale
            seed = seed if seed is not None else ctx.seed
            engine = engine if engine is not None else ctx.engine
        return cls(
            machine,
            browser,
            attacker=attacker,
            scale=scale if scale is not None else DEFAULT,
            timer=timer,
            seed=seed if seed is not None else 0,
            engine=engine,
        )

    # ------------------------------------------------------------------

    def sites(self) -> list[WebsiteProfile]:
        """The closed-world candidate sites at this scale."""
        return closed_world(self.scale.n_sites)

    def collect_closed_world(
        self, noise: Optional[NoiseHooks] = None
    ) -> tuple[np.ndarray, list[str]]:
        """Closed-world dataset ``(X, labels)``."""
        with obs.span(
            "pipeline.collect",
            sites=self.scale.n_sites,
            traces_per_site=self.scale.traces_per_site,
        ):
            return self.collector.collect(
                self.sites(), self.scale.traces_per_site, noise=noise
            ).stacked()

    def run_closed_world(self, noise: Optional[NoiseHooks] = None) -> CrossValResult:
        """Collect and cross-validate the closed-world experiment."""
        x, labels = self.collect_closed_world(noise=noise)
        return self.evaluate(x, labels)

    def evaluate(self, x: np.ndarray, labels: Sequence[str]) -> CrossValResult:
        """Cross-validate this pipeline's classifier on a dataset."""
        encoder = LabelEncoder()
        y = encoder.fit_transform(list(labels))
        with obs.span(
            "pipeline.evaluate",
            backend=self.scale.backend,
            folds=self.scale.n_folds,
            samples=len(x),
        ):
            return cross_validate(
                _BackendFactory(self.scale.backend, self.seed),
                x,
                y,
                n_classes=encoder.n_classes,
                n_folds=self.scale.n_folds,
                seed=self.seed,
                engine=self.engine,
            )

    # ------------------------------------------------------------------

    def run_open_world(self, noise: Optional[NoiseHooks] = None) -> OpenWorldResult:
        """The paper's open-world experiment (§4.1, Table 1 right half)."""
        with obs.span("pipeline.open_world", sites=self.scale.open_world_sites):
            return self._run_open_world(noise)

    def _run_open_world(self, noise: Optional[NoiseHooks]) -> OpenWorldResult:
        x_sensitive, labels = self.collect_closed_world(noise=noise)
        open_sites = open_world(self.scale.open_world_sites)
        x_open, open_labels = self.collector.collect(
            open_sites,
            noise=noise,
            labels=[NON_SENSITIVE_LABEL] * len(open_sites),
        ).stacked()
        x = np.concatenate([x_sensitive, x_open])
        all_labels = list(labels) + list(open_labels)
        encoder = LabelEncoder()
        y = encoder.fit_transform(all_labels)
        non_sensitive_class = encoder.transform([NON_SENSITIVE_LABEL])[0]
        make_classifier = _BackendFactory(self.scale.backend, self.seed)
        tasks = [
            (
                make_classifier,
                fold,
                x,
                y,
                encoder.n_classes,
                train_idx,
                test_idx,
                int(non_sensitive_class),
            )
            for fold, (train_idx, test_idx) in enumerate(
                stratified_kfold(y, self.scale.n_folds, self.seed)
            )
        ]
        if self.engine is not None:
            outcomes = self.engine.map(_open_world_fold_task, tasks, stage="train")
        else:
            outcomes = [_open_world_fold_task(task) for task in tasks]
        fold_sensitive: list[float] = []
        fold_non_sensitive: list[float] = []
        fold_combined: list[float] = []
        fold_false_accusation: list[float] = []
        fold_missed: list[float] = []
        for combined, sensitive, non_sensitive, false_accusation, missed in outcomes:
            fold_combined.append(combined)
            if sensitive is not None:
                fold_sensitive.append(sensitive)
            if non_sensitive is not None:
                fold_non_sensitive.append(non_sensitive)
            if false_accusation is not None:
                fold_false_accusation.append(false_accusation)
                fold_missed.append(missed)
        return OpenWorldResult(
            sensitive=MeanStd.of(fold_sensitive),
            non_sensitive=MeanStd.of(fold_non_sensitive),
            combined=MeanStd.of(fold_combined),
            false_accusation_rate=(
                MeanStd.of(fold_false_accusation) if fold_false_accusation else None
            ),
            missed_sensitive_rate=(
                MeanStd.of(fold_missed) if fold_missed else None
            ),
        )


def _open_world_fold_task(
    task: tuple,
) -> tuple[float, Optional[float], Optional[float], Optional[float], Optional[float]]:
    """One open-world CV fold; module-level so it pickles to workers.

    Returns ``(combined, sensitive, non_sensitive, false_accusation,
    missed)`` with None where the fold lacks the relevant class mix.
    """
    (
        make_classifier,
        fold,
        x,
        y,
        n_classes,
        train_idx,
        test_idx,
        non_sensitive_class,
    ) = task
    classifier = make_classifier(fold)
    classifier.fit(x[train_idx], y[train_idx], n_classes)
    predictions = classifier.predict_proba(x[test_idx]).argmax(axis=1)
    truth = y[test_idx]
    correct = predictions == truth
    sensitive_mask = truth != non_sensitive_class
    combined = float(correct.mean())
    sensitive = float(correct[sensitive_mask].mean()) if sensitive_mask.any() else None
    non_sensitive = (
        float(correct[~sensitive_mask].mean()) if (~sensitive_mask).any() else None
    )
    false_accusation = missed = None
    if sensitive_mask.any() and (~sensitive_mask).any():
        errors = open_world_metrics(truth, predictions, non_sensitive_class)
        false_accusation = errors.false_accusation_rate
        missed = errors.missed_sensitive_rate
    return combined, sensitive, non_sensitive, false_accusation, missed
