"""Trace collection: run an attacker against a victim on a machine.

``TraceCollector`` wires together the whole stack — website profile →
activity timeline → interrupt synthesis → attacker-loop walk through the
browser timer — and produces :class:`~repro.core.trace.Trace` objects
and labeled datasets.  This mirrors the paper's Selenium-automated data
collection (§4.1): repeated site loads, one trace per load.

Collection is embarrassingly parallel at (site, trace-index) granularity
— every trace derives its RNG stream from ``(collector seed, site seed,
trace index)`` alone — so :meth:`TraceCollector.collect` fans out over
an :class:`~repro.engine.engine.ExecutionEngine` when one is attached,
and consults the engine's :class:`~repro.engine.cache.TraceCache` before
simulating anything.  Parallel, cached and serial runs are bit-identical.

``collect()`` is the single entry point: it takes one site or many,
a per-site trace count, and returns a :class:`TraceBatch` that behaves
as a sequence of traces and stacks into ``(X, labels)`` on demand.
(The pre-unification methods ``collect_trace`` / ``collect_traces`` /
``collect_dataset`` shipped one release as ``DeprecationWarning``
shims and are now gone.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.core.attacker import Attacker, LoopCountingAttacker
from repro.core.trace import Trace, TraceSpec, stack_dataset
from repro.sim.interrupts import InterruptBatch
from repro.sim.machine import InterruptSynthesizer, MachineConfig, MachineRun
from repro.timers.spec import TimerSpec
from repro.workload.browser import Browser
from repro.workload.phases import ActivityTimeline, merge_timelines
from repro.workload.website import WebsiteProfile

#: Hard cap on periods per trace, protecting against degenerate timers.
_MAX_PERIODS = 2_000_000


@dataclass
class NoiseHooks:
    """Optional noise sources applied during collection.

    ``extra_timelines`` adds background activity (Slack/Spotify, or the
    cache-sweep countermeasure's occupancy pressure);
    ``interrupt_injector`` produces extra interrupt batches per run (the
    §6.2 spurious-interrupt defense); ``load_stretch`` slows page loads
    (the defense's +15.7 % load-time cost); ``occupancy_floor`` raises
    LLC occupancy seen by sweeps (cache-sweep noise).
    """

    extra_timelines: Sequence[ActivityTimeline] = ()
    interrupt_injector: Optional[object] = None
    load_stretch: float = 1.0
    occupancy_floor: float = 0.0


@dataclass(frozen=True)
class TraceBatch(Sequence):
    """The result of one :meth:`TraceCollector.collect` call.

    Behaves as an immutable sequence of :class:`~repro.core.trace.Trace`
    objects (indexing, iteration, ``len``) and stacks into the classic
    ``(X, labels)`` dataset pair via :meth:`stacked`.
    """

    traces: tuple = ()

    def __len__(self) -> int:
        return len(self.traces)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TraceBatch(traces=self.traces[index])
        return self.traces[index]

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def stacked(self) -> tuple[np.ndarray, list[str]]:
        """Stack into ``(X, labels)`` for the ml layer."""
        return stack_dataset(list(self.traces))


class TraceCollector:
    """Collects traces for one (machine, browser, attacker) configuration."""

    def __init__(
        self,
        machine: MachineConfig,
        browser: Browser,
        attacker: Optional[Attacker] = None,
        period_ns: Optional[int] = None,
        timer: Optional[TimerSpec] = None,
        seed: int = 0,
        engine=None,
        cache=None,
    ):
        self.machine = machine
        self.browser = browser
        self.attacker = attacker or LoopCountingAttacker()
        self.period_ns = int(period_ns) if period_ns else 5_000_000  # paper default 5 ms
        self.timer_spec = timer or browser.timer
        self.seed = int(seed)
        self.synthesizer = InterruptSynthesizer(machine)
        self.spec = TraceSpec(horizon_ns=browser.horizon_ns, period_ns=self.period_ns)
        self.engine = engine
        self.cache = cache if cache is not None else getattr(engine, "cache", None)

    def __getstate__(self):
        # Engine and cache handles must never cross the process boundary:
        # workers simulate, the parent owns scheduling and cache writes.
        state = self.__dict__.copy()
        state["engine"] = None
        state["cache"] = None
        return state

    # ------------------------------------------------------------------

    def collect(
        self,
        sites: Union[WebsiteProfile, Sequence[WebsiteProfile]],
        traces_per_site: int = 1,
        *,
        start_index: int = 0,
        noise: Optional[NoiseHooks] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> TraceBatch:
        """Collect ``traces_per_site`` traces for each site.

        The single collection entry point: ``sites`` is one
        :class:`~repro.workload.website.WebsiteProfile` or a sequence of
        them; trace indices run ``start_index .. start_index +
        traces_per_site - 1`` per site (the index participates in the
        per-trace RNG derivation, so distinct indices are distinct
        victim loads).  ``labels`` optionally relabels traces per site
        (e.g. collapsing open-world sites onto one class).  Returns a
        :class:`TraceBatch` ordered site-major, index-minor.
        """
        if isinstance(sites, WebsiteProfile):
            sites = [sites]
        else:
            sites = list(sites)
        if not sites:
            raise ValueError("need at least one site to collect")
        if traces_per_site < 1:
            raise ValueError(f"need at least one trace per site, got {traces_per_site}")
        if labels is not None and len(labels) != len(sites):
            raise ValueError(
                f"{len(labels)} labels for {len(sites)} site(s); labels are per site"
            )
        requests = [
            (site, start_index + k, noise)
            for site in sites
            for k in range(traces_per_site)
        ]
        traces = self._collect_batch(requests)
        if labels is not None:
            for i, trace in enumerate(traces):
                trace.label = labels[i // traces_per_site]
        return TraceBatch(traces=tuple(traces))

    def _collect_batch(
        self, requests: Sequence[tuple[WebsiteProfile, int, Optional[NoiseHooks]]]
    ) -> list[Trace]:
        """Resolve (site, index, noise) requests via cache, then engine.

        Cache lookups happen in the parent process; only misses are
        dispatched to workers, and their results are written back here —
        workers never touch the cache, so there are no write races.
        """
        traces: list[Optional[Trace]] = [None] * len(requests)
        missing: list[int] = []
        keys: list[Optional[str]] = [None] * len(requests)
        for i, (site, k, noise) in enumerate(requests):
            key = self._cache_key(site, k, noise) if self.cache else None
            keys[i] = key
            cached = self.cache.get(key) if key is not None else None
            if cached is not None:
                traces[i] = cached
            else:
                missing.append(i)
        if missing:
            engine = self.engine
            tasks = [(self, *requests[i]) for i in missing]
            if engine is not None:
                fresh = engine.map(_collect_task, tasks, stage="collect")
            else:
                fresh = [_collect_task(task) for task in tasks]
            for i, trace in zip(missing, fresh):
                traces[i] = trace
                if keys[i] is not None:
                    self.cache.put(keys[i], trace)
        return traces  # type: ignore[return-value]

    def _cache_key(
        self, site: WebsiteProfile, trace_index: int, noise: Optional[NoiseHooks]
    ) -> Optional[str]:
        """Content hash of everything that determines this trace.

        Returns None (bypassing the cache) when any component — usually a
        custom noise injector — cannot be canonically tokenized.
        """
        from repro import __version__
        from repro.engine.cache import Uncacheable, cache_key

        try:
            return cache_key(
                {
                    "version": __version__,
                    "machine": self.machine,
                    "browser": self.browser,
                    "attacker": self.attacker,
                    "timer": self.timer_spec,
                    "period_ns": self.period_ns,
                    "horizon_ns": self.spec.horizon_ns,
                    "site": site,
                    "trace_index": int(trace_index),
                    "seed": self.seed,
                    "noise": noise,
                }
            )
        except Uncacheable:
            return None

    def _collect_uncached(
        self,
        site: WebsiteProfile,
        trace_index: int,
        noise: Optional[NoiseHooks],
    ) -> Trace:
        """The original collection path: simulate, then walk periods."""
        noise = noise or NoiseHooks()
        rng = np.random.default_rng(
            (self.seed * 1_000_003 + site.seed * 7_919 + trace_index) & 0x7FFFFFFF
        )
        with obs.span("collect.trace", site=site.name, index=int(trace_index)):
            run = self._simulate(site, rng, noise)
            timer = self.timer_spec.build(seed=int(rng.integers(0, 2**31)))
            trace = self._walk_periods(run, timer, rng, label=site.name)
        obs.counter("collect.traces").inc()
        obs.counter("collect.periods").inc(len(trace.counters))
        return trace

    # ------------------------------------------------------------------

    def _simulate(
        self, site: WebsiteProfile, rng: np.random.Generator, noise: NoiseHooks
    ) -> MachineRun:
        stretch = self.browser.load_stretch * noise.load_stretch
        timeline = site.generate_load(rng, self.spec.horizon_ns, time_stretch=stretch)
        if noise.extra_timelines:
            timeline = merge_timelines(
                [timeline, *noise.extra_timelines], horizon_ns=self.spec.horizon_ns
            )
        extra_batches: list[tuple[int, InterruptBatch]] = []
        if noise.interrupt_injector is not None:
            extra_batches = noise.interrupt_injector.inject(
                self.machine, self.spec.horizon_ns, rng
            )
        run = self.synthesizer.synthesize(
            timeline, style=site.style, rng=rng, extra_batches=extra_batches
        )
        if noise.occupancy_floor > 0:
            # A cache-sweeping defender competes with the victim for LLC
            # lines: the victim's observable share shrinks while the
            # baseline (and its chaos) rises.  The victim's evictions
            # still land on top — which is why cache-sweep noise costs
            # the sweep attack only ~2 points in the paper (Table 2).
            floor = noise.occupancy_floor
            run.occupancy_victim = (1.0 - floor) * run.occupancy_victim
            run.occupancy_ambient = np.clip(run.occupancy_ambient + floor, 0.0, 1.0)
        return run

    def _walk_periods(
        self,
        run: MachineRun,
        timer,
        rng: np.random.Generator,
        label: str,
    ) -> Trace:
        """Replay the attacker loop (Fig 2) over one simulated run."""
        gaps = run.attacker_timeline.gaps
        horizon = float(self.spec.horizon_ns)
        period = float(self.period_ns)
        noise_sigma = self.browser.measurement_noise
        observed_starts: list[float] = []
        counters: list[float] = []
        timer.reset()
        t = gaps.next_execution_time(0.0)
        for _ in range(_MAX_PERIODS):
            if t >= horizon:
                break
            obs_begin = timer.read(t)
            t_cross = timer.first_crossing(t, period)
            # The attacker only notices the crossing once it is executing
            # again: a gap spanning the boundary stretches the period.
            t_end = gaps.next_execution_time(t_cross)
            if t_end <= t:  # degenerate timer (e.g. randomized, lagging)
                t_end = gaps.next_execution_time(t + period)
            exec_ns = gaps.executed_between(t, min(t_end, horizon))
            counter = self.attacker.count(exec_ns, t, run, rng)
            if noise_sigma > 0:
                counter *= max(0.0, 1.0 + rng.normal(0.0, noise_sigma))
            observed_starts.append(obs_begin)
            counters.append(np.floor(max(counter, 0.0)))
            t = t_end
        else:
            raise RuntimeError(
                f"trace exceeded {_MAX_PERIODS} periods; timer never advances"
            )
        return Trace(
            spec=self.spec,
            observed_starts=np.array(observed_starts),
            counters=np.array(counters),
            label=label,
            attacker=self.attacker.name,
        )


def _collect_task(task: tuple) -> Trace:
    """One (collector, site, trace_index, noise) unit of engine work.

    Module-level so it pickles into worker processes; the collector
    pickles without its engine/cache handles (see ``__getstate__``).
    """
    collector, site, trace_index, noise = task
    return collector._collect_uncached(site, trace_index, noise)
