"""Model serving: batched inference over saved fingerprinting artifacts.

The training side of the repo ends at a fitted
:class:`~repro.ml.models.Fingerprinter`; this package is the deployment
side.  ``biggerfish train`` persists a model as a schema-versioned
artifact directory (:mod:`repro.ml.artifact`); here a
:class:`~repro.serve.registry.ModelRegistry` keeps a warm LRU cache of
loaded artifacts and a :class:`~repro.serve.server.FingerprintServer`
micro-batches concurrent classification requests into single
``predict_proba`` calls — bit-identical to one-at-a-time evaluation,
with bounded-queue backpressure, per-request deadlines and structured
error results.  :mod:`repro.serve.loadgen` drives it closed-loop for
the ``serve.latency`` benchmark, and :mod:`repro.serve.cli` provides
the ``biggerfish train / serve / predict`` subcommands.
"""

from repro.serve.loadgen import LoadReport, run_load, vectors_from_store
from repro.serve.registry import ModelRegistry
from repro.serve.server import ERROR_CODES, FingerprintServer, PredictResult

__all__ = [
    "ERROR_CODES",
    "FingerprintServer",
    "LoadReport",
    "ModelRegistry",
    "PredictResult",
    "run_load",
    "vectors_from_store",
]
