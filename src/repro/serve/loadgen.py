"""Seeded closed-loop load generator for the fingerprint server.

Drives a running :class:`~repro.serve.server.FingerprintServer` with
``clients`` concurrent threads.  Each client is *closed-loop*: it sends
a request, waits for the result, and immediately sends the next one —
so concurrency (not an open arrival rate) controls the offered load,
and deeper client pools naturally produce fuller batches.  Which trace
each client sends is a pure function of ``(seed, client index, request
index)``, so two runs against the same server and dataset issue the
same request stream.

The report aggregates wall latency (p50/p99), per-error-code counts and
the mean observed batch size — the numbers the ``serve.latency`` bench
scenario records.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.server import FingerprintServer


@dataclass(frozen=True)
class LoadReport:
    """Aggregate outcome of one closed-loop load run.

    ``n_requests`` counts *issued* requests — every ``predict`` call a
    client started — so it equals ``clients × requests_per_client``
    whenever the run completes, whereas ``n_ok`` plus the error counts
    covers only requests that returned.
    """

    n_requests: int
    n_ok: int
    errors: Dict[str, int]
    p50_ms: float
    p99_ms: float
    mean_ms: float
    mean_batch: float
    duration_s: float

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.duration_s if self.duration_s > 0 else 0.0

    def meta(self) -> dict:
        """Flat dict rendition (bench ``meta`` block, CLI output)."""
        return {
            "requests": self.n_requests,
            "ok": self.n_ok,
            "errors": dict(self.errors),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "mean_batch": round(self.mean_batch, 2),
            "throughput_rps": round(self.throughput_rps, 1),
        }


def run_load(
    server: FingerprintServer,
    vectors: Sequence[np.ndarray],
    *,
    clients: int = 4,
    requests_per_client: int = 32,
    seed: int = 0,
    model: Optional[str] = None,
    deadline_ms: Optional[float] = None,
) -> LoadReport:
    """Run a closed-loop load against ``server`` and summarize it."""
    if len(vectors) == 0:
        raise ValueError("need at least one trace vector to send")
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be positive")
    latencies: List[List[float]] = [[] for _ in range(clients)]
    batches: List[List[int]] = [[] for _ in range(clients)]
    outcomes: List[Dict[str, int]] = [{} for _ in range(clients)]
    issued: List[int] = [0] * clients
    failures: List[Optional[BaseException]] = [None] * clients

    def client(index: int) -> None:
        # Anything raised here (a server bug, a bad vector) must surface
        # after join() — a dead thread silently shrinking the report used
        # to masquerade as a lighter load.
        try:
            rng = np.random.default_rng([seed, 0x5E12, index])
            picks = rng.integers(0, len(vectors), size=requests_per_client)
            for pick in picks:
                issued[index] += 1
                started = time.monotonic()
                result = server.predict(
                    vectors[int(pick)], model=model, deadline_ms=deadline_ms
                )
                elapsed_ms = (time.monotonic() - started) * 1000.0
                latencies[index].append(elapsed_ms)
                if result.ok:
                    outcomes[index]["ok"] = outcomes[index].get("ok", 0) + 1
                    batches[index].append(result.batch_size)
                else:
                    outcomes[index][result.error] = (
                        outcomes[index].get(result.error, 0) + 1
                    )
        except BaseException as exc:  # noqa: BLE001 - re-raised after join
            failures[index] = exc

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.monotonic() - started
    dead = [(i, exc) for i, exc in enumerate(failures) if exc is not None]
    if dead:
        index, first = dead[0]
        raise RuntimeError(
            f"{len(dead)} of {clients} load-generator client(s) died; "
            f"client {index} failed after issuing {issued[index]} request(s): "
            f"{first!r}"
        ) from first
    all_latencies = np.array([ms for per in latencies for ms in per])
    all_batches = [b for per in batches for b in per]
    errors: Dict[str, int] = {}
    n_ok = 0
    for per in outcomes:
        for code, count in per.items():
            if code == "ok":
                n_ok += count
            else:
                errors[code] = errors.get(code, 0) + count
    return LoadReport(
        n_requests=int(sum(issued)),
        n_ok=n_ok,
        errors=errors,
        p50_ms=float(np.percentile(all_latencies, 50)),
        p99_ms=float(np.percentile(all_latencies, 99)),
        mean_ms=float(all_latencies.mean()),
        mean_batch=float(np.mean(all_batches)) if all_batches else 0.0,
        duration_s=duration,
    )


def vectors_from_store(
    store_dir, n: Optional[int] = None, *, seed: int = 0
) -> List[np.ndarray]:
    """Draw evaluation trace vectors from a :mod:`repro.data` store.

    Samples ``n`` distinct global rows (all rows when ``n`` is ``None``
    or exceeds the store) through the reader's page-level gather, so a
    load run against a terabyte store touches only the rows it sends.
    The sample is a pure function of ``(store contents, seed)`` — and,
    because global row indices are layout-independent, of the build
    config rather than its sharding.
    """
    from repro.data.reader import ShardedDataset

    store = ShardedDataset(store_dir)
    if n is None or n >= store.n_rows:
        picks = np.arange(store.n_rows)
    else:
        if n < 1:
            raise ValueError(f"need at least one vector, got n={n}")
        rng = np.random.default_rng([seed, 0xDA7A])
        picks = np.sort(rng.choice(store.n_rows, size=n, replace=False))
    return list(store.rows(picks))


__all__ = ["LoadReport", "run_load", "vectors_from_store"]
