"""``biggerfish train / serve / predict`` — the model-serving CLI.

Usage::

    biggerfish train --out model/ --scale smoke --seed 0
    biggerfish serve --artifact model/ < requests.jsonl > results.jsonl
    biggerfish predict --artifact model/ --scale smoke --check-direct

``train`` collects the closed-world dataset at the requested scale,
fits the scale's classifier backend (override with ``--backend``) and
writes a schema-versioned artifact directory (:mod:`repro.ml.artifact`)
recording weights, label classes and training provenance.

``serve`` loads artifacts into a :class:`~repro.serve.server.FingerprintServer`
and answers JSON-Lines requests on stdin — one object per line, e.g.
``{"id": 7, "vector": [24871, ...], "deadline_ms": 50}`` — with one
JSON result per line on stdout.  Batching, backpressure and queue
limits honor ``BIGGERFISH_SERVE_MAX_BATCH`` /
``BIGGERFISH_SERVE_MAX_WAIT_MS`` / ``BIGGERFISH_SERVE_QUEUE`` (flags
override).

``predict`` is the evaluation loop in one command: collect fresh
evaluation traces (disjoint trace indices from training), classify them
through the batched server, and report accuracy.  ``--check-direct``
additionally runs the model directly on the same matrix and fails
unless the batched probabilities are bit-identical — the CI smoke gate
for the serving path.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.config import SCALES
from repro.ml.artifact import ArtifactError

SUBCOMMANDS = ("train", "serve", "predict")


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--seed", type=int, default=0)


def _add_server_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-batch", type=int, default=None,
        help="largest micro-batch (default: BIGGERFISH_SERVE_MAX_BATCH or 32)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=None,
        help="batching window in ms (default: BIGGERFISH_SERVE_MAX_WAIT_MS or 2)",
    )
    parser.add_argument(
        "--queue", type=int, default=None,
        help="bounded queue size (default: BIGGERFISH_SERVE_QUEUE or 256)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="biggerfish",
        description="Train, serve and query fingerprinting model artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a model and save an artifact")
    _add_scale_args(train)
    train.add_argument("--out", required=True, help="artifact directory to write")
    train.add_argument(
        "--backend", choices=("feature", "lstm"), default=None,
        help="classifier backend (default: the scale's backend)",
    )
    train.add_argument(
        "--dataset", default=None, metavar="DIR",
        help=(
            "train from a sharded repro.data store via the streaming reader "
            "instead of collecting traces (--scale then only picks the "
            "default backend)"
        ),
    )

    serve = sub.add_parser("serve", help="answer JSONL requests over stdin/stdout")
    serve.add_argument(
        "--artifact", action="append", required=True, metavar="NAME=DIR|DIR",
        help="artifact to load (repeatable; bare DIR is named 'default')",
    )
    _add_server_args(serve)
    serve.add_argument(
        "--probs", action="store_true",
        help="include the full probability row in each result",
    )

    predict = sub.add_parser(
        "predict", help="classify fresh evaluation traces through the server"
    )
    predict.add_argument("--artifact", required=True, help="artifact directory")
    _add_scale_args(predict)
    predict.add_argument(
        "--traces", type=int, default=2, help="evaluation traces per site"
    )
    predict.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline forwarded to the server",
    )
    _add_server_args(predict)
    predict.add_argument(
        "--check-direct", action="store_true",
        help="fail unless batched probabilities equal direct predict_proba",
    )
    return parser


# ----------------------------------------------------------------------
# train


def _train_matrix_from_store(store_dir: str, seed: int):
    """Assemble the training set through the streaming reader.

    Batches come from :meth:`~repro.data.reader.ShardedDataset.stream_batches`,
    whose seeded row permutation is independent of shard layout — so a
    model trained from any sharding of the same config sees the same
    rows in the same order, and only one batch of trace data is resident
    beyond the accumulating matrix at any point.
    """
    from repro.data.reader import ShardedDataset

    store = ShardedDataset(store_dir)
    parts_x, parts_labels = [], []
    for batch_x, batch_labels in store.stream_batches(256, seed=seed):
        parts_x.append(batch_x)
        parts_labels.append(batch_labels)
    x = np.concatenate(parts_x)
    labels = np.concatenate(parts_labels).tolist()
    provenance = {
        "dataset": str(store_dir),
        "dataset_config": store.manifest.config.as_dict(),
        "dataset_rows": store.n_rows,
    }
    return x, labels, provenance


def _train(args: argparse.Namespace) -> int:
    from repro.ml.encoding import LabelEncoder
    from repro.ml.models import make_fingerprinter

    scale = SCALES[args.scale]
    backend = args.backend or scale.backend
    provenance = {
        "seed": args.seed,
        "scale": scale.name,
        "scale_params": scale.as_dict(),
        "backend": backend,
        "trained_by": "biggerfish train",
    }
    if args.dataset is not None:
        print(f"streaming training set from store {args.dataset}...")
        x, labels, source = _train_matrix_from_store(args.dataset, args.seed)
        provenance.update(source)
    else:
        from repro.core.pipeline import FingerprintingPipeline
        from repro.sim.machine import MachineConfig
        from repro.workload.browser import CHROME

        pipeline = FingerprintingPipeline(
            MachineConfig(), CHROME, scale=scale, seed=args.seed
        )
        print(
            f"collecting {scale.n_sites} sites x {scale.traces_per_site} traces "
            f"(scale={scale.name}, seed={args.seed})..."
        )
        x, labels = pipeline.collect_closed_world()
    encoder = LabelEncoder()
    y = encoder.fit_transform(list(labels))
    print(f"training {backend} backend on {len(x)} traces...")
    model = make_fingerprinter(backend, seed=args.seed)
    model.fit(x, y, encoder.n_classes)
    provenance["n_traces"] = int(len(x))
    path = model.save(args.out, classes=encoder.classes, provenance=provenance)
    print(f"wrote artifact: {Path(path).resolve()}")
    return 0


# ----------------------------------------------------------------------
# serve


def _parse_artifacts(specs: list[str]):
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(capacity=max(4, len(specs)))
    for spec in specs:
        name, _, path = spec.partition("=")
        if not path:
            name, path = "default", spec
        registry.add(name, path)
    return registry


def _serve(args: argparse.Namespace) -> int:
    from repro.serve.server import FingerprintServer

    registry = _parse_artifacts(args.artifact)
    server = FingerprintServer(
        registry,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.queue,
    )
    served = 0
    with server:
        print(
            f"serving {registry.names()} (max_batch={server.max_batch}, "
            f"max_wait_ms={server.max_wait_ms:g}, queue={server.max_queue})",
            file=sys.stderr,
        )
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                print(
                    json.dumps({"ok": False, "error": "bad_input", "detail": str(exc)})
                )
                continue
            result = server.predict(
                request.get("vector"),
                model=request.get("model"),
                deadline_ms=request.get("deadline_ms"),
            )
            response = {"ok": result.ok}
            if "id" in request:
                response["id"] = request["id"]
            if result.ok:
                response["label"] = result.label
                response["confidence"] = round(result.confidence, 6)
                response["batch_size"] = result.batch_size
                if args.probs:
                    response["probs"] = [float(p) for p in result.probs]
            else:
                response["error"] = result.error
                response["detail"] = result.detail
            print(json.dumps(response), flush=True)
            served += 1
    print(f"served {served} request(s)", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# predict


def _predict(args: argparse.Namespace) -> int:
    from repro.core.pipeline import FingerprintingPipeline
    from repro.ml.artifact import load_artifact, load_info
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import FingerprintServer
    from repro.sim.machine import MachineConfig
    from repro.workload.browser import CHROME

    info = load_info(args.artifact)
    scale = SCALES[args.scale]
    pipeline = FingerprintingPipeline(
        MachineConfig(), CHROME, scale=scale, seed=args.seed
    )
    # Evaluation traces start past the training indices, so train and
    # eval never share a trace even with identical seed and scale.
    x, labels = pipeline.collector.collect(
        pipeline.sites(), args.traces, start_index=scale.traces_per_site
    ).stacked()
    registry = ModelRegistry()
    registry.add("default", args.artifact)
    server = FingerprintServer(
        registry,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.queue,
    )
    with server:
        results = server.predict_many(list(x), deadline_ms=args.deadline_ms)
    failed = [r for r in results if not r.ok]
    if failed:
        print(
            f"biggerfish predict: {len(failed)} request(s) failed "
            f"(first: {failed[0].error}: {failed[0].detail})",
            file=sys.stderr,
        )
        return 1
    correct = sum(1 for r, want in zip(results, labels) if r.label == want)
    sizes = [r.batch_size for r in results]
    print(
        f"model: {info.backend} ({args.artifact}), schema v{info.schema_version}, "
        f"repro {info.repro_version}"
    )
    print(
        f"classified {len(results)} eval traces: accuracy "
        f"{100.0 * correct / len(results):.1f}% "
        f"({correct}/{len(results)}), mean batch {np.mean(sizes):.1f}"
    )
    if args.check_direct:
        direct = load_artifact(args.artifact).predict_proba(x)
        batched = np.stack([r.probs for r in results])
        if not np.array_equal(direct, batched):
            print(
                "biggerfish predict: batched probabilities differ from "
                "direct predict_proba",
                file=sys.stderr,
            )
            return 1
        direct_accuracy = 0
        if info.classes is not None:
            hits = [
                info.classes[int(row.argmax())] == want
                for row, want in zip(direct, labels)
            ]
            direct_accuracy = sum(hits)
        if direct_accuracy != correct:
            print(
                "biggerfish predict: batched accuracy disagrees with direct "
                f"evaluation ({correct} != {direct_accuracy})",
                file=sys.stderr,
            )
            return 1
        print("check-direct: batched results bit-identical to direct predict_proba")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "train":
            return _train(args)
        if args.command == "serve":
            return _serve(args)
        return _predict(args)
    except (ArtifactError, ValueError) as exc:
        print(f"biggerfish {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
