"""Micro-batching fingerprinting inference server.

Classifying one trace at a time wastes the vectorized kernels every
backend is built from: a Conv1D over a batch of 32 traces costs barely
more than over one.  :class:`FingerprintServer` exploits that by
queueing incoming requests and draining them in batches — accumulate up
to ``max_batch`` requests (waiting at most ``max_wait_ms`` for
stragglers), run **one** ``predict_proba`` call, and fan the rows back
out to the waiting callers.  Because every layer in both backends is
row-independent, the batched probabilities are bit-identical to
one-at-a-time calls — the tests assert this, and it is what makes the
batcher safe to put in front of the paper's evaluation.

Operational behavior:

* **Backpressure** — the queue is bounded (``max_queue``); requests
  beyond it fail fast with ``overloaded`` instead of growing latency
  without bound.
* **Deadlines** — a request may carry ``deadline_ms``; if it is still
  queued when its deadline passes it resolves as ``deadline`` and never
  occupies a batch slot.
* **Structured errors** — every failure is a :class:`PredictResult`
  with ``ok=False`` and an ``error`` code from :data:`ERROR_CODES`;
  exceptions never propagate to other requests in the batch's queue.
* **Observability** — queue depth, batch sizes, per-request latency and
  error counts are exported through :mod:`repro.obs`, and every batch
  runs under a ``serve.batch`` span.

Defaults come from ``BIGGERFISH_SERVE_MAX_BATCH``,
``BIGGERFISH_SERVE_MAX_WAIT_MS`` and ``BIGGERFISH_SERVE_QUEUE`` when the
corresponding constructor arguments are omitted.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.serve.registry import LoadedModel, ModelRegistry

#: Every way a request can fail, as stable machine-readable codes.
ERROR_CODES = ("overloaded", "deadline", "model_error", "bad_input", "shutdown")

MAX_BATCH_ENV_VAR = "BIGGERFISH_SERVE_MAX_BATCH"
MAX_WAIT_ENV_VAR = "BIGGERFISH_SERVE_MAX_WAIT_MS"
QUEUE_ENV_VAR = "BIGGERFISH_SERVE_QUEUE"


def _env_default(var: str, fallback, convert):
    raw = os.environ.get(var)
    if raw is None:
        return fallback
    try:
        value = convert(raw)
    except ValueError:
        raise ValueError(f"{var} must be a number, got {raw!r}") from None
    return value


@dataclass(frozen=True)
class PredictResult:
    """Outcome of one prediction request.

    ``ok`` requests carry the winning ``label``, its ``confidence`` and
    the full probability row; failed ones carry an ``error`` code from
    :data:`ERROR_CODES` plus a human-readable ``detail``.
    ``batch_size`` records how many requests shared the model call and
    ``wait_ms`` how long this one spent queued — both are observability
    aids, not part of the prediction.
    """

    ok: bool
    label: Optional[str] = None
    confidence: float = 0.0
    probs: Optional[np.ndarray] = None
    error: Optional[str] = None
    detail: str = ""
    batch_size: int = 0
    wait_ms: float = 0.0


def _failure(code: str, detail: str = "", wait_ms: float = 0.0) -> PredictResult:
    assert code in ERROR_CODES
    obs.counter(f"serve.errors.{code}").inc()
    return PredictResult(ok=False, error=code, detail=detail, wait_ms=wait_ms)


@dataclass
class _Pending:
    """One queued request, resolved by the batching worker."""

    vector: np.ndarray
    model: str
    enqueued: float
    deadline: Optional[float]  # absolute time.monotonic(), or None
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[PredictResult] = None

    def resolve(self, result: PredictResult) -> None:
        self.result = result
        self.done.set()


class FingerprintServer:
    """Batched inference over a :class:`~repro.serve.registry.ModelRegistry`.

    ``predict`` blocks the calling thread until its request's batch has
    been served; many threads calling concurrently is exactly the load
    shape that fills batches.  Use as a context manager or call
    :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        default_model: Optional[str] = None,
        max_batch: Optional[int] = None,
        max_wait_ms: Optional[float] = None,
        max_queue: Optional[int] = None,
    ):
        if max_batch is None:
            max_batch = _env_default(MAX_BATCH_ENV_VAR, 32, int)
        if max_wait_ms is None:
            max_wait_ms = _env_default(MAX_WAIT_ENV_VAR, 2.0, float)
        if max_queue is None:
            max_queue = _env_default(QUEUE_ENV_VAR, 256, int)
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        names = registry.names()
        if default_model is None:
            if len(names) == 1:
                default_model = names[0]
            elif not names:
                raise ValueError("registry has no models")
        if default_model is not None and default_model not in registry:
            raise KeyError(f"default model {default_model!r} not registered")
        self.registry = registry
        self.default_model = default_model
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self._queue: "deque[_Pending]" = deque()
        self._cond = threading.Condition()
        self._running = False
        self._worker: Optional[threading.Thread] = None
        #: Times the batching worker woke from its idle wait.  An idle
        #: server must not wake at all between requests — the regression
        #: test pins this to zero across an idle window.
        self.worker_wakeups = 0

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "FingerprintServer":
        with self._cond:
            if self._running:
                return self
            self._running = True
            self._worker = threading.Thread(
                target=self._serve_loop, name="biggerfish-serve", daemon=True
            )
            self._worker.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting requests and drain the queue.

        Already-queued requests are still served (their deadlines
        permitting); new submissions fail with ``shutdown``.
        """
        with self._cond:
            if not self._running:
                return
            self._running = False
            worker, self._worker = self._worker, None
            self._cond.notify_all()
        # Join outside the lock: the worker needs self._cond to drain.
        if worker is not None:
            worker.join(timeout)

    def __enter__(self) -> "FingerprintServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # request path

    def submit(
        self,
        vector,
        *,
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> _Pending:
        """Enqueue one trace vector; returns a waitable pending handle."""
        obs.counter("serve.requests").inc()
        now = time.monotonic()
        deadline = now + deadline_ms / 1000.0 if deadline_ms is not None else None
        name = model if model is not None else self.default_model
        pending = _Pending(
            vector=np.empty(0), model=name or "", enqueued=now, deadline=deadline
        )
        if name is None or name not in self.registry:
            pending.resolve(_failure("bad_input", f"unknown model {name!r}"))
            return pending
        try:
            array = np.asarray(vector, dtype=np.float64)
            if array.ndim != 1 or array.size == 0:
                raise ValueError(f"expected a 1-D trace vector, got shape {array.shape}")
            if not np.all(np.isfinite(array)):
                raise ValueError("trace vector contains NaN or infinity")
        except (TypeError, ValueError) as exc:
            pending.resolve(_failure("bad_input", str(exc)))
            return pending
        pending.vector = array
        with self._cond:
            if not self._running:
                pending.resolve(_failure("shutdown", "server is not running"))
                return pending
            if len(self._queue) >= self.max_queue:
                pending.resolve(
                    _failure("overloaded", f"queue full ({self.max_queue})")
                )
                return pending
            self._queue.append(pending)
            obs.gauge("serve.queue_depth").set(len(self._queue))
            self._cond.notify()
        return pending

    def predict(
        self,
        vector,
        *,
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> PredictResult:
        """Classify one trace vector (blocks until served)."""
        pending = self.submit(vector, model=model, deadline_ms=deadline_ms)
        pending.done.wait()
        return pending.result

    def predict_many(
        self,
        vectors: Sequence,
        *,
        model: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[PredictResult]:
        """Submit many vectors at once, wait for all results.

        Submitting before waiting lets the worker pack them into full
        batches — the natural bulk-classification entry point.
        """
        handles = [
            self.submit(v, model=model, deadline_ms=deadline_ms) for v in vectors
        ]
        for handle in handles:
            handle.done.wait()
        return [handle.result for handle in handles]

    # ------------------------------------------------------------------
    # batching worker

    def _serve_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _next_batch(self) -> Optional[List[_Pending]]:
        """Block for the next batch; None when stopped and drained.

        The idle wait is a plain notify-driven ``Condition.wait()`` —
        ``submit`` and ``stop`` notify, so an idle server makes zero
        wakeups between requests (the old ``wait(0.1)`` form polled the
        empty queue ten times a second).  Only the batch-accumulation
        phase uses a timed wait, against the real ``max_wait_ms``
        deadline rather than a fixed polling interval.
        """
        with self._cond:
            while not self._queue:
                if not self._running:
                    return None
                self._cond.wait()
                self.worker_wakeups += 1
            first = self._queue.popleft()
        batch = [first]
        wait_until = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch:
            with self._cond:
                batch.extend(
                    self._take_matching_locked(
                        first.model, self.max_batch - len(batch)
                    )
                )
                if len(batch) >= self.max_batch:
                    break
                remaining = wait_until - time.monotonic()
                if remaining <= 0 or not self._running:
                    break
                self._cond.wait(remaining)
        with self._cond:
            obs.gauge("serve.queue_depth").set(len(self._queue))
        return batch

    def _take_matching_locked(self, model: str, budget: int) -> List[_Pending]:
        """Pop up to ``budget`` queued requests for ``model`` (in order).

        Requests for other models keep their relative order and stay
        queued for a later batch.  Caller holds the lock.
        """
        taken: List[_Pending] = []
        kept: List[_Pending] = []
        while self._queue and len(taken) < budget:
            pending = self._queue.popleft()
            (taken if pending.model == model else kept).append(pending)
        for pending in reversed(kept):
            self._queue.appendleft(pending)
        return taken

    def _run_batch(self, batch: List[_Pending]) -> None:
        now = time.monotonic()
        live: List[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and now > pending.deadline:
                pending.resolve(
                    _failure(
                        "deadline",
                        f"expired after {(now - pending.enqueued) * 1000.0:.1f} ms in queue",
                        wait_ms=(now - pending.enqueued) * 1000.0,
                    )
                )
            else:
                live.append(pending)
        if not live:
            return
        model_name = live[0].model
        try:
            loaded = self.registry.get(model_name)
        except KeyError as exc:
            for pending in live:
                pending.resolve(_failure("bad_input", str(exc)))
            return
        obs.counter("serve.batches").inc()
        obs.histogram("serve.batch_size").observe(float(len(live)))
        try:
            with obs.span("serve.batch", model=model_name, size=len(live)):
                probs = self._classify(loaded, [p.vector for p in live])
        except Exception as exc:  # noqa: BLE001 - every failure becomes a result
            detail = f"{type(exc).__name__}: {exc}"
            for pending in live:
                pending.resolve(_failure("model_error", detail))
            return
        done = time.monotonic()
        for pending, row in zip(live, probs):
            index = int(row.argmax())
            if loaded.classes is not None and index < len(loaded.classes):
                label = loaded.classes[index]
            else:
                label = str(index)
            wait_ms = (done - pending.enqueued) * 1000.0
            obs.histogram("serve.latency_ms").observe(wait_ms)
            pending.resolve(
                PredictResult(
                    ok=True,
                    label=label,
                    confidence=float(row[index]),
                    probs=row,
                    batch_size=len(live),
                    wait_ms=wait_ms,
                )
            )

    @staticmethod
    def _classify(loaded: LoadedModel, vectors: List[np.ndarray]) -> np.ndarray:
        lengths = {len(v) for v in vectors}
        if len(lengths) != 1:
            raise ValueError(f"mixed trace lengths in batch: {sorted(lengths)}")
        x = np.stack(vectors)
        probs = loaded.model.predict_proba(x)
        if probs.shape[0] != len(vectors):
            raise ValueError(
                f"model returned {probs.shape[0]} rows for {len(vectors)} requests"
            )
        return probs


__all__ = [
    "ERROR_CODES",
    "MAX_BATCH_ENV_VAR",
    "MAX_WAIT_ENV_VAR",
    "QUEUE_ENV_VAR",
    "FingerprintServer",
    "PredictResult",
]
