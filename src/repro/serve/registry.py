"""Warm LRU registry of loaded model artifacts.

The server keeps a bounded number of fingerprinters in memory.  Models
are registered by name against an artifact directory and loaded lazily
on first use; once the registry is full, the least-recently-used model
is evicted and will be re-loaded from disk on its next request.  All
operations are thread-safe — the batching worker and CLI threads share
one registry.

Registry traffic is visible through :mod:`repro.obs`:
``serve.registry.hits`` / ``serve.registry.misses`` (loads) /
``serve.registry.evictions``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.ml.artifact import ArtifactError, ArtifactInfo, load_artifact, load_info

#: Default number of warm models.
DEFAULT_CAPACITY = 4


@dataclass(frozen=True)
class LoadedModel:
    """A warm model plus the artifact metadata it was loaded with."""

    name: str
    model: object
    info: ArtifactInfo

    @property
    def classes(self) -> Optional[tuple]:
        return self.info.classes


class ModelRegistry:
    """Name -> artifact mapping with a warm LRU cache of loaded models."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._paths: Dict[str, Path] = {}
        self._warm: "OrderedDict[str, LoadedModel]" = OrderedDict()
        self._lock = threading.Lock()

    def add(self, name: str, artifact_path) -> ArtifactInfo:
        """Register an artifact under ``name`` (validated, not loaded).

        Reads and validates the manifest immediately so a bad path fails
        at registration time, but defers the weight arrays to first use.
        """
        info = load_info(artifact_path)
        with self._lock:
            if name in self._paths:
                raise ValueError(f"model {name!r} already registered")
            self._paths[name] = Path(artifact_path)
        return info

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._paths)

    def warm_names(self) -> List[str]:
        """Models currently resident, least recently used first."""
        with self._lock:
            return list(self._warm)

    def get(self, name: str) -> LoadedModel:
        """The named model, loading (and possibly evicting) as needed."""
        with self._lock:
            if name not in self._paths:
                raise KeyError(
                    f"unknown model {name!r}; registered: {sorted(self._paths)}"
                )
            warm = self._warm.get(name)
            if warm is not None:
                self._warm.move_to_end(name)
                obs.counter("serve.registry.hits").inc()
                return warm
            path = self._paths[name]
        # Load outside the lock: artifact IO can be slow and other
        # models' requests should not stall behind it.
        obs.counter("serve.registry.misses").inc()
        with obs.span("serve.registry.load", model=name):
            model = load_artifact(path)
            info = load_info(path)
        loaded = LoadedModel(name=name, model=model, info=info)
        with self._lock:
            raced = self._warm.get(name)
            if raced is not None:  # another thread loaded it first
                self._warm.move_to_end(name)
                return raced
            self._warm[name] = loaded
            while len(self._warm) > self.capacity:
                self._warm.popitem(last=False)
                obs.counter("serve.registry.evictions").inc()
        return loaded

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._paths

    def __len__(self) -> int:
        with self._lock:
            return len(self._paths)


__all__ = [
    "DEFAULT_CAPACITY",
    "ArtifactError",
    "LoadedModel",
    "ModelRegistry",
]
