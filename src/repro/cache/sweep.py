"""Analytic sweep-timing model for the sweep-counting attacker.

One iteration of the sweep-counting loop (Fig 2a) touches every line of
an LLC-sized buffer.  Lines still cached from the previous sweep hit;
lines the victim evicted miss and must be refetched from DRAM.  With
victim occupancy ``o`` (fraction of the LLC holding victim data), the
expected sweep time is::

    T(o) = n_lines * (t_hit + o * eviction_exposure * (t_miss - t_hit))
         + loop_overhead

``eviction_exposure`` < 1 because the attacker re-sweeps constantly and
re-claims lines as it goes.  With the default geometry (131 072 lines,
~1.1 ns amortized hit, ~8 ns extra per miss) an idle-system sweep takes
~150 µs, matching the paper's observation of ~32 sweeps per 5 ms period;
under full occupancy sweeps slow ~3x.

The model is validated against the explicit LRU cache in tests
(``tests/cache/test_sweep_model.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.llc import CORE_I5_LLC, CacheGeometry


@dataclass(frozen=True)
class SweepTimingModel:
    """Expected duration of one full-buffer sweep as a function of occupancy."""

    geometry: CacheGeometry = CORE_I5_LLC
    #: Amortized per-line access cost when the line hits (ns).  Hardware
    #: prefetchers make sequential hits much cheaper than a load latency.
    hit_ns_per_line: float = 1.1
    #: Extra cost when the line must come from DRAM (ns).
    miss_penalty_ns: float = 8.0
    #: *Effective* fraction of observed occupancy that turns into sweep
    #: misses.  Calibrated low: the attacker re-claims lines as it
    #: sweeps, and prefetchers hide much of the remaining miss cost, so
    #: the occupancy->sweep-time slope is shallow (which is exactly why
    #: the cache channel carries so little signal, Takeaway 2).
    eviction_exposure: float = 0.072
    #: Fixed per-sweep loop overhead (index math, timer call) in ns.
    loop_overhead_ns: float = 4_000.0

    def __post_init__(self) -> None:
        if self.hit_ns_per_line <= 0 or self.miss_penalty_ns < 0:
            raise ValueError("per-line costs must be positive")
        if not 0.0 <= self.eviction_exposure <= 1.0:
            raise ValueError(
                f"eviction_exposure must be in [0, 1], got {self.eviction_exposure}"
            )

    def sweep_ns(self, occupancy: np.ndarray | float) -> np.ndarray | float:
        """Expected one-sweep duration at victim occupancy ``occupancy``."""
        occ = np.clip(np.asarray(occupancy, dtype=np.float64), 0.0, 1.0)
        per_line = self.hit_ns_per_line + occ * self.eviction_exposure * self.miss_penalty_ns
        result = self.geometry.n_lines * per_line + self.loop_overhead_ns
        return float(result) if np.isscalar(occupancy) else result

    def sweeps_per_period(self, occupancy: float, period_ns: float) -> float:
        """Expected sweep count in an uninterrupted period (paper: ~32)."""
        if period_ns <= 0:
            raise ValueError(f"period must be positive, got {period_ns}")
        return period_ns / self.sweep_ns(occupancy)

    def expected_misses(self, occupancy: float) -> float:
        """Expected misses in one sweep at the given victim occupancy."""
        occ = float(np.clip(occupancy, 0.0, 1.0))
        return self.geometry.n_lines * occ * self.eviction_exposure
