"""Last-level-cache substrate for the sweep-counting attack."""

from repro.cache.llc import CORE_I5_LLC, CacheGeometry, LastLevelCache
from repro.cache.sweep import SweepTimingModel

__all__ = ["CORE_I5_LLC", "CacheGeometry", "LastLevelCache", "SweepTimingModel"]
