"""A set-associative last-level cache model.

The sweep-counting attack (Shusterman et al.) allocates an LLC-sized
buffer and measures how long it takes to touch every cache line; victim
memory activity evicts attacker lines, slowing the next sweep.  This
module provides an explicit set-associative, LRU-replacement cache used
to (a) validate the analytic sweep-timing model in
:mod:`repro.cache.sweep` and (b) support unit and property tests on
cache behaviour itself.

Addresses are line-granular: address ``a`` maps to set ``a % n_sets``
with tag ``a // n_sets`` (physically-indexed, no slicing function —
consistent with the attack's "no detailed knowledge of the cache's
organization" premise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of the cache: ``n_sets`` x ``n_ways`` lines of ``line_bytes``."""

    n_sets: int = 8192
    n_ways: int = 16
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.n_sets < 1 or self.n_ways < 1 or self.line_bytes < 1:
            raise ValueError(f"invalid cache geometry {self}")

    @property
    def n_lines(self) -> int:
        return self.n_sets * self.n_ways

    @property
    def size_bytes(self) -> int:
        return self.n_lines * self.line_bytes


#: Geometry mirroring the paper's Core-i5 test machines (8 MiB LLC).
CORE_I5_LLC = CacheGeometry(n_sets=8192, n_ways=16, line_bytes=64)


class LastLevelCache:
    """Explicit LRU set-associative cache with per-owner occupancy stats."""

    INVALID = -1

    def __init__(self, geometry: CacheGeometry = CORE_I5_LLC):
        self.geometry = geometry
        # tags[s, w] = line tag; owners[s, w] = small int owner id.
        self._tags = np.full((geometry.n_sets, geometry.n_ways), self.INVALID, dtype=np.int64)
        self._owners = np.full((geometry.n_sets, geometry.n_ways), self.INVALID, dtype=np.int8)
        # Per-way LRU age: higher = more recently used.
        self._ages = np.zeros((geometry.n_sets, geometry.n_ways), dtype=np.int64)
        self._clock = 0

    def _set_and_tag(self, line_address: int) -> tuple[int, int]:
        return line_address % self.geometry.n_sets, line_address // self.geometry.n_sets

    def access(self, line_address: int, owner: int = 0) -> bool:
        """Touch one line; returns True on hit, False on miss (fill)."""
        if line_address < 0:
            raise ValueError(f"line address cannot be negative: {line_address}")
        set_idx, tag = self._set_and_tag(line_address)
        self._clock += 1
        ways = self._tags[set_idx]
        hit_ways = np.flatnonzero((ways == tag) & (self._owners[set_idx] == owner))
        if len(hit_ways):
            self._ages[set_idx, hit_ways[0]] = self._clock
            return True
        victim = int(np.argmin(self._ages[set_idx]))
        self._tags[set_idx, victim] = tag
        self._owners[set_idx, victim] = owner
        self._ages[set_idx, victim] = self._clock
        return False

    def access_block(self, start_line: int, n_lines: int, owner: int = 0) -> int:
        """Touch ``n_lines`` consecutive lines; returns the miss count."""
        if n_lines < 0:
            raise ValueError(f"n_lines cannot be negative: {n_lines}")
        misses = 0
        for offset in range(n_lines):
            if not self.access(start_line + offset, owner):
                misses += 1
        return misses

    def occupancy(self, owner: int) -> float:
        """Fraction of cache lines currently held by ``owner``."""
        return float(np.count_nonzero(self._owners == owner)) / self.geometry.n_lines

    def flush(self) -> None:
        """Invalidate the whole cache."""
        self._tags.fill(self.INVALID)
        self._owners.fill(self.INVALID)
        self._ages.fill(0)
        self._clock = 0
