"""Statistical tests used in the paper's evaluation.

The paper uses "a standard 2-sample t-test to compute the statistical
significance of our classifier compared to the classifier from [65]"
(§4.2), reporting p < 0.0001 for all but one configuration.  We
implement Student's (pooled) and Welch's two-sample t-tests from first
principles; the scipy implementations are used in tests as an oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import special


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sample t-test."""

    statistic: float
    p_value: float
    dof: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _t_sf(t: float, dof: float) -> float:
    """Two-sided p-value for |T| >= |t| under a t distribution."""
    x = dof / (dof + t * t)
    # Regularized incomplete beta gives the t-distribution tail directly.
    return float(special.betainc(dof / 2.0, 0.5, x))


def _validate(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if len(a) < 2 or len(b) < 2:
        raise ValueError("each sample needs at least two observations")
    return a, b


def students_t_test(a, b) -> TTestResult:
    """Standard (pooled-variance) two-sample t-test."""
    a, b = _validate(a, b)
    na, nb = len(a), len(b)
    va, vb = a.var(ddof=1), b.var(ddof=1)
    dof = na + nb - 2
    pooled = ((na - 1) * va + (nb - 1) * vb) / dof
    if pooled == 0:
        statistic = math.inf if a.mean() != b.mean() else 0.0
        return TTestResult(statistic, 0.0 if statistic else 1.0, dof)
    statistic = (a.mean() - b.mean()) / math.sqrt(pooled * (1 / na + 1 / nb))
    return TTestResult(float(statistic), _t_sf(abs(statistic), dof), float(dof))


def welch_t_test(a, b) -> TTestResult:
    """Welch's unequal-variance two-sample t-test."""
    a, b = _validate(a, b)
    na, nb = len(a), len(b)
    va, vb = a.var(ddof=1), b.var(ddof=1)
    se2 = va / na + vb / nb
    if se2 == 0:
        statistic = math.inf if a.mean() != b.mean() else 0.0
        return TTestResult(statistic, 0.0 if statistic else 1.0, float(na + nb - 2))
    statistic = (a.mean() - b.mean()) / math.sqrt(se2)
    # Welch–Satterthwaite, computed on ratios of the per-sample terms so
    # denormal-scale variances cannot underflow the squares into 0/0.
    x, y = va / na, vb / nb
    scale = max(x, y)
    xr, yr = x / scale, y / scale
    dof = (xr + yr) ** 2 / (xr**2 / (na - 1) + yr**2 / (nb - 1))
    return TTestResult(float(statistic), _t_sf(abs(statistic), dof), float(dof))


def compare_fold_accuracies(ours, theirs, alpha: float = 0.05) -> TTestResult:
    """Paper-style comparison of two classifiers' per-fold accuracies."""
    return students_t_test(ours, theirs)
