"""Small summary-statistics helpers shared by experiments and reports.

Three primitives cover the paper's reporting needs: :class:`MeanStd`
formats cross-validation accuracies the way Table 1 prints them,
:func:`pearson_r` computes Fig 4's interrupt-count correlations, and
:func:`top_k_accuracy` scores classifier probability matrices with the
deterministic tie-break the verify oracles rely on.  Everything here is
pure and seed-free; all randomness lives with the callers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MeanStd:
    """A mean with its standard deviation, formatted the paper's way.

    >>> MeanStd.of([0.96, 0.97, 0.98]).as_percent()
    '97.0±1.0'
    """

    mean: float
    std: float

    def as_percent(self) -> str:
        """Render like the paper's tables, e.g. ``96.6±0.8``.

        >>> MeanStd(mean=0.966, std=0.008).as_percent()
        '96.6±0.8'
        """
        return f"{self.mean * 100:.1f}±{self.std * 100:.1f}"

    @classmethod
    def of(cls, values) -> "MeanStd":
        """Summarize a sample; the std is the sample (ddof=1) deviation.

        >>> MeanStd.of([2.0, 4.0, 6.0])
        MeanStd(mean=4.0, std=2.0)
        >>> MeanStd.of([1.5]).std  # a single point has no spread
        0.0
        >>> MeanStd.of([])
        Traceback (most recent call last):
            ...
        ValueError: cannot summarize an empty sample
        """
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot summarize an empty sample")
        std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
        return cls(mean=float(values.mean()), std=std)


def pearson_r(a, b) -> float:
    """Pearson correlation coefficient (Fig 4's r values).

    >>> round(pearson_r([1.0, 2.0, 3.0], [2.0, 4.0, 6.0]), 6)
    1.0
    >>> round(pearson_r([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]), 6)
    -1.0
    >>> pearson_r([1.0, 1.0], [2.0, 3.0])
    Traceback (most recent call last):
        ...
    ValueError: correlation undefined for constant series
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shapes differ: {a.shape} vs {b.shape}")
    if len(a) < 2:
        raise ValueError("need at least two points")
    if a.std() == 0 or b.std() == 0:
        raise ValueError("correlation undefined for constant series")
    return float(np.corrcoef(a, b)[0, 1])


def top_k_accuracy(probabilities: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Fraction of rows whose true label is among the top-``k`` classes.

    Ties are broken deterministically toward the *lower* class index: a
    row counts as a hit iff fewer than ``k`` classes strictly beat the
    true label's probability, counting equal-probability classes with a
    smaller index as beating it.  This matches ``argmax`` at ``k=1`` and
    makes the result independent of sort-algorithm internals.

    >>> probs = np.array([[0.7, 0.2, 0.1],
    ...                   [0.1, 0.3, 0.6]])
    >>> top_k_accuracy(probs, np.array([0, 0]), k=1)
    0.5
    >>> top_k_accuracy(probs, np.array([0, 0]), k=3)
    1.0
    >>> top_k_accuracy(np.array([[0.5, 0.5]]), np.array([1]), k=1)
    0.0
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.intp)
    if probabilities.ndim != 2 or len(probabilities) != len(labels):
        raise ValueError("probabilities must be (n, classes) aligned with labels")
    if not 1 <= k <= probabilities.shape[1]:
        raise ValueError(f"k={k} out of range for {probabilities.shape[1]} classes")
    true_probs = np.take_along_axis(probabilities, labels[:, None], axis=1)
    beaten_by = (probabilities > true_probs).sum(axis=1)
    tied_lower = (
        (probabilities == true_probs)
        & (np.arange(probabilities.shape[1]) < labels[:, None])
    ).sum(axis=1)
    rank = beaten_by + tied_lower  # 0-based rank of the true label
    return float(np.mean(rank < k))
