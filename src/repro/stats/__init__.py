"""Statistics used by the evaluation: t-tests, summaries, top-k."""

from repro.stats.significance import TTestResult, compare_fold_accuracies, students_t_test, welch_t_test
from repro.stats.summary import MeanStd, pearson_r, top_k_accuracy

__all__ = [
    "TTestResult", "compare_fold_accuracies", "students_t_test",
    "welch_t_test", "MeanStd", "pearson_r", "top_k_accuracy",
]
