"""The single argument an experiment receives.

``RunContext`` carries the dataset scale, the base seed, the execution
engine (worker pool + stage timings) and the trace cache, so experiment
code never reaches for globals or environment variables.  Contexts are
cheap value objects — derive variants with :meth:`with_` the way
:class:`~repro.config.Scale` does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.config import DEFAULT, Scale
from repro.engine.engine import ExecutionEngine


@dataclass(frozen=True)
class RunContext:
    """Everything an :class:`~repro.experiments.base.Experiment` needs."""

    scale: Scale = DEFAULT
    seed: int = 0
    engine: ExecutionEngine = None  # filled by __post_init__ / default()

    def __post_init__(self) -> None:
        if self.engine is None:
            object.__setattr__(self, "engine", ExecutionEngine())
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    @property
    def cache(self):
        """The run's trace cache handle (None when caching is off)."""
        return self.engine.cache

    @classmethod
    def default(
        cls,
        scale: Scale = DEFAULT,
        seed: int = 0,
        jobs: Optional[int] = None,
        cache=None,
        retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ) -> "RunContext":
        """Context with a fresh engine (jobs from ``BIGGERFISH_JOBS``).

        The standard way for scripts and tools to build a context: the
        engine picks up the ``--jobs`` environment knob and the
        fault-tolerance knobs (``BIGGERFISH_RETRIES``,
        ``BIGGERFISH_TASK_TIMEOUT``); caching stays opt-in.
        """
        return cls(
            scale=scale,
            seed=seed,
            engine=ExecutionEngine(
                jobs, cache=cache, retries=retries, task_timeout=task_timeout
            ),
        )

    def with_(self, **changes) -> "RunContext":
        """Copy with fields replaced (``ctx.with_(scale=SMOKE)``)."""
        return replace(self, **changes)
