"""Per-run JSON manifest.

Each ``biggerfish`` invocation with ``--save-dir`` writes a
``run_manifest.json`` next to the rendered tables recording what was run
and how long every stage took: per-experiment wall clock, per-stage
engine timings (collect / train / open-world) with per-task min/mean/max
spreads, cache hit/miss/byte counters, worker count, seed and scale,
plus the observability summary (``"profile"``) when the run was
profiled.  Two consecutive manifests are how the cold-vs-warm cache
speedup is measured and reported.

A run that dies mid-experiment still leaves a manifest: the runner marks
it ``"status": "failed"`` with the exception summary and writes whatever
was recorded up to the crash, so failed runs are diagnosable from their
save directory alone.  Writes are atomic (temp file + rename) so a
killed run never leaves a torn manifest either.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.engine.engine import ExecutionEngine

#: File name written inside ``--save-dir``.
MANIFEST_FILENAME = "run_manifest.json"


@dataclass
class RunManifest:
    """Accumulates one CLI run's record, then serializes it."""

    scale: str
    seed: int
    jobs: int
    scale_params: Optional[Dict[str, Any]] = None
    created_unix: float = field(default_factory=time.time)
    experiments: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cache: Optional[Dict[str, Any]] = None
    package_version: str = ""
    #: "ok" | "failed"; failed manifests carry an ``error`` summary.
    status: str = "ok"
    error: Optional[Dict[str, Any]] = None
    #: Fault-tolerance totals (retries/timeouts/lost tasks/pool respawns)
    #: folded in by :meth:`finalize`; omitted when the run saw no faults.
    faults: Optional[Dict[str, int]] = None
    #: Observability summary from :func:`repro.obs.export.summarize`.
    profile: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.package_version:
            from repro import __version__

            self.package_version = __version__

    def add_experiment(
        self,
        experiment_id: str,
        elapsed_s: float,
        stages: Dict[str, Dict[str, float]],
    ) -> None:
        """Record one experiment's wall clock and its stage breakdown."""
        self.experiments[experiment_id] = {
            "elapsed_s": round(elapsed_s, 6),
            "stages": stages,
        }

    def finalize(self, engine: ExecutionEngine) -> None:
        """Fold in the engine's cache statistics and fault totals."""
        if engine.cache is not None:
            self.cache = {
                **engine.cache.info(),
                **engine.cache.stats.as_dict(),
            }
        fault_totals = engine.fault_snapshot()
        if any(fault_totals.values()):
            self.faults = fault_totals

    def mark_failed(self, experiment_id: str, error: BaseException) -> None:
        """Record a mid-run crash so the partial manifest is diagnosable."""
        from repro.engine.engine import TaskFailedError

        self.status = "failed"
        frame = traceback.extract_tb(error.__traceback__)
        location = f"{frame[-1].filename}:{frame[-1].lineno}" if frame else ""
        self.error = {
            "experiment": experiment_id,
            "type": type(error).__name__,
            "message": str(error),
            "where": location,
        }
        if isinstance(error, TaskFailedError):
            # The structured record pinpoints which task died, on which
            # attempt, with the remote traceback tail.
            self.error["task"] = error.task_error.as_dict()

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "schema": 1,
            "created_unix": round(self.created_unix, 3),
            "status": self.status,
            "scale": self.scale,
            "scale_params": self.scale_params,
            "seed": self.seed,
            "jobs": self.jobs,
            "package_version": self.package_version,
            "total_elapsed_s": round(
                sum(e["elapsed_s"] for e in self.experiments.values()), 6
            ),
            "experiments": self.experiments,
            "cache": self.cache,
        }
        if self.faults is not None:
            out["faults"] = self.faults
        if self.error is not None:
            out["error"] = self.error
        if self.profile is not None:
            out["profile"] = self.profile
        return out

    def write(self, directory: pathlib.Path) -> pathlib.Path:
        """Serialize to ``<directory>/run_manifest.json`` atomically.

        The JSON body is rendered and written to a temp file first, then
        renamed over the target — a crash mid-serialization leaves any
        previous manifest intact and no partial file behind.
        """
        path = pathlib.Path(directory) / MANIFEST_FILENAME
        body = json.dumps(self.as_dict(), indent=2, sort_keys=False) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-manifest-", suffix=".json", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path
