"""Per-run JSON manifest.

Each ``biggerfish`` invocation with ``--save-dir`` writes a
``run_manifest.json`` next to the rendered tables recording what was run
and how long every stage took: per-experiment wall clock, per-stage
engine timings (collect / train / open-world), cache hit/miss/byte
counters, worker count, seed and scale.  Two consecutive manifests are
how the cold-vs-warm cache speedup is measured and reported.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.engine.engine import ExecutionEngine

#: File name written inside ``--save-dir``.
MANIFEST_FILENAME = "run_manifest.json"


@dataclass
class RunManifest:
    """Accumulates one CLI run's record, then serializes it."""

    scale: str
    seed: int
    jobs: int
    scale_params: Optional[Dict[str, Any]] = None
    created_unix: float = field(default_factory=time.time)
    experiments: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cache: Optional[Dict[str, Any]] = None
    package_version: str = ""

    def __post_init__(self) -> None:
        if not self.package_version:
            from repro import __version__

            self.package_version = __version__

    def add_experiment(
        self,
        experiment_id: str,
        elapsed_s: float,
        stages: Dict[str, Dict[str, float]],
    ) -> None:
        """Record one experiment's wall clock and its stage breakdown."""
        self.experiments[experiment_id] = {
            "elapsed_s": round(elapsed_s, 6),
            "stages": stages,
        }

    def finalize(self, engine: ExecutionEngine) -> None:
        """Fold in the engine's cache statistics (if caching was on)."""
        if engine.cache is not None:
            self.cache = {
                **engine.cache.info(),
                **engine.cache.stats.as_dict(),
            }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "created_unix": round(self.created_unix, 3),
            "scale": self.scale,
            "scale_params": self.scale_params,
            "seed": self.seed,
            "jobs": self.jobs,
            "package_version": self.package_version,
            "total_elapsed_s": round(
                sum(e["elapsed_s"] for e in self.experiments.values()), 6
            ),
            "experiments": self.experiments,
            "cache": self.cache,
        }

    def write(self, directory: pathlib.Path) -> pathlib.Path:
        """Serialize to ``<directory>/run_manifest.json``; returns the path."""
        path = pathlib.Path(directory) / MANIFEST_FILENAME
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=False) + "\n")
        return path
