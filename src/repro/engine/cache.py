"""Content-addressed on-disk trace cache.

A trace is fully determined by the configuration that produced it:
machine, browser, attacker, timer, attacker period, site signature,
trace index, collector seed — plus the package version, since any code
change may change the numbers.  The cache hashes a canonical rendition
of all of that into a key and stores the finished
:class:`~repro.core.trace.Trace` as a compressed ``.npz``, so warm
re-runs of ``biggerfish all`` and repeated benchmark invocations skip
simulation entirely.

Anything that cannot be canonically described (an exotic noise injector,
say) raises :class:`Uncacheable` during key construction and the
collector silently bypasses the cache for that call — correctness never
depends on cacheability.

The cache directory defaults to ``~/.cache/biggerfish/traces`` and is
overridable with ``BIGGERFISH_CACHE_DIR``; total size is capped (default
2 GiB, ``BIGGERFISH_CACHE_MAX_BYTES``) with least-recently-used eviction
(hits refresh an entry's mtime; the entry just written is never evicted).
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.obs import metrics as obs_metrics

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV_VAR = "BIGGERFISH_CACHE_DIR"
#: Environment variable overriding the size cap (bytes).
CACHE_MAX_BYTES_ENV_VAR = "BIGGERFISH_CACHE_MAX_BYTES"
#: Default size cap.
DEFAULT_MAX_BYTES = 2 * 1024**3
#: Bump to invalidate every existing entry on disk-format changes.
SCHEMA_VERSION = 1


class Uncacheable(TypeError):
    """Raised when an object cannot be canonically tokenized."""


def stable_token(obj: Any) -> str:
    """Canonical string for any cache-key component.

    Recursively handles primitives, enums, numpy arrays, dataclasses and
    containers; objects may opt in by exposing ``cache_token() -> str``.
    The token is stable across processes and sessions (no ``id()``, no
    ``hash()``), which is what makes the cache content-addressed.
    """
    if obj is None:
        return "none"
    if isinstance(obj, bool):
        return f"bool:{obj}"
    if isinstance(obj, int):
        return f"int:{obj}"
    if isinstance(obj, float):
        return f"float:{obj!r}"
    if isinstance(obj, str):
        return f"str:{obj}"
    if isinstance(obj, bytes):
        return f"bytes:{hashlib.sha256(obj).hexdigest()}"
    if isinstance(obj, enum.Enum):
        return f"enum:{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        digest = hashlib.sha256(data.tobytes()).hexdigest()
        return f"ndarray:{data.dtype}:{data.shape}:{digest}"
    if isinstance(obj, np.generic):
        return stable_token(obj.item())
    token_method = getattr(obj, "cache_token", None)
    if callable(token_method):
        return f"token:{type(obj).__qualname__}:{token_method()}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        parts = ",".join(
            f"{f.name}={stable_token(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"dc:{type(obj).__qualname__}({parts})"
    if isinstance(obj, (tuple, list)):
        return f"seq:[{','.join(stable_token(item) for item in obj)}]"
    if isinstance(obj, dict):
        try:
            entries = sorted(obj.items())
        except TypeError:
            # Mixed-type keys have no canonical order; surfacing the raw
            # TypeError would defeat the collector's "silently bypass the
            # cache" contract, which catches only Uncacheable.
            kinds = ", ".join(sorted({type(k).__name__ for k in obj}))
            raise Uncacheable(
                f"cannot canonically order dict keys of mixed types ({kinds})"
            ) from None
        parts = ",".join(
            f"{stable_token(k)}:{stable_token(v)}" for k, v in entries
        )
        return f"map:{{{parts}}}"
    raise Uncacheable(
        f"cannot build a cache token for {type(obj).__qualname__}; "
        "add a cache_token() method or make it a dataclass"
    )


def cache_key(components: Dict[str, Any]) -> str:
    """Hash named key components into a hex digest."""
    body = stable_token({"schema": SCHEMA_VERSION, **components})
    return hashlib.sha256(body.encode()).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """Cache location: ``BIGGERFISH_CACHE_DIR`` or ``~/.cache/biggerfish``."""
    override = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    if override:
        return pathlib.Path(override).expanduser()
    return pathlib.Path("~/.cache/biggerfish/traces").expanduser()


def _default_max_bytes() -> int:
    raw = os.environ.get(CACHE_MAX_BYTES_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{CACHE_MAX_BYTES_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"cache size cap must be positive, got {value}")
    return value


@dataclass
class CacheStats:
    """Counters for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def merge(self, other: "CacheStats") -> None:
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


class TraceCache:
    """On-disk store of finished traces, addressed by configuration hash.

    Entries are sharded two hex characters deep (``ab/abcdef....npz``) to
    keep directories small at paper scale (100 sites x 100 traces x many
    configurations).  Writes are atomic (temp file + rename) so a killed
    run never leaves a torn entry.
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        max_bytes: Optional[int] = None,
    ):
        self.path = pathlib.Path(path) if path is not None else default_cache_dir()
        self.max_bytes = int(max_bytes) if max_bytes is not None else _default_max_bytes()
        if self.max_bytes <= 0:
            raise ValueError(f"cache size cap must be positive, got {self.max_bytes}")
        self.stats = CacheStats()
        self._size_bytes: Optional[int] = None  # lazy directory scan

    def __repr__(self) -> str:
        return f"TraceCache({str(self.path)!r}, max_bytes={self.max_bytes})"

    # -- internals ------------------------------------------------------

    def _entry_path(self, key: str) -> pathlib.Path:
        return self.path / key[:2] / f"{key}.npz"

    def _entries(self) -> list[pathlib.Path]:
        if not self.path.exists():
            return []
        return sorted(self.path.glob("*/*.npz"))

    def _scan_size(self) -> int:
        if self._size_bytes is None:
            self._size_bytes = sum(p.stat().st_size for p in self._entries())
        return self._size_bytes

    # -- get / put ------------------------------------------------------

    def get(self, key: str):
        """Load the trace stored under ``key``, or None on a miss."""
        from repro.core.trace import Trace, TraceSpec

        entry = self._entry_path(key)
        try:
            with np.load(entry, allow_pickle=False) as archive:
                trace = Trace(
                    spec=TraceSpec(
                        horizon_ns=int(archive["horizon_ns"]),
                        period_ns=int(archive["period_ns"]),
                    ),
                    observed_starts=archive["observed_starts"],
                    counters=archive["counters"],
                    label=str(archive["label"]),
                    attacker=str(archive["attacker"]),
                )
        except (FileNotFoundError, OSError, KeyError, ValueError):
            # Missing, torn or stale-format entries all count as misses;
            # the caller re-simulates and overwrites.
            self.stats.misses += 1
            obs_metrics.counter("engine.cache.misses").inc()
            return None
        # Refresh mtime on every hit so eviction order is LRU, not FIFO —
        # without this the hottest entries are the first to be evicted.
        with contextlib.suppress(OSError):
            os.utime(entry)
        self.stats.hits += 1
        self.stats.bytes_read += entry.stat().st_size
        obs_metrics.counter("engine.cache.hits").inc()
        obs_metrics.counter("engine.cache.bytes_read").inc(entry.stat().st_size)
        return trace

    def put(self, key: str, trace) -> None:
        """Store a finished trace under ``key`` (atomic, then evict)."""
        entry = self._entry_path(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        old_size = 0
        with contextlib.suppress(OSError):
            old_size = entry.stat().st_size
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".npz", dir=entry.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle,
                    observed_starts=trace.observed_starts,
                    counters=trace.counters,
                    horizon_ns=np.int64(trace.spec.horizon_ns),
                    period_ns=np.int64(trace.spec.period_ns),
                    label=np.str_(trace.label),
                    attacker=np.str_(trace.attacker),
                )
            os.replace(tmp_name, entry)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        written = entry.stat().st_size
        self.stats.puts += 1
        self.stats.bytes_written += written
        obs_metrics.counter("engine.cache.puts").inc()
        obs_metrics.counter("engine.cache.bytes_written").inc(written)
        if self._size_bytes is None:
            # First put through a cold handle: the directory scan runs
            # after os.replace put the entry in place, so it already
            # counts the new bytes — adding `written` on top would
            # double-count every fresh entry and trigger premature
            # eviction.
            self._scan_size()
        else:
            self._size_bytes += written - old_size
        if self._size_bytes > self.max_bytes:
            self._evict_to_cap(protect=entry)

    def _evict_to_cap(self, protect: Optional[pathlib.Path] = None) -> None:
        """Drop least-recently-used entries until under the size cap.

        ``get`` refreshes mtime on every hit, so mtime order is LRU
        order.  ``protect`` — the entry that was just written — is never
        evicted: a put into a full cache must not delete the very trace
        its caller is about to rely on.
        """
        entries = [(p.stat().st_mtime, p.stat().st_size, p) for p in self._entries()]
        entries.sort()
        size = sum(s for _, s, _ in entries)
        for _, entry_size, entry in entries:
            if size <= self.max_bytes:
                break
            if protect is not None and entry == protect:
                continue
            with contextlib.suppress(OSError):
                entry.unlink()
                size -= entry_size
                self.stats.evictions += 1
                obs_metrics.counter("engine.cache.evictions").inc()
        self._size_bytes = size

    # -- maintenance ----------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """Entry count, byte totals and location (the ``cache info`` CLI)."""
        entries = self._entries()
        size = sum(p.stat().st_size for p in entries)
        self._size_bytes = size
        return {
            "path": str(self.path),
            "entries": len(entries),
            "size_bytes": size,
            "max_bytes": self.max_bytes,
        }

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for entry in self._entries():
            with contextlib.suppress(OSError):
                entry.unlink()
                removed += 1
        self._size_bytes = 0
        return removed
