"""The work scheduler behind parallel experiment execution.

``ExecutionEngine.map`` is deliberately the *only* parallel primitive:
callers pre-compute one task description per unit of work (a (site,
trace-index) pair, a CV fold), each task derives its own RNG stream from
the task description alone, and the engine returns results in input
order.  Under those rules a parallel run is bit-identical to a serial
one — the scheduler never influences the numbers, only the wall clock.

Worker processes are spawned per ``map`` call via
``concurrent.futures.ProcessPoolExecutor``; tasks and their arguments
must therefore be picklable module-level callables.  Objects holding an
engine handle must drop it when pickled (see
``TraceCollector.__getstate__``) so handles never cross the process
boundary.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, TypeVar

from repro import obs

#: Environment variable overriding the default worker count.
JOBS_ENV_VAR = "BIGGERFISH_JOBS"

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class _TimedTask:
    """Wraps a task function so workers report their own elapsed time.

    ``engine.map`` used to time only the ``map()`` call, which hides the
    per-task distribution — the slowest worker was invisible.  The
    wrapper times each task where it runs and returns ``(result,
    elapsed_s)``; the parent unpacks results and folds the timings into
    the stage statistics.  It also flushes the worker's pending metric
    deltas after every task, which is what gets worker-side observability
    data onto disk even though pool teardown skips ``atexit``.
    """

    fn: Callable
    stage: Optional[str]

    def __call__(self, item):
        started = time.perf_counter()
        with obs.span("engine.task", stage=self.stage or ""):
            result = self.fn(item)
        elapsed = time.perf_counter() - started
        obs.flush_metrics()
        return result, elapsed


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count from an explicit value, ``BIGGERFISH_JOBS``, or 1.

    The default is *serial*: parallelism is opt-in via ``--jobs`` or the
    environment, mirroring the CLI contract.
    """
    if jobs is not None:
        value = int(jobs)
    else:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        try:
            value = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if value < 1:
        raise ValueError(f"jobs must be >= 1, got {value}")
    return value


class ExecutionEngine:
    """Fans independent tasks out over worker processes.

    ``jobs=1`` (the default) executes tasks inline — no processes, no
    pickling — so library users pay nothing unless they opt in.  The
    engine also carries the run's :class:`~repro.engine.cache.TraceCache`
    handle (``cache=None`` disables caching) and accumulates per-stage
    wall-clock timings for the run manifest.
    """

    def __init__(self, jobs: Optional[int] = None, cache=None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        #: Stage name -> cumulative wall-clock seconds spent in map().
        self.stage_seconds: Dict[str, float] = {}
        #: Stage name -> cumulative task count.
        self.stage_tasks: Dict[str, int] = {}
        #: Stage name -> per-task elapsed statistics (min/sum/max/count).
        self.stage_task_stats: Dict[str, Dict[str, float]] = {}

    def __repr__(self) -> str:
        cache = "on" if self.cache is not None else "off"
        return f"ExecutionEngine(jobs={self.jobs}, cache={cache})"

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        stage: Optional[str] = None,
    ) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        With ``jobs > 1`` and more than one item, work is distributed
        over a fresh process pool; otherwise it runs inline.  ``fn`` and
        the items must be picklable for the parallel path.
        """
        items = list(items)
        task = _TimedTask(fn, stage)
        started = time.perf_counter()
        try:
            with obs.span(
                "engine.map", stage=stage or "", tasks=len(items), jobs=self.jobs
            ):
                if self.jobs == 1 or len(items) <= 1:
                    outcomes = [task(item) for item in items]
                else:
                    outcomes = self._map_parallel(task, items)
        except BaseException:
            if stage is not None:
                self.record(stage, time.perf_counter() - started, len(items))
            raise
        if stage is not None:
            self.record(
                stage,
                time.perf_counter() - started,
                len(items),
                task_seconds=[elapsed for _, elapsed in outcomes],
            )
        return [result for result, _ in outcomes]

    def _map_parallel(self, fn: Callable[[T], R], items: list[T]) -> list[R]:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.jobs, len(items))
        chunksize = max(1, len(items) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))

    # ------------------------------------------------------------------

    def record(
        self,
        stage: str,
        seconds: float,
        tasks: int = 0,
        task_seconds: Optional[Sequence[float]] = None,
    ) -> None:
        """Accumulate wall-clock time (and task count) under a stage name.

        ``task_seconds``, when given, folds per-task elapsed times into
        the stage's min/mean/max spread so the slowest worker is visible
        in the manifest.
        """
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        self.stage_tasks[stage] = self.stage_tasks.get(stage, 0) + tasks
        if task_seconds:
            stats = self.stage_task_stats.setdefault(
                stage, {"min": float("inf"), "max": 0.0, "sum": 0.0, "count": 0}
            )
            stats["min"] = min(stats["min"], min(task_seconds))
            stats["max"] = max(stats["max"], max(task_seconds))
            stats["sum"] += sum(task_seconds)
            stats["count"] += len(task_seconds)

    def timings_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of the accumulated stage timings (for manifests)."""
        snapshot = {}
        for stage in sorted(self.stage_seconds):
            entry = {
                "seconds": round(self.stage_seconds[stage], 6),
                "tasks": self.stage_tasks.get(stage, 0),
            }
            stats = self.stage_task_stats.get(stage)
            if stats and stats["count"]:
                entry["task_seconds"] = {
                    "min": round(stats["min"], 6),
                    "mean": round(stats["sum"] / stats["count"], 6),
                    "max": round(stats["max"], 6),
                }
            snapshot[stage] = entry
        return snapshot

    def reset_timings(self) -> None:
        self.stage_seconds.clear()
        self.stage_tasks.clear()
        self.stage_task_stats.clear()
