"""The work scheduler behind parallel experiment execution.

``ExecutionEngine.map`` is deliberately the *only* parallel primitive:
callers pre-compute one task description per unit of work (a (site,
trace-index) pair, a CV fold), each task derives its own RNG stream from
the task description alone, and the engine returns results in input
order.  Under those rules a parallel run is bit-identical to a serial
one — the scheduler never influences the numbers, only the wall clock.

Because every task is a pure function of its description, the scheduler
is also free to *re-execute* tasks: a retry is bit-identical to the
first attempt.  Dispatch is future-based (one ``submit`` per task, not a
fire-and-forget ``pool.map``), which is what makes fault tolerance
possible:

* a task that raises is retried with capped exponential backoff
  (``retries`` / ``BIGGERFISH_RETRIES``, deterministic — no jitter);
* a task that outlives the per-task timeout (``task_timeout`` /
  ``BIGGERFISH_TASK_TIMEOUT``) is abandoned and retried; once every
  worker may be wedged on an abandoned task the pool is respawned;
* a dead worker (``BrokenProcessPool``) loses only the unfinished tasks
  of its round: finished futures are salvaged, the pool is respawned
  once, and if it breaks again the remaining tasks run inline in the
  parent;
* every failed attempt is recorded as a structured :class:`TaskError`
  (stage, task index, attempt, kind, remote traceback) surfaced through
  ``timings_snapshot``/``fault_snapshot`` into the run manifest, and a
  task that exhausts its budget raises :class:`TaskFailedError`.

Worker processes are spawned per ``map`` call via
``concurrent.futures.ProcessPoolExecutor``; tasks and their arguments
must therefore be picklable module-level callables.  Objects holding an
engine handle must drop it when pickled (see
``TraceCollector.__getstate__``) so handles never cross the process
boundary.  The test-only :mod:`repro.engine.faults` hook sabotages tasks
at the top of ``_TimedTask.__call__`` so all of the above is exercised
in CI.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro import obs
from repro.engine import faults as engine_faults

#: Environment variable overriding the default worker count.
JOBS_ENV_VAR = "BIGGERFISH_JOBS"
#: Environment variable overriding the per-task retry budget.
RETRIES_ENV_VAR = "BIGGERFISH_RETRIES"
#: Environment variable overriding the per-task timeout (seconds).
TASK_TIMEOUT_ENV_VAR = "BIGGERFISH_TASK_TIMEOUT"

#: Re-execution attempts allowed per task after the first failure.
DEFAULT_RETRIES = 2
#: Base of the deterministic exponential backoff between attempts.
DEFAULT_BACKOFF_S = 0.05
#: Cap on a single backoff sleep.
DEFAULT_BACKOFF_CAP_S = 1.0
#: Structured task errors kept per stage (totals keep counting past it).
MAX_RECORDED_ERRORS_PER_STAGE = 100

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class TaskError:
    """One failed attempt at one task, as recorded in the manifest."""

    stage: str
    index: int
    attempt: int
    #: "exception" | "timeout" | "worker-lost"
    kind: str
    error_type: str
    message: str
    #: Remote (or local) traceback tail, best effort.
    where: str = ""

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget; carries the final TaskError."""

    def __init__(self, task_error: TaskError):
        self.task_error = task_error
        super().__init__(
            f"task {task_error.index} in stage "
            f"{task_error.stage or '<unnamed>'} failed ({task_error.kind}) "
            f"after {task_error.attempt + 1} attempt(s): "
            f"{task_error.error_type}: {task_error.message}"
        )


@dataclass(frozen=True)
class _TimedTask:
    """Wraps a task function so workers report their own elapsed time.

    ``engine.map`` used to time only the ``map()`` call, which hides the
    per-task distribution — the slowest worker was invisible.  The
    wrapper times each task where it runs and returns ``(result,
    elapsed_s)``; the parent unpacks results and folds the timings into
    the stage statistics.  It also flushes the worker's pending metric
    deltas after every task, which is what gets worker-side observability
    data onto disk even though pool teardown skips ``atexit``.

    ``index``/``attempt`` identify the attempt for the fault-injection
    hook (consulted before the task function runs, so a sabotaged
    attempt has no side effects to double on retry).
    """

    fn: Callable
    stage: Optional[str]
    index: int = 0
    attempt: int = 0

    def __call__(self, item):
        engine_faults.maybe_inject(self.stage or "", self.index, self.attempt)
        started = time.perf_counter()
        with obs.span("engine.task", stage=self.stage or ""):
            result = self.fn(item)
        elapsed = time.perf_counter() - started
        obs.flush_metrics()
        return result, elapsed


@dataclass
class _MapProgress:
    """Mutable per-``map``-call record of what actually finished.

    Shared with the dispatch helpers so the exception path can record
    *completed* work — a failed run's manifest must not claim the whole
    stage ran.
    """

    completed: int = 0
    task_seconds: List[float] = field(default_factory=list)

    def note(self, elapsed: float) -> None:
        self.completed += 1
        self.task_seconds.append(elapsed)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count from an explicit value, ``BIGGERFISH_JOBS``, or 1.

    The default is *serial*: parallelism is opt-in via ``--jobs`` or the
    environment, mirroring the CLI contract.
    """
    if jobs is not None:
        value = int(jobs)
    else:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        try:
            value = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if value < 1:
        raise ValueError(f"jobs must be >= 1, got {value}")
    return value


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retry budget from an explicit value, ``BIGGERFISH_RETRIES``, or 2."""
    if retries is not None:
        value = int(retries)
    else:
        raw = os.environ.get(RETRIES_ENV_VAR, "").strip()
        try:
            value = int(raw) if raw else DEFAULT_RETRIES
        except ValueError:
            raise ValueError(
                f"{RETRIES_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if value < 0:
        raise ValueError(f"retries must be >= 0, got {value}")
    return value


def resolve_task_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Per-task timeout from an explicit value or ``BIGGERFISH_TASK_TIMEOUT``.

    None (the default) disables the timeout.  The timeout is measured
    from when the scheduler starts waiting on a task, which upper-bounds
    the task's own runtime.
    """
    if timeout is None:
        raw = os.environ.get(TASK_TIMEOUT_ENV_VAR, "").strip()
        if not raw:
            return None
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"{TASK_TIMEOUT_ENV_VAR} must be a number of seconds, got {raw!r}"
            ) from None
    value = float(timeout)
    if value <= 0:
        raise ValueError(f"task timeout must be positive, got {value}")
    return value


class ExecutionEngine:
    """Fans independent tasks out over worker processes, surviving faults.

    ``jobs=1`` (the default) executes tasks inline — no processes, no
    pickling — so library users pay nothing unless they opt in.  The
    engine also carries the run's :class:`~repro.engine.cache.TraceCache`
    handle (``cache=None`` disables caching) and accumulates per-stage
    wall-clock timings plus fault counters (retries, timeouts, lost
    tasks, structured errors) for the run manifest.

    Retries are deterministic: tasks are pure functions of their
    descriptions, so a re-executed task is bit-identical, and backoff is
    capped exponential with no jitter.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache=None,
        retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
        backoff_s: float = DEFAULT_BACKOFF_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.retries = resolve_retries(retries)
        self.task_timeout = resolve_task_timeout(task_timeout)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        #: Stage name -> cumulative wall-clock seconds spent in map().
        self.stage_seconds: Dict[str, float] = {}
        #: Stage name -> cumulative *completed* task count.
        self.stage_tasks: Dict[str, int] = {}
        #: Stage name -> per-task elapsed statistics (min/sum/max/count).
        self.stage_task_stats: Dict[str, Dict[str, float]] = {}
        #: Stage name -> re-executed attempts.
        self.stage_retries: Dict[str, int] = {}
        #: Stage name -> attempts abandoned past the per-task timeout.
        self.stage_timeouts: Dict[str, int] = {}
        #: Stage name -> attempts lost to dead worker processes.
        self.stage_tasks_lost: Dict[str, int] = {}
        #: Stage name -> structured records of every failed attempt.
        self.stage_errors: Dict[str, List[TaskError]] = {}
        #: Run-lifetime fault totals (survive ``reset_timings``).
        self.fault_totals: Dict[str, int] = {
            "retries": 0,
            "timeouts": 0,
            "tasks_lost": 0,
            "pool_respawns": 0,
            "task_errors": 0,
        }

    def __repr__(self) -> str:
        cache = "on" if self.cache is not None else "off"
        return (
            f"ExecutionEngine(jobs={self.jobs}, cache={cache}, "
            f"retries={self.retries}, task_timeout={self.task_timeout})"
        )

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        stage: Optional[str] = None,
    ) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        With ``jobs > 1`` and more than one item, work is distributed
        over a fresh process pool; otherwise it runs inline.  ``fn`` and
        the items must be picklable for the parallel path.  Failed
        attempts are retried up to ``self.retries`` times; a task that
        exhausts the budget raises :class:`TaskFailedError` with the
        final :class:`TaskError` attached.
        """
        items = list(items)
        task = _TimedTask(fn, stage)
        progress = _MapProgress()
        started = time.perf_counter()
        try:
            with obs.span(
                "engine.map", stage=stage or "", tasks=len(items), jobs=self.jobs
            ):
                if self.jobs == 1 or len(items) <= 1:
                    outcomes = self._map_inline(task, items, progress)
                else:
                    outcomes = self._map_parallel(task, items, progress)
        except BaseException:
            # A failed stage records only the work that actually
            # finished — precisely known because dispatch is per-task.
            if stage is not None:
                self.record(
                    stage,
                    time.perf_counter() - started,
                    progress.completed,
                    task_seconds=progress.task_seconds or None,
                )
            raise
        if stage is not None:
            self.record(
                stage,
                time.perf_counter() - started,
                len(items),
                task_seconds=[elapsed for _, elapsed in outcomes],
            )
        return [result for result, _ in outcomes]

    # -- inline dispatch ------------------------------------------------

    def _map_inline(
        self, task: _TimedTask, items: list, progress: _MapProgress
    ) -> list:
        return [
            self._run_inline(task, item, index, progress)
            for index, item in enumerate(items)
        ]

    def _run_inline(
        self,
        task: _TimedTask,
        item,
        index: int,
        progress: _MapProgress,
        first_attempt: int = 0,
    ):
        """One task in the parent process, with the same retry contract.

        Also the terminal fallback when the worker pool keeps dying:
        ``first_attempt`` carries over the attempts already burned in
        workers so the budget is shared across execution modes.
        """
        attempt = first_attempt
        while True:
            try:
                outcome = dataclasses.replace(task, index=index, attempt=attempt)(item)
            except Exception as error:
                record = self._record_error(task.stage, index, attempt, "exception", error)
                if attempt >= self.retries:
                    raise TaskFailedError(record) from error
                self._record_retry(task.stage, attempt)
                attempt += 1
                continue
            progress.note(outcome[1])
            return outcome

    # -- parallel dispatch ----------------------------------------------

    def _map_parallel(
        self, task: _TimedTask, items: list, progress: _MapProgress
    ) -> list:
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FuturesTimeout

        workers = min(self.jobs, len(items))
        outcomes: list = [None] * len(items)
        done = [False] * len(items)
        attempts = [0] * len(items)
        pending = list(range(len(items)))
        pool = ProcessPoolExecutor(max_workers=workers)
        respawns_left = 1  # broken-pool budget; then fall back inline
        abandoned = 0  # futures left running past their timeout
        try:
            while pending:
                futures = {}
                pool_broken = False
                for i in pending:
                    try:
                        futures[i] = pool.submit(
                            dataclasses.replace(task, index=i, attempt=attempts[i]),
                            items[i],
                        )
                    except BrokenExecutor:
                        pool_broken = True
                        break
                retried: set = set()
                wedged = False
                for i in pending:
                    future = futures.get(i)
                    if future is None or pool_broken or wedged:
                        continue  # resolved by the sweeps below
                    try:
                        outcome = future.result(timeout=self.task_timeout)
                    except FuturesTimeout:
                        abandoned += 1
                        record = self._record_error(
                            task.stage,
                            i,
                            attempts[i],
                            "timeout",
                            TimeoutError(
                                f"task exceeded the {self.task_timeout}s task timeout"
                            ),
                        )
                        self._account(self.stage_timeouts, "timeouts", task.stage)
                        obs.counter("engine.task_timeouts").inc()
                        if attempts[i] >= self.retries:
                            raise TaskFailedError(record) from None
                        # No backoff: we already waited out the timeout.
                        self._record_retry(task.stage, attempts[i], backoff=False)
                        attempts[i] += 1
                        retried.add(i)
                        if abandoned >= workers:
                            # Every worker may be wedged on an abandoned
                            # task; stop charging innocent queued tasks
                            # with spurious timeouts and respawn now.
                            wedged = True
                    except BrokenExecutor:
                        pool_broken = True
                    except Exception as error:
                        record = self._record_error(
                            task.stage, i, attempts[i], "exception", error
                        )
                        if attempts[i] >= self.retries:
                            raise TaskFailedError(record) from error
                        self._record_retry(task.stage, attempts[i])
                        attempts[i] += 1
                        retried.add(i)
                    else:
                        outcomes[i] = outcome
                        done[i] = True
                        progress.note(outcome[1])
                if pool_broken:
                    retried |= self._sweep_broken_round(
                        task, futures, pending, retried, done, attempts, outcomes, progress
                    )
                    pool.shutdown(wait=False, cancel_futures=True)
                    abandoned = 0
                    if respawns_left > 0:
                        respawns_left -= 1
                        self.fault_totals["pool_respawns"] += 1
                        obs.counter("engine.pool_respawns").inc()
                        pool = ProcessPoolExecutor(max_workers=workers)
                    else:
                        # The pool died twice: finish inline, sharing the
                        # per-task attempt budget already burned.
                        for i in sorted(retried):
                            outcomes[i] = self._run_inline(
                                task, items[i], i, progress, first_attempt=attempts[i]
                            )
                            done[i] = True
                        retried = set()
                elif wedged:
                    # Salvage what finished, requeue the rest without a
                    # retry penalty (they never got a worker), and start
                    # a fresh pool so the retries can actually schedule.
                    for i in pending:
                        if done[i] or i in retried:
                            continue
                        future = futures.get(i)
                        outcome = None
                        if (
                            future is not None
                            and future.done()
                            and not future.cancelled()
                        ):
                            try:
                                outcome = future.result(timeout=0)
                            except BrokenExecutor:
                                outcome = None
                            except Exception as error:
                                record = self._record_error(
                                    task.stage, i, attempts[i], "exception", error
                                )
                                if attempts[i] >= self.retries:
                                    raise TaskFailedError(record) from error
                                self._record_retry(task.stage, attempts[i])
                                attempts[i] += 1
                                retried.add(i)
                                continue
                        if outcome is not None:
                            outcomes[i] = outcome
                            done[i] = True
                            progress.note(outcome[1])
                        else:
                            retried.add(i)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=workers)
                    self.fault_totals["pool_respawns"] += 1
                    obs.counter("engine.pool_respawns").inc()
                    abandoned = 0
                pending = sorted(retried)
        finally:
            # Abandoned (timed-out) tasks may still be running; waiting
            # on them would stall the run for exactly the hang we just
            # routed around.
            pool.shutdown(wait=abandoned == 0, cancel_futures=True)
        return outcomes

    def _sweep_broken_round(
        self,
        task: _TimedTask,
        futures: dict,
        pending: list,
        already_retried: set,
        done: list,
        attempts: list,
        outcomes: list,
        progress: _MapProgress,
    ) -> set:
        """Triage a broken pool's round: salvage, classify, requeue.

        Futures that finished before the pool died keep their results;
        ones that raised a task error burn a retry as usual; everything
        else was lost with its worker and is re-executed without having
        produced side effects twice (tasks are pure).  Returns the set
        of task indices to re-run.
        """
        from concurrent.futures import BrokenExecutor

        retried: set = set()
        for i in pending:
            if done[i] or i in already_retried:
                continue
            future = futures.get(i)
            if future is None:  # never submitted; retry without penalty
                retried.add(i)
                continue
            outcome = None
            error: Optional[Exception] = None
            if future.done() and not future.cancelled():
                try:
                    outcome = future.result(timeout=0)
                except BrokenExecutor:
                    pass  # lost with its worker
                except Exception as exc:
                    error = exc
            if outcome is not None:
                outcomes[i] = outcome
                done[i] = True
                progress.note(outcome[1])
                continue
            if error is not None:
                kind: str = "exception"
                cause: Exception = error
            else:
                kind = "worker-lost"
                cause = RuntimeError("worker process died before the task finished")
                self._account(self.stage_tasks_lost, "tasks_lost", task.stage)
                obs.counter("engine.tasks_lost").inc()
            record = self._record_error(task.stage, i, attempts[i], kind, cause)
            if attempts[i] >= self.retries:
                raise TaskFailedError(record) from error
            self._record_retry(task.stage, attempts[i], backoff=False)
            attempts[i] += 1
            retried.add(i)
        return retried

    # -- fault accounting -----------------------------------------------

    def _account(self, per_stage: Dict[str, int], total_key: str, stage: Optional[str]) -> None:
        key = stage or ""
        per_stage[key] = per_stage.get(key, 0) + 1
        self.fault_totals[total_key] += 1

    def _record_retry(
        self, stage: Optional[str], attempt: int, backoff: bool = True
    ) -> None:
        self._account(self.stage_retries, "retries", stage)
        obs.counter("engine.retries").inc()
        if backoff and self.backoff_s > 0:
            time.sleep(min(self.backoff_cap_s, self.backoff_s * (2**attempt)))

    def _record_error(
        self,
        stage: Optional[str],
        index: int,
        attempt: int,
        kind: str,
        error: BaseException,
    ) -> TaskError:
        record = TaskError(
            stage=stage or "",
            index=index,
            attempt=attempt,
            kind=kind,
            error_type=type(error).__name__,
            message=str(error),
            where=_error_where(error),
        )
        errors = self.stage_errors.setdefault(stage or "", [])
        if len(errors) < MAX_RECORDED_ERRORS_PER_STAGE:
            errors.append(record)
        self.fault_totals["task_errors"] += 1
        return record

    def fault_snapshot(self) -> Dict[str, int]:
        """Run-lifetime fault totals (for the manifest's ``faults`` block)."""
        return dict(self.fault_totals)

    # ------------------------------------------------------------------

    def record(
        self,
        stage: str,
        seconds: float,
        tasks: int = 0,
        task_seconds: Optional[Sequence[float]] = None,
    ) -> None:
        """Accumulate wall-clock time (and task count) under a stage name.

        ``task_seconds``, when given, folds per-task elapsed times into
        the stage's min/mean/max spread so the slowest worker is visible
        in the manifest.
        """
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        self.stage_tasks[stage] = self.stage_tasks.get(stage, 0) + tasks
        if task_seconds:
            stats = self.stage_task_stats.setdefault(
                stage, {"min": float("inf"), "max": 0.0, "sum": 0.0, "count": 0}
            )
            stats["min"] = min(stats["min"], min(task_seconds))
            stats["max"] = max(stats["max"], max(task_seconds))
            stats["sum"] += sum(task_seconds)
            stats["count"] += len(task_seconds)

    def timings_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of the accumulated stage timings (for manifests).

        Stages that saw faults additionally carry ``retries`` /
        ``timeouts`` / ``tasks_lost`` counters and the structured
        ``task_errors`` records.
        """
        snapshot = {}
        for stage in sorted(self.stage_seconds):
            entry = {
                "seconds": round(self.stage_seconds[stage], 6),
                "tasks": self.stage_tasks.get(stage, 0),
            }
            stats = self.stage_task_stats.get(stage)
            if stats and stats["count"]:
                entry["task_seconds"] = {
                    "min": round(stats["min"], 6),
                    "mean": round(stats["sum"] / stats["count"], 6),
                    "max": round(stats["max"], 6),
                }
            for label, per_stage in (
                ("retries", self.stage_retries),
                ("timeouts", self.stage_timeouts),
                ("tasks_lost", self.stage_tasks_lost),
            ):
                if per_stage.get(stage):
                    entry[label] = per_stage[stage]
            if self.stage_errors.get(stage):
                entry["task_errors"] = [
                    record.as_dict() for record in self.stage_errors[stage]
                ]
            snapshot[stage] = entry
        return snapshot

    def reset_timings(self) -> None:
        """Clear per-stage records; run-lifetime fault totals persist."""
        self.stage_seconds.clear()
        self.stage_tasks.clear()
        self.stage_task_stats.clear()
        self.stage_retries.clear()
        self.stage_timeouts.clear()
        self.stage_tasks_lost.clear()
        self.stage_errors.clear()


def _error_where(error: BaseException) -> str:
    """Best-effort location/traceback tail for a task error.

    Exceptions unpickled from workers carry the remote traceback as a
    ``_RemoteTraceback`` cause; locally raised ones still hold a real
    ``__traceback__``.
    """
    cause = getattr(error, "__cause__", None)
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        lines = [line for line in str(cause).strip().splitlines() if line.strip()]
        return "\n".join(lines[-4:])
    if error.__traceback__ is not None:
        frame = traceback_module.extract_tb(error.__traceback__)[-1]
        return f"{frame.filename}:{frame.lineno}"
    return ""
