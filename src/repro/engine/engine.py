"""The work scheduler behind parallel experiment execution.

``ExecutionEngine.map`` is deliberately the *only* parallel primitive:
callers pre-compute one task description per unit of work (a (site,
trace-index) pair, a CV fold), each task derives its own RNG stream from
the task description alone, and the engine returns results in input
order.  Under those rules a parallel run is bit-identical to a serial
one — the scheduler never influences the numbers, only the wall clock.

Worker processes are spawned per ``map`` call via
``concurrent.futures.ProcessPoolExecutor``; tasks and their arguments
must therefore be picklable module-level callables.  Objects holding an
engine handle must drop it when pickled (see
``TraceCollector.__getstate__``) so handles never cross the process
boundary.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional, Sequence, TypeVar

#: Environment variable overriding the default worker count.
JOBS_ENV_VAR = "BIGGERFISH_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count from an explicit value, ``BIGGERFISH_JOBS``, or 1.

    The default is *serial*: parallelism is opt-in via ``--jobs`` or the
    environment, mirroring the CLI contract.
    """
    if jobs is not None:
        value = int(jobs)
    else:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        try:
            value = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if value < 1:
        raise ValueError(f"jobs must be >= 1, got {value}")
    return value


class ExecutionEngine:
    """Fans independent tasks out over worker processes.

    ``jobs=1`` (the default) executes tasks inline — no processes, no
    pickling — so library users pay nothing unless they opt in.  The
    engine also carries the run's :class:`~repro.engine.cache.TraceCache`
    handle (``cache=None`` disables caching) and accumulates per-stage
    wall-clock timings for the run manifest.
    """

    def __init__(self, jobs: Optional[int] = None, cache=None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        #: Stage name -> cumulative wall-clock seconds spent in map().
        self.stage_seconds: Dict[str, float] = {}
        #: Stage name -> cumulative task count.
        self.stage_tasks: Dict[str, int] = {}

    def __repr__(self) -> str:
        cache = "on" if self.cache is not None else "off"
        return f"ExecutionEngine(jobs={self.jobs}, cache={cache})"

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        stage: Optional[str] = None,
    ) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        With ``jobs > 1`` and more than one item, work is distributed
        over a fresh process pool; otherwise it runs inline.  ``fn`` and
        the items must be picklable for the parallel path.
        """
        items = list(items)
        started = time.perf_counter()
        try:
            if self.jobs == 1 or len(items) <= 1:
                results = [fn(item) for item in items]
            else:
                results = self._map_parallel(fn, items)
        finally:
            if stage is not None:
                self.record(stage, time.perf_counter() - started, len(items))
        return results

    def _map_parallel(self, fn: Callable[[T], R], items: list[T]) -> list[R]:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.jobs, len(items))
        chunksize = max(1, len(items) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))

    # ------------------------------------------------------------------

    def record(self, stage: str, seconds: float, tasks: int = 0) -> None:
        """Accumulate wall-clock time (and task count) under a stage name."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        self.stage_tasks[stage] = self.stage_tasks.get(stage, 0) + tasks

    def timings_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of the accumulated stage timings (for manifests)."""
        return {
            stage: {
                "seconds": round(self.stage_seconds[stage], 6),
                "tasks": self.stage_tasks.get(stage, 0),
            }
            for stage in sorted(self.stage_seconds)
        }

    def reset_timings(self) -> None:
        self.stage_seconds.clear()
        self.stage_tasks.clear()
