"""Parallel experiment engine: work scheduling, trace caching, manifests.

Every table/figure in the paper is an embarrassingly parallel sweep —
independent (site, trace-index) collections and independent CV folds —
and identical traces are re-simulated on every invocation.  This package
provides the two pieces that fix both:

* :class:`ExecutionEngine` — a ``ProcessPoolExecutor``-backed scheduler
  that fans work out at (site, trace-index) / fold granularity with
  deterministic per-task seeding, so parallel results are bit-identical
  to serial ones.  ``jobs=1`` (the default) runs everything inline.
  Dispatch is future-based and fault-tolerant: failed attempts retry
  with capped deterministic backoff, hung tasks are abandoned past a
  per-task timeout, and a broken worker pool is respawned (then falls
  back inline) — see :mod:`repro.engine.engine` and the test-only
  :mod:`repro.engine.faults` injection hook.
* :class:`TraceCache` — a content-addressed on-disk store keyed by a
  hash of everything that determines a trace (machine config, browser,
  attacker, timer, period, site signature, trace index, seed, package
  version), so warm re-runs skip simulation entirely.

:class:`RunContext` bundles scale, seed, engine and cache into the
single argument the redesigned :class:`~repro.experiments.base.Experiment`
protocol receives; :class:`RunManifest` records per-stage timings and
cache statistics as the JSON artifact written next to rendered tables.
"""

from repro.engine.cache import (
    CacheStats,
    TraceCache,
    Uncacheable,
    cache_key,
    default_cache_dir,
    stable_token,
)
from repro.engine.context import RunContext
from repro.engine.engine import (
    ExecutionEngine,
    TaskError,
    TaskFailedError,
    resolve_jobs,
    resolve_retries,
    resolve_task_timeout,
)
from repro.engine.faults import FaultPlan, InjectedFault
from repro.engine.manifest import RunManifest

__all__ = [
    "CacheStats",
    "ExecutionEngine",
    "FaultPlan",
    "InjectedFault",
    "RunContext",
    "RunManifest",
    "TaskError",
    "TaskFailedError",
    "TraceCache",
    "Uncacheable",
    "cache_key",
    "default_cache_dir",
    "resolve_jobs",
    "resolve_retries",
    "resolve_task_timeout",
    "stable_token",
]
