"""Deterministic, test-only fault injection for the execution engine.

The engine's recovery paths — retry-on-exception, per-task timeouts,
``BrokenProcessPool`` respawning — are worthless if they only run when
production actually breaks.  This module makes a configurable fraction
of engine tasks fail *deterministically* so those paths are exercised in
tests and CI on every run.

A :class:`FaultPlan` decides, from a seeded hash of ``(stage, task
index)`` alone, whether an attempt at a task is sabotaged and how:

* ``raise`` — the task raises :class:`InjectedFault` before doing any
  work (a transient error: the retry succeeds);
* ``hang``  — the task sleeps ``hang_s`` seconds, then raises (with a
  per-task timeout configured the scheduler abandons it sooner);
* ``kill``  — the worker process exits hard via ``os._exit``, breaking
  the whole pool (the ``BrokenProcessPool`` recovery path).

Faults fire only while ``attempt < max_attempt`` (default: first attempt
only), so every sabotaged task eventually succeeds and the engine's
bit-identical parallel==serial guarantee can be asserted *through* the
faults.  Injection happens before the task function runs, so a sabotaged
attempt has no side effects to double on retry.

Activation travels through the :data:`FAULTS_ENV_VAR` environment
variable (a ``key=value`` spec, e.g. ``rate=0.2,modes=raise+kill,seed=3``)
so forked and spawned workers alike pick the plan up; the engine calls
:func:`maybe_inject` at the top of every task.  ``kill`` and ``hang``
degrade to ``raise`` in the parent process, so inline (serial or
fallback) execution never kills or stalls the main interpreter.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

#: Environment variable carrying the active fault plan spec.
FAULTS_ENV_VAR = "BIGGERFISH_FAULTS"
#: Every fault mode a plan may select from.
MODES = ("raise", "hang", "kill")
#: Exit status used by ``kill`` faults (distinctive in worker post-mortems).
KILL_EXIT_CODE = 77


class InjectedFault(RuntimeError):
    """The transient error raised by injected ``raise``/``hang`` faults."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of which engine tasks fail, and how.

    ``rate`` is the fraction of tasks sabotaged; ``modes`` the fault
    kinds drawn from (uniformly, by hash); ``seed`` makes two plans
    disagree about *which* tasks are hit; ``max_attempt`` bounds how many
    attempts at one task are sabotaged (1 = first attempt only);
    ``hang_s`` is the sleep for ``hang`` faults; ``parent_pid`` is the
    process where ``kill``/``hang`` degrade to ``raise`` (filled in by
    :func:`activate`).
    """

    rate: float = 0.0
    modes: Tuple[str, ...] = ("raise",)
    seed: int = 0
    max_attempt: int = 1
    hang_s: float = 2.0
    parent_pid: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if not self.modes or any(m not in MODES for m in self.modes):
            raise ValueError(f"fault modes must be drawn from {MODES}, got {self.modes}")
        if self.max_attempt < 1:
            raise ValueError(f"max_attempt must be >= 1, got {self.max_attempt}")
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be positive, got {self.hang_s}")

    # -- deterministic decisions ---------------------------------------

    def decision(self, stage: str, index: int, attempt: int) -> Optional[str]:
        """The fault mode injected for this attempt, or None.

        Pure function of the plan and ``(stage, index)`` — every process
        holding the same plan agrees, which is what makes injected runs
        reproducible and lets tests predict exactly which tasks are hit.
        """
        if self.rate <= 0.0 or attempt >= self.max_attempt:
            return None
        digest = hashlib.sha256(f"{self.seed}:{stage}:{index}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        if draw >= self.rate:
            return None
        return self.modes[digest[8] % len(self.modes)]

    # -- env-spec round trip -------------------------------------------

    def spec(self) -> str:
        """Serialize to the ``key=value,...`` form carried in the env."""
        return (
            f"rate={self.rate!r},modes={'+'.join(self.modes)},seed={self.seed},"
            f"max_attempt={self.max_attempt},hang_s={self.hang_s!r},"
            f"parent_pid={self.parent_pid}"
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string; unknown keys and bad values raise."""
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"malformed fault spec component {part!r} in {spec!r}")
            key = key.strip()
            value = value.strip()
            try:
                if key == "rate":
                    kwargs["rate"] = float(value)
                elif key == "modes":
                    kwargs["modes"] = tuple(value.split("+"))
                elif key in ("seed", "max_attempt", "parent_pid"):
                    kwargs[key] = int(value)
                elif key == "hang_s":
                    kwargs["hang_s"] = float(value)
                else:
                    raise ValueError(f"unknown fault spec key {key!r} in {spec!r}")
            except ValueError as error:
                raise ValueError(f"bad fault spec value {part!r}: {error}") from None
        return cls(**kwargs)


# ----------------------------------------------------------------------
# module-level state

#: Cache of the last parsed env spec, keyed by the raw string.
_CACHED: Optional[Tuple[str, FaultPlan]] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan carried by :data:`FAULTS_ENV_VAR`, or None when unset."""
    global _CACHED
    spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not spec:
        return None
    if _CACHED is None or _CACHED[0] != spec:
        _CACHED = (spec, FaultPlan.parse(spec))
    return _CACHED[1]


def activate(plan: FaultPlan) -> FaultPlan:
    """Export ``plan`` through the environment so workers inherit it.

    Fills in ``parent_pid`` with this process so ``kill``/``hang`` can
    never take down the scheduler itself.  Returns the exported plan.
    """
    if plan.parent_pid == 0:
        plan = dataclasses.replace(plan, parent_pid=os.getpid())
    os.environ[FAULTS_ENV_VAR] = plan.spec()
    return plan


def deactivate() -> None:
    """Stop injecting faults in this process and future workers."""
    os.environ.pop(FAULTS_ENV_VAR, None)


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with injected(FaultPlan(rate=0.3)):`` — scoped activation."""
    exported = activate(plan)
    try:
        yield exported
    finally:
        deactivate()


def maybe_inject(stage: str, index: int, attempt: int) -> None:
    """Sabotage this task attempt if the active plan says so.

    Called by the engine at the top of every task, before the task
    function runs.  No-op (one env lookup) when no plan is active.
    """
    plan = active_plan()
    if plan is None:
        return
    mode = plan.decision(stage, index, attempt)
    if mode is None:
        return
    in_worker = os.getpid() != plan.parent_pid
    if mode == "kill" and in_worker:
        os._exit(KILL_EXIT_CODE)
    if mode == "hang" and in_worker:
        time.sleep(plan.hang_s)
    raise InjectedFault(
        f"injected {mode} fault (stage={stage!r}, task={index}, attempt={attempt})"
    )
