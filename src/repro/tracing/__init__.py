"""eBPF-style kernel instrumentation and gap attribution."""

from repro.tracing.attribution import (
    DEFAULT_GAP_THRESHOLD_NS,
    AttributedGap,
    AttributionReport,
    attribute_gaps,
)
from repro.tracing.ebpf import KprobeTracer, TracerConfig
from repro.tracing.histograms import (
    FIG6_TYPES,
    GapLengthHistogram,
    gap_length_histograms,
    interrupt_time_series,
    type_coincidence,
)

__all__ = [
    "DEFAULT_GAP_THRESHOLD_NS", "AttributedGap", "AttributionReport",
    "attribute_gaps", "KprobeTracer", "TracerConfig", "FIG6_TYPES",
    "GapLengthHistogram", "gap_length_histograms", "interrupt_time_series",
    "type_coincidence",
]
