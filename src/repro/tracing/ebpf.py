"""eBPF-style kernel instrumentation (paper §5.2).

The paper attaches eBPF programs to kernel tracepoints to log the
timestamp and root cause of every interrupt arriving at a chosen core,
against the same ``CLOCK_MONOTONIC`` the user-space attacker polls.  Our
:class:`KprobeTracer` plays that role against the simulated machine: it
reads a core's :class:`~repro.sim.timeline.CoreTimeline` and exposes the
interrupt log, subject to the same limitation the paper faced — Linux
restricts which kernel functions can be traced, so a tracer can be
configured to observe only a subset of interrupt types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Sequence

import numpy as np

from repro.sim.interrupts import InterruptType
from repro.sim.machine import MachineRun
from repro.sim.timeline import CoreTimeline, InterruptRecord


@dataclass(frozen=True)
class TracerConfig:
    """What the kernel lets us instrument.

    ``traceable_types`` limits visibility (kernels before 5.11 were more
    restrictive, paper §5.2); ``None`` means every *kernel* event is
    traceable.  ``UNKNOWN`` gaps (Turbo Boost stalls, footnote 4) are
    never traceable: they involve no kernel entry at all.
    """

    traceable_types: Optional[FrozenSet[InterruptType]] = None

    def can_trace(self, itype: InterruptType) -> bool:
        if itype is InterruptType.UNKNOWN:
            return False
        return self.traceable_types is None or itype in self.traceable_types


class KprobeTracer:
    """Logs interrupt entry/exit on one core of a simulated run."""

    def __init__(self, run: MachineRun, core: Optional[int] = None,
                 config: Optional[TracerConfig] = None):
        self.run = run
        self.core_index = run.config.attacker_core if core is None else int(core)
        if not 0 <= self.core_index < len(run.cores):
            raise ValueError(f"core {self.core_index} out of range")
        self.config = TracerConfig() if config is None else config
        self._timeline: CoreTimeline = run.cores[self.core_index]
        all_types = list(InterruptType)
        visible = np.array(
            [self.config.can_trace(all_types[int(c)]) for c in self._timeline.type_codes],
            dtype=bool,
        )
        self._visible_mask = visible

    @property
    def timeline(self) -> CoreTimeline:
        """The underlying core timeline (ground truth, not tracer-visible)."""
        return self._timeline

    def __len__(self) -> int:
        return int(self._visible_mask.sum())

    def visible_indices(self) -> np.ndarray:
        """Record indices the tracer can observe."""
        return np.flatnonzero(self._visible_mask)

    def log(self) -> list[InterruptRecord]:
        """Materialized interrupt log, in time order."""
        records = self._timeline.records()
        return [records[int(i)] for i in self.visible_indices()]

    def handler_windows(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arrays ``(starts, ends, type_codes)`` of visible handler windows."""
        idx = self.visible_indices()
        return (
            self._timeline.starts[idx],
            self._timeline.ends[idx],
            self._timeline.type_codes[idx],
        )

    def handler_time_by_type(self) -> dict[InterruptType, float]:
        """Total handler nanoseconds per interrupt type."""
        starts, ends, codes = self.handler_windows()
        all_types = list(InterruptType)
        result: dict[InterruptType, float] = {}
        for code in np.unique(codes):
            mask = codes == code
            result[all_types[int(code)]] = float((ends[mask] - starts[mask]).sum())
        return result

    def handler_time_fraction(
        self,
        window_ns: float,
        types: Optional[Sequence[InterruptType]] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fraction of each time window spent in (selected) handlers.

        This regenerates Fig 5: per 100 ms interval, the share of CPU
        time consumed by interrupt handlers.
        """
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        starts, ends, codes = self.handler_windows()
        if types is not None:
            type_index = {t: i for i, t in enumerate(InterruptType)}
            wanted = np.isin(codes, [type_index[t] for t in types])
            starts, ends = starts[wanted], ends[wanted]
        horizon = self.run.timeline.horizon_ns
        edges = np.arange(0, horizon + window_ns, window_ns, dtype=np.float64)
        busy = np.zeros(len(edges) - 1)
        if len(starts):
            # Distribute each handler window across the bins it overlaps.
            first_bin = np.searchsorted(edges, starts, side="right") - 1
            last_bin = np.searchsorted(edges, ends, side="right") - 1
            for s, e, b0, b1 in zip(starts, ends, first_bin, last_bin):
                for b in range(max(b0, 0), min(b1, len(busy) - 1) + 1):
                    busy[b] += min(e, edges[b + 1]) - max(s, edges[b])
        return edges[:-1], busy / window_ns
