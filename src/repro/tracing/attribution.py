"""Gap ↔ interrupt attribution (paper §5.2).

The attacker's user-space view is a sequence of execution gaps (jumps in
the monotonic clock).  The tracer's kernel view is a log of interrupt
handler windows.  Because both share the simulation clock (as eBPF and
the Rust attacker share ``CLOCK_MONOTONIC``), gaps can be attributed to
the interrupts whose handler windows overlap them.  The paper's headline
result: **over 99 % of gaps longer than 100 ns are caused by
interrupts** — reproduced here by
:func:`attribute_gaps` / :class:`AttributionReport`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.interrupts import InterruptType
from repro.tracing.ebpf import KprobeTracer

#: The paper's gap-length threshold for the >99 % claim.
DEFAULT_GAP_THRESHOLD_NS = 100.0


@dataclass
class AttributedGap:
    """One attacker-observed gap with its kernel-side explanation."""

    start_ns: float
    end_ns: float
    interrupt_types: tuple[InterruptType, ...]
    causes: tuple[str, ...]

    @property
    def length_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def attributed(self) -> bool:
        return bool(self.interrupt_types)


@dataclass
class AttributionReport:
    """Summary of an attribution pass over one trace's gaps."""

    gaps: list[AttributedGap]
    threshold_ns: float

    @property
    def n_gaps(self) -> int:
        return len(self.gaps)

    @property
    def n_attributed(self) -> int:
        return sum(1 for g in self.gaps if g.attributed)

    @property
    def attributed_fraction(self) -> float:
        """Fraction of above-threshold gaps explained by interrupts."""
        if not self.gaps:
            return 1.0
        return self.n_attributed / self.n_gaps

    def type_counter(self) -> Counter:
        """How often each interrupt type participates in a gap."""
        counter: Counter = Counter()
        for gap in self.gaps:
            counter.update(gap.interrupt_types)
        return counter

    def gap_lengths_for_type(self, itype: InterruptType) -> np.ndarray:
        """Observed lengths of gaps involving ``itype`` (Fig 6's x-axis).

        Fig 6 plots the *total gap length observed by the attacker*, not
        the handler time of the individual interrupt — which is why the
        IRQ-work spike lines up with the timer-interrupt spike (IRQ work
        piggybacks on timer ticks).
        """
        return np.array(
            [g.length_ns for g in self.gaps if itype in g.interrupt_types]
        )


def attribute_gaps(
    tracer: KprobeTracer,
    threshold_ns: float = DEFAULT_GAP_THRESHOLD_NS,
    max_gaps: Optional[int] = None,
) -> AttributionReport:
    """Match every above-threshold gap to overlapping interrupt records."""
    if threshold_ns < 0:
        raise ValueError(f"threshold cannot be negative: {threshold_ns}")
    timeline = tracer.timeline
    gaps = timeline.gaps
    lengths = gaps.durations()
    selected = np.flatnonzero(lengths > threshold_ns)
    if max_gaps is not None:
        selected = selected[:max_gaps]
    visible = set(int(i) for i in tracer.visible_indices())
    all_types = list(InterruptType)
    attributed: list[AttributedGap] = []
    for gap_idx in selected:
        record_indices = [
            int(r) for r in timeline.records_in_gap(int(gap_idx)) if int(r) in visible
        ]
        itypes = tuple(
            sorted(
                {all_types[int(timeline.type_codes[r])] for r in record_indices},
                key=lambda t: t.value,
            )
        )
        causes = tuple(
            sorted({timeline.cause_names[int(timeline.cause_codes[r])] for r in record_indices})
        )
        attributed.append(
            AttributedGap(
                start_ns=float(gaps.gap_starts[gap_idx]),
                end_ns=float(gaps.gap_ends[gap_idx]),
                interrupt_types=itypes,
                causes=causes,
            )
        )
    return AttributionReport(gaps=attributed, threshold_ns=threshold_ns)
