"""Interrupt-timing histograms (Fig 5 and Fig 6 building blocks)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.sim.events import MS, US
from repro.sim.interrupts import InterruptType
from repro.sim.machine import MachineRun
from repro.tracing.attribution import attribute_gaps
from repro.tracing.ebpf import KprobeTracer

#: Fig 6's interrupt types, in the paper's plotting order.
FIG6_TYPES: tuple[InterruptType, ...] = (
    InterruptType.SOFTIRQ_NET_RX,
    InterruptType.TIMER,
    InterruptType.IRQ_WORK,
    InterruptType.NETWORK_RX,
)


@dataclass
class GapLengthHistogram:
    """Distribution of observed gap lengths for one interrupt type."""

    itype: InterruptType
    bin_edges_ns: np.ndarray
    counts: np.ndarray
    samples: np.ndarray

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    def mode_ns(self) -> float:
        """Center of the most populated bin (Fig 6's visible spikes)."""
        if not self.counts.sum():
            return float("nan")
        peak = int(np.argmax(self.counts))
        return float((self.bin_edges_ns[peak] + self.bin_edges_ns[peak + 1]) / 2)

    def min_ns(self) -> float:
        return float(self.samples.min()) if len(self.samples) else float("nan")


def _tracers_for(run: MachineRun, core: Optional[int]) -> list[KprobeTracer]:
    """One tracer per requested core; ``core="all"``-style None-with-sentinel
    is expressed by passing ``core=-1``: trace every core of the machine."""
    if core == -1:
        return [KprobeTracer(run, core=c) for c in range(len(run.cores))]
    return [KprobeTracer(run, core=core)]


def type_coincidence(
    runs: Sequence[MachineRun],
    subject: InterruptType,
    companion: InterruptType,
    core: Optional[int] = None,
) -> float:
    """Fraction of ``subject``-involving gaps that also contain ``companion``.

    Quantifies Fig 6's piggybacking observation: IRQ work "cannot happen
    on its own, and thus is typically run while processing a timer
    interrupt" — so most IRQ-work gaps also contain a timer record.
    """
    hits = 0
    total = 0
    for run in runs:
        for tracer in _tracers_for(run, core):
            report = attribute_gaps(tracer)
            for gap in report.gaps:
                if subject in gap.interrupt_types:
                    total += 1
                    if companion in gap.interrupt_types:
                        hits += 1
    return hits / total if total else float("nan")


def gap_length_histograms(
    runs: Sequence[MachineRun],
    core: Optional[int] = None,
    types: Sequence[InterruptType] = FIG6_TYPES,
    bin_width_ns: float = 0.25 * US,
    max_ns: float = 12 * US,
) -> Dict[InterruptType, GapLengthHistogram]:
    """Per-type distributions of attacker-observed gap lengths (Fig 6).

    ``runs`` plays the role of the paper's "50 page loads spanning 10
    websites".  Gap lengths — not handler times — are histogrammed, so
    piggybacking types (IRQ work, softirqs) inherit their host timer
    tick's latency in the plot, exactly as the paper describes.
    """
    if bin_width_ns <= 0 or max_ns <= bin_width_ns:
        raise ValueError("invalid histogram binning")
    edges = np.arange(0, max_ns + bin_width_ns, bin_width_ns)
    per_type: Dict[InterruptType, list[np.ndarray]] = {t: [] for t in types}
    for run in runs:
        for tracer in _tracers_for(run, core):
            report = attribute_gaps(tracer)
            for itype in types:
                per_type[itype].append(report.gap_lengths_for_type(itype))
    result: Dict[InterruptType, GapLengthHistogram] = {}
    for itype in types:
        samples = (
            np.concatenate(per_type[itype]) if per_type[itype] else np.empty(0)
        )
        counts, _ = np.histogram(samples, bins=edges)
        result[itype] = GapLengthHistogram(
            itype=itype, bin_edges_ns=edges, counts=counts, samples=samples
        )
    return result


def interrupt_time_series(
    runs: Sequence[MachineRun],
    core: Optional[int] = None,
    window_ns: float = 100 * MS,
    types: Optional[Sequence[InterruptType]] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Average fraction of time in interrupt handlers per window (Fig 5).

    Averages the per-window handler-time share over ``runs`` (the
    paper's "averaged over 100 runs").  Returns ``(window_starts_ns,
    mean_fraction)``.
    """
    if not runs:
        raise ValueError("need at least one run")
    fractions = []
    times = None
    for run in runs:
        tracer = KprobeTracer(run, core=core)
        t, frac = tracer.handler_time_fraction(window_ns, types=types)
        fractions.append(frac)
        times = t if times is None else times
    min_len = min(len(f) for f in fractions)
    stacked = np.stack([f[:min_len] for f in fractions])
    return times[:min_len], stacked.mean(axis=0)
