"""Browser and operating-system models.

The paper evaluates four browsers (Chrome 92, Firefox 91, Safari 14, Tor
Browser 10) across three OSes (Ubuntu 20.04, Windows 10, macOS Big Sur).
For the attack, a browser contributes its degraded timer, its page-load
speed (Tor is markedly slower — hence the paper's 50-second Tor traces),
and event-loop measurement noise on the service worker running the
attacker.  An OS contributes its scheduler-tick rate, interrupt-handler
cost factor, default IRQ routing behaviour and background interrupt
activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.events import seconds_to_ns
from repro.timers.spec import (
    CHROME_TIMER,
    FIREFOX_TIMER,
    SAFARI_TIMER,
    TOR_TIMER,
    TimerSpec,
)


@dataclass(frozen=True)
class Browser:
    """A web browser as seen by the in-browser attacker."""

    name: str
    timer: TimerSpec
    #: Multiplier on website activity times (Tor's slow page loads).
    load_stretch: float = 1.0
    #: Trace length used when attacking this browser.
    trace_seconds: float = 15.0
    #: Std-dev of per-period multiplicative measurement noise from the
    #: browser's event loop and service-worker scheduling.
    measurement_noise: float = 0.004

    def __post_init__(self) -> None:
        if self.load_stretch <= 0:
            raise ValueError(f"load_stretch must be positive, got {self.load_stretch}")
        if self.trace_seconds <= 0:
            raise ValueError(f"trace_seconds must be positive, got {self.trace_seconds}")
        if self.measurement_noise < 0:
            raise ValueError("measurement_noise cannot be negative")

    @property
    def horizon_ns(self) -> int:
        return seconds_to_ns(self.trace_seconds)

    def with_timer(self, timer: TimerSpec) -> "Browser":
        """Copy of this browser with a replacement timer (defense eval)."""
        return replace(self, timer=timer)


CHROME = Browser(name="Chrome 92", timer=CHROME_TIMER, measurement_noise=0.004)
FIREFOX = Browser(name="Firefox 91", timer=FIREFOX_TIMER, measurement_noise=0.006)
SAFARI = Browser(name="Safari 14", timer=SAFARI_TIMER, measurement_noise=0.004)
TOR_BROWSER = Browser(
    name="Tor Browser 10",
    timer=TOR_TIMER,
    load_stretch=2.8,
    trace_seconds=50.0,
    measurement_noise=0.010,
)

BROWSERS = {b.name: b for b in (CHROME, FIREFOX, SAFARI, TOR_BROWSER)}


@dataclass(frozen=True)
class OperatingSystem:
    """OS-level parameters that shape the interrupt channel."""

    name: str
    #: Scheduler tick frequency per core (Hz).
    tick_hz: float = 250.0
    #: Multiplier on all handler latencies (heavier kernel paths).
    handler_cost_factor: float = 1.0
    #: Rate of unrelated background device interrupts, per second system-wide.
    background_irq_hz: float = 220.0
    #: Probability a softirq runs on the core that took the device IRQ.
    softirq_follow_probability: float = 0.6
    #: Scale on scheduler-contention events when the attacker is unpinned.
    contention_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.tick_hz <= 0:
            raise ValueError(f"tick_hz must be positive, got {self.tick_hz}")
        if self.handler_cost_factor <= 0:
            raise ValueError("handler_cost_factor must be positive")
        if self.background_irq_hz < 0:
            raise ValueError("background_irq_hz cannot be negative")


LINUX = OperatingSystem(name="Linux", tick_hz=250.0, handler_cost_factor=1.0)
WINDOWS = OperatingSystem(
    name="Windows",
    tick_hz=100.0,
    handler_cost_factor=1.22,
    background_irq_hz=420.0,
    contention_scale=1.4,
)
MACOS = OperatingSystem(
    name="macOS",
    tick_hz=125.0,
    handler_cost_factor=0.95,
    background_irq_hz=260.0,
    contention_scale=1.1,
)

OPERATING_SYSTEMS = {os.name: os for os in (LINUX, WINDOWS, MACOS)}
