"""Website catalogs for the closed- and open-world experiments.

The closed world is the paper's Appendix A list: the Alexa top-100 sites
(as of July 2021) after the paper's exclusions.  The open world adds
further unique sites, each visited exactly once, labeled "non-sensitive"
(paper §4.1).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.workload.website import WebsiteProfile, profile_for

#: Appendix A — the 100 closed-world websites, in the paper's order.
CLOSED_WORLD_SITES: tuple[str, ...] = (
    "1688.com", "6.cn", "adobe.com",
    "alibaba.com", "aliexpress.com", "alipay.com",
    "amazon.com", "aparat.com", "apple.com",
    "babytree.com", "baidu.com", "bbc.com",
    "bing.com", "booking.com", "canva.com",
    "chase.com", "cnblogs.com", "cnn.com",
    "csdn.net", "daum.net", "detik.com",
    "dropbox.com", "ebay.com", "espn.com",
    "etsy.com", "facebook.com", "fandom.com",
    "force.com", "freepik.com", "github.com",
    "godaddy.com", "gome.com.cn", "google.com",
    "grammarly.com", "hao123.com", "haosou.com",
    "xinhuanet.com", "huanqiu.com", "ilovepdf.com",
    "imdb.com", "imgur.com", "indeed.com",
    "instagram.com", "intuit.com", "jd.com",
    "kompas.com", "linkedin.com", "live.com",
    "mail.ru", "medium.com", "microsoft.com",
    "msn.com", "myshopify.com", "naver.com",
    "netflix.com", "nytimes.com", "office.com",
    "ok.ru", "okezone.com", "panda.tv",
    "paypal.com", "pikiran-rakyat.com", "pinterest.com",
    "primevideo.com", "qq.com", "rakuten.co.jp",
    "reddit.com", "rednet.cn", "roblox.com",
    "salesforce.com", "savefrom.net", "sina.com.cn",
    "slack.com", "so.com", "sohu.com",
    "spotify.com", "stackoverflow.com", "taobao.com",
    "telegram.org", "tianya.cn", "tiktok.com",
    "tmall.com", "tradingview.com", "tribunnews.com",
    "tumblr.com", "twitch.tv", "twitter.com",
    "vk.com", "walmart.com", "weibo.com",
    "wetransfer.com", "whatsapp.com", "wikipedia.org",
    "wordpress.com", "yahoo.com", "youtube.com",
    "yy.com", "zhanqi.tv", "zillow.com",
    "zoom.us",
)

#: Label used for every open-world trace the attacker has no class for.
NON_SENSITIVE_LABEL = "non-sensitive"


def closed_world(n_sites: int | None = None) -> List[WebsiteProfile]:
    """The first ``n_sites`` closed-world profiles (all 100 by default).

    The three marquee sites (nytimes/amazon/weather) keep their
    hand-written signatures; the rest are procedurally generated from a
    stable per-name seed.
    """
    names = CLOSED_WORLD_SITES if n_sites is None else CLOSED_WORLD_SITES[:n_sites]
    if n_sites is not None and not 1 <= n_sites <= len(CLOSED_WORLD_SITES):
        raise ValueError(
            f"n_sites must be in [1, {len(CLOSED_WORLD_SITES)}], got {n_sites}"
        )
    return [profile_for(name) for name in names]


def marquee_sites() -> List[WebsiteProfile]:
    """The paper's three running-example sites, in figure order."""
    return [profile_for(n) for n in ("nytimes.com", "amazon.com", "weather.com")]


def open_world(n_sites: int, seed_offset: int = 1_000_000) -> List[WebsiteProfile]:
    """``n_sites`` unique non-sensitive sites, each visited once.

    Names are synthetic (``openworld-<k>.example``); seeds are offset so
    they never collide with closed-world signatures.
    """
    if n_sites < 0:
        raise ValueError(f"n_sites cannot be negative, got {n_sites}")
    return [
        WebsiteProfile(f"openworld-{k}.example", seed=seed_offset + k)
        for k in range(n_sites)
    ]


def site_labels(profiles: Iterable[WebsiteProfile]) -> List[str]:
    """Class labels for a list of profiles."""
    return [p.name for p in profiles]
