"""Victim workloads: websites, browsers, operating systems, background apps."""

from repro.workload.background import office_background, slack_timeline, spotify_timeline
from repro.workload.browser import (
    BROWSERS,
    CHROME,
    FIREFOX,
    LINUX,
    MACOS,
    OPERATING_SYSTEMS,
    SAFARI,
    TOR_BROWSER,
    WINDOWS,
    Browser,
    OperatingSystem,
)
from repro.workload.catalog import (
    CLOSED_WORLD_SITES,
    NON_SENSITIVE_LABEL,
    closed_world,
    marquee_sites,
    open_world,
)
from repro.workload.phases import ActivityBurst, ActivityTimeline, BurstKind, merge_timelines
from repro.workload.website import BurstTemplate, SiteStyle, WebsiteProfile, profile_for

__all__ = [
    "office_background", "slack_timeline", "spotify_timeline", "BROWSERS",
    "CHROME", "FIREFOX", "LINUX", "MACOS", "OPERATING_SYSTEMS", "SAFARI",
    "TOR_BROWSER", "WINDOWS", "Browser", "OperatingSystem",
    "CLOSED_WORLD_SITES", "NON_SENSITIVE_LABEL", "closed_world",
    "marquee_sites", "open_world", "ActivityBurst", "ActivityTimeline",
    "BurstKind", "merge_timelines", "BurstTemplate", "SiteStyle",
    "WebsiteProfile", "profile_for",
]
