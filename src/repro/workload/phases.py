"""Activity bursts: the unit of victim behaviour.

A website load is modeled as a set of *activity bursts* — intervals of
network traffic, rendering, JavaScript compute, memory traffic, disk and
input activity.  Bursts are what the interrupt synthesizer turns into
device IRQs, softirqs, rescheduling IPIs and TLB shootdowns, and what the
cache model turns into LLC occupancy.

The per-kind interrupt rates and handler-load factors below are the
calibration surface described in DESIGN.md §6: they are chosen so that a
heavy burst steals up to ~20 % of the attacker core's time (Fig 3's
counter dip from ~27 000 to ~21 000) while per-type gap lengths stay in
Fig 6's 1.5–10 µs band.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.sim.events import MS, SEC


class BurstKind(enum.Enum):
    """Categories of victim activity, by the system resource they drive."""

    NETWORK = "network"  # packet arrivals -> NIC IRQs + NET_RX softirqs
    RENDER = "render"  # GPU work -> graphics IRQs + IRQ work
    COMPUTE = "compute"  # JS/layout CPU phases -> resched IPIs + TLB shootdowns
    MEMORY = "memory"  # working-set growth -> LLC occupancy (no interrupts)
    DISK = "disk"  # cache/disk writes -> SATA IRQs + tasklet softirqs
    INPUT = "input"  # user input -> keyboard IRQs


@dataclass(frozen=True)
class KindProfile:
    """How strongly a burst of one kind exercises the interrupt system.

    ``irq_rate_hz`` is the device-IRQ rate at intensity 1.0;
    ``deferred_per_irq`` the expected number of softirq/IRQ-work items per
    device IRQ; ``duration_load_factor`` scales softirq handler time with
    intensity (heavy bursts defer more work per softirq, stretching the
    handler); ``cpu_load`` the burst's contribution to system load (DVFS,
    scheduler contention).
    """

    irq_rate_hz: float
    deferred_per_irq: float
    duration_load_factor: float
    cpu_load: float


#: Calibrated per-kind interrupt profiles (DESIGN.md §6).
KIND_PROFILES: dict[BurstKind, KindProfile] = {
    BurstKind.NETWORK: KindProfile(
        irq_rate_hz=5_200.0, deferred_per_irq=0.9, duration_load_factor=7.0, cpu_load=0.30
    ),
    BurstKind.RENDER: KindProfile(
        irq_rate_hz=3_200.0, deferred_per_irq=0.5, duration_load_factor=4.0, cpu_load=0.45
    ),
    BurstKind.COMPUTE: KindProfile(
        irq_rate_hz=2_400.0, deferred_per_irq=0.25, duration_load_factor=3.0, cpu_load=0.70
    ),
    BurstKind.MEMORY: KindProfile(
        irq_rate_hz=0.0, deferred_per_irq=0.0, duration_load_factor=0.0, cpu_load=0.25
    ),
    BurstKind.DISK: KindProfile(
        irq_rate_hz=900.0, deferred_per_irq=0.6, duration_load_factor=3.0, cpu_load=0.10
    ),
    # A full-intensity INPUT burst is a keystroke: the press/release IRQ
    # pair plus controller traffic within a couple of milliseconds.
    BurstKind.INPUT: KindProfile(
        irq_rate_hz=700.0, deferred_per_irq=0.1, duration_load_factor=1.0, cpu_load=0.02
    ),
}


@dataclass(frozen=True)
class ActivityBurst:
    """One interval of victim activity.

    ``intensity`` in (0, 1] scales interrupt rates and handler load;
    ``source`` names the device/origin (used for IRQ routing affinity and
    tracer attribution).

    ``ripple_hz``/``duty`` describe the burst's internal micro-structure:
    real network bursts are packet *trains* and render bursts follow a
    frame cadence, so activity pulses on and off at 8-40 Hz rather than
    arriving uniformly.  This sub-100 ms structure is what a fine-grained
    timer resolves and a Tor-style 100 ms quantizer cannot (Table 4).
    ``ripple_hz = 0`` means a homogeneous burst.
    """

    start_ns: float
    duration_ns: float
    kind: BurstKind
    intensity: float
    source: str = "victim"
    ripple_hz: float = 0.0
    duty: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError(f"burst duration must be positive, got {self.duration_ns}")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError(f"intensity must be in (0, 1], got {self.intensity}")
        if self.ripple_hz < 0:
            raise ValueError(f"ripple_hz cannot be negative, got {self.ripple_hz}")
        if not 0.0 < self.duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {self.duty}")

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns

    def overlap_ns(self, t0: float, t1: float) -> float:
        """Length of this burst's intersection with ``[t0, t1)``."""
        return max(0.0, min(self.end_ns, t1) - max(self.start_ns, t0))


class ActivityTimeline:
    """All bursts of one victim run, with load and occupancy queries."""

    def __init__(self, bursts: Sequence[ActivityBurst], horizon_ns: int):
        if horizon_ns <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_ns}")
        self.bursts = sorted(bursts, key=lambda b: b.start_ns)
        self.horizon_ns = int(horizon_ns)

    def __len__(self) -> int:
        return len(self.bursts)

    def __iter__(self):
        return iter(self.bursts)

    def cache_token(self) -> str:
        """Canonical identity for the trace cache (burst-content hash)."""
        from repro.engine.cache import stable_token

        return stable_token({"bursts": self.bursts, "horizon_ns": self.horizon_ns})

    def of_kind(self, kind: BurstKind) -> list[ActivityBurst]:
        """Bursts of one kind, in time order."""
        return [b for b in self.bursts if b.kind is kind]

    def load_at(self, t_ns: float) -> float:
        """Instantaneous system load in [0, 1] (sum of active bursts)."""
        load = 0.0
        for burst in self.bursts:
            if burst.start_ns <= t_ns < burst.end_ns:
                load += KIND_PROFILES[burst.kind].cpu_load * burst.intensity
        return min(load, 1.0)

    def _load_support(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-burst ``(starts, ends, load weights)`` arrays, built once."""
        cached = getattr(self, "_load_support_arrays", None)
        if cached is None:
            cached = (
                np.array([b.start_ns for b in self.bursts], dtype=np.float64),
                np.array([b.end_ns for b in self.bursts], dtype=np.float64),
                np.array(
                    [
                        KIND_PROFILES[b.kind].cpu_load * b.intensity
                        for b in self.bursts
                    ],
                    dtype=np.float64,
                ),
            )
            self._load_support_arrays = cached
        return cached

    def load_at_array(self, t_ns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`load_at` for an array of sample times."""
        t = np.asarray(t_ns, dtype=np.float64)
        if not self.bursts:
            return np.zeros(t.shape, dtype=np.float64)
        starts, ends, weights = self._load_support()
        active = (t[..., None] >= starts) & (t[..., None] < ends)
        return np.minimum(active @ weights, 1.0)

    def load_curve(self, step_ns: int = 10 * MS) -> tuple[np.ndarray, np.ndarray]:
        """Sampled ``(times, loads)`` over the horizon."""
        times = np.arange(0, self.horizon_ns, step_ns, dtype=np.float64)
        return times, self.load_at_array(times)

    def occupancy_curve(
        self,
        step_ns: int = 10 * MS,
        rise_tau_ns: float = 150 * MS,
        decay_tau_ns: float = 1.2 * SEC,
    ) -> tuple[np.ndarray, np.ndarray]:
        """LLC occupancy in [0, 1] over time, from MEMORY/RENDER bursts.

        Occupancy relaxes exponentially toward the current memory demand:
        quickly while the victim is streaming data in, slowly (competing
        processes, attacker sweeps) once the burst ends.
        """
        times = np.arange(0, self.horizon_ns, step_ns, dtype=np.float64)
        demand = np.zeros_like(times)
        for burst in self.bursts:
            if burst.kind not in (BurstKind.MEMORY, BurstKind.RENDER):
                continue
            weight = 1.0 if burst.kind is BurstKind.MEMORY else 0.45
            mask = (times >= burst.start_ns) & (times < burst.end_ns)
            demand[mask] = np.maximum(demand[mask], weight * burst.intensity)
        # The relaxation is evaluated one constant-demand segment at a
        # time: within a segment the level approaches the target
        # monotonically, so the time constant never switches mid-segment
        # and the recurrence has the closed form
        # ``level(k) = target + (level0 - target) * exp(-k * step / tau)``.
        occupancy = np.zeros_like(times)
        segment_starts = np.flatnonzero(
            np.concatenate(([True], demand[1:] != demand[:-1]))
        )
        bounds = np.append(segment_starts, len(demand))
        level = 0.0
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            target = float(demand[lo])
            tau = rise_tau_ns if target > level else decay_tau_ns
            relax = np.exp(-step_ns * np.arange(1, hi - lo + 1) / tau)
            occupancy[lo:hi] = target + (level - target) * relax
            level = float(occupancy[hi - 1])
        return times, occupancy


def merge_timelines(
    timelines: Iterable[ActivityTimeline], horizon_ns: int | None = None
) -> ActivityTimeline:
    """Overlay several timelines (e.g. a website plus background apps)."""
    timelines = list(timelines)
    if not timelines:
        raise ValueError("cannot merge zero timelines")
    horizon = horizon_ns if horizon_ns is not None else max(t.horizon_ns for t in timelines)
    bursts: list[ActivityBurst] = []
    for timeline in timelines:
        bursts.extend(timeline.bursts)
    return ActivityTimeline(bursts, horizon)
