"""Synthetic website activity profiles.

Each website is a deterministic *signature*: a set of burst templates
(network fetches, render phases, JS compute, memory growth, disk and
input activity) drawn once from a site-seeded RNG.  Loading the site
replays the signature with per-load jitter — shifted burst times, scaled
intensities, occasionally dropped or extra bursts — which yields the
property the fingerprinting classifier exploits: traces of the same site
resemble each other and traces of different sites do not (paper §3.2).

Three sites the paper uses as running examples (nytimes.com, amazon.com,
weather.com) carry hand-written signatures matching their published
descriptions: nytimes performs most activity in its first ~4 s, amazon
front-loads its first 2 s with spikes near 5 s and 10 s, and weather.com
routinely triggers rescheduling interrupts (Fig 3, Fig 5, §5.2).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.sim.events import MS, seconds_to_ns
from repro.workload.phases import ActivityBurst, ActivityTimeline, BurstKind

#: Per-load jitter applied when replaying a signature.
LOAD_START_JITTER_NS = 180 * MS
LOAD_DURATION_SIGMA = 0.08
LOAD_INTENSITY_SIGMA = 0.12
BURST_DROP_PROBABILITY = 0.03
#: Per-load *global* activity multiplier (network speed, CDN caching,
#: ad rotation): scales every burst of one load together, so absolute
#: trace levels carry little site information — only temporal shape does.
SESSION_GAIN_SIGMA = 0.42


@dataclass(frozen=True)
class BurstTemplate:
    """One burst of a site signature, before per-load jitter.

    ``ripple_hz``/``duty`` are part of the site's identity: a page's
    packet-train rhythm and render cadence are reproducible across
    loads, giving the fine-grained attacker sub-100 ms structure to
    fingerprint (see :class:`~repro.workload.phases.ActivityBurst`).
    """

    kind: BurstKind
    start_s: float
    duration_s: float
    intensity: float
    source: str
    ripple_hz: float = 0.0
    duty: float = 1.0


@dataclass(frozen=True)
class SiteStyle:
    """Site-level biases on how activity maps to interrupts.

    ``resched_weight`` scales COMPUTE-burst rescheduling/TLB traffic (the
    weather.com behaviour); ``net_coalescing`` scales how many packets
    each NET_RX softirq batches (higher = fewer, longer softirqs).
    """

    resched_weight: float = 1.0
    net_coalescing: float = 1.0
    memory_weight: float = 1.0


class WebsiteProfile:
    """A website with a stable activity signature."""

    def __init__(
        self,
        name: str,
        seed: Optional[int] = None,
        templates: Optional[Sequence[BurstTemplate]] = None,
        style: Optional[SiteStyle] = None,
    ):
        if not name:
            raise ValueError("website needs a non-empty name")
        self.name = name
        self.seed = zlib.crc32(name.encode()) if seed is None else int(seed)
        if templates is not None:
            self.templates = list(templates)
            self.style = style or SiteStyle()
        else:
            self.templates, self.style = _generate_signature(self.name, self.seed)
        if not self.templates:
            raise ValueError(f"site {name!r} has an empty signature")

    def __repr__(self) -> str:
        return f"WebsiteProfile({self.name!r}, bursts={len(self.templates)})"

    def cache_token(self) -> str:
        """Canonical identity for the trace cache.

        The full signature (templates + style) is tokenized, not just the
        name, so hand-editing a marquee profile invalidates its cached
        traces.
        """
        from repro.engine.cache import stable_token

        return stable_token(
            {
                "name": self.name,
                "seed": self.seed,
                "templates": self.templates,
                "style": self.style,
            }
        )

    def generate_load(
        self,
        rng: np.random.Generator,
        horizon_ns: int,
        time_stretch: float = 1.0,
    ) -> ActivityTimeline:
        """Replay the signature once, with per-load jitter.

        ``time_stretch`` > 1 slows the load down (Tor Browser, or the
        spurious-interrupt defense's +15.7 % page-load overhead).
        """
        if time_stretch <= 0:
            raise ValueError(f"time_stretch must be positive, got {time_stretch}")
        bursts: list[ActivityBurst] = []
        session_gain = rng.lognormal(0.0, SESSION_GAIN_SIGMA)
        for i, template in enumerate(self.templates):
            if i > 0 and rng.random() < BURST_DROP_PROBABILITY:
                continue
            start = (
                seconds_to_ns(template.start_s) * time_stretch
                + rng.normal(0.0, LOAD_START_JITTER_NS)
            )
            duration = (
                seconds_to_ns(template.duration_s)
                * time_stretch
                * rng.lognormal(0.0, LOAD_DURATION_SIGMA)
            )
            intensity = float(
                np.clip(
                    template.intensity
                    * session_gain
                    * rng.lognormal(0.0, LOAD_INTENSITY_SIGMA),
                    0.05,
                    1.0,
                )
            )
            start = float(np.clip(start, 0.0, horizon_ns - 1.0))
            duration = float(np.clip(duration, 10 * MS, horizon_ns - start))
            bursts.append(
                ActivityBurst(
                    start_ns=start,
                    duration_ns=duration,
                    kind=template.kind,
                    intensity=intensity,
                    source=template.source,
                    ripple_hz=template.ripple_hz,
                    duty=template.duty,
                )
            )
        # Sporadic background activity unrelated to the signature.
        for _ in range(rng.integers(0, 3)):
            bursts.append(
                ActivityBurst(
                    start_ns=float(rng.uniform(0, horizon_ns * 0.9)),
                    duration_ns=float(rng.uniform(30 * MS, 150 * MS)),
                    kind=BurstKind.DISK,
                    intensity=float(rng.uniform(0.05, 0.25)),
                    source="background",
                )
            )
        return ActivityTimeline(bursts, horizon_ns)


def _ripple(rng: np.random.Generator) -> tuple[float, float]:
    """Site-specific micro-structure: pulse frequency and duty cycle."""
    return float(rng.uniform(8.0, 38.0)), float(rng.uniform(0.3, 0.8))


def _burst_start_s(rng: np.random.Generator) -> float:
    """Draw a burst start time, front-loaded like real page loads.

    Nearly every site does most of its work in its first few seconds
    (fetch, parse, render); late activity (lazy loads, ads, trackers)
    is the exception.  A gamma draw puts ~80 % of bursts before 4 s with
    a tail reaching ~11 s, which keeps coarse-timescale load profiles
    similar across sites — the fingerprint lives in fine structure.
    """
    return float(np.clip(rng.gamma(shape=1.6, scale=1.3), 0.1, 11.0))


def _generate_signature(name: str, seed: int) -> tuple[list[BurstTemplate], SiteStyle]:
    """Draw a stable signature for a procedurally generated site."""
    rng = np.random.default_rng(seed)
    templates: list[BurstTemplate] = []
    # Initial fetch: every site starts with a network burst at t≈0.
    ripple_hz, duty = _ripple(rng)
    templates.append(
        BurstTemplate(
            kind=BurstKind.NETWORK,
            start_s=float(rng.uniform(0.0, 0.15)),
            duration_s=float(rng.uniform(0.4, 1.4)),
            intensity=float(rng.uniform(0.55, 1.0)),
            source=f"{name}/nic",
            ripple_hz=ripple_hz,
            duty=duty,
        )
    )
    for _ in range(int(rng.integers(2, 8))):
        templates.append(
            BurstTemplate(
                kind=BurstKind.NETWORK,
                start_s=_burst_start_s(rng),
                duration_s=float(rng.uniform(0.15, 1.1)),
                intensity=float(rng.uniform(0.15, 1.0)),
                source=f"{name}/nic",
                ripple_hz=ripple_hz,
                duty=duty,
            )
        )
    # Rendering tends to trail network activity.
    for template in [t for t in templates if t.kind is BurstKind.NETWORK]:
        if rng.random() < 0.8:
            render_hz, render_duty = _ripple(rng)
            templates.append(
                BurstTemplate(
                    kind=BurstKind.RENDER,
                    start_s=template.start_s + float(rng.uniform(0.1, 0.45)),
                    duration_s=template.duration_s * float(rng.uniform(0.6, 1.5)),
                    intensity=float(rng.uniform(0.25, 1.0)),
                    source=f"{name}/gpu",
                    ripple_hz=render_hz,
                    duty=render_duty,
                )
            )
    for _ in range(int(rng.integers(1, 5))):
        compute_hz, compute_duty = _ripple(rng)
        templates.append(
            BurstTemplate(
                kind=BurstKind.COMPUTE,
                start_s=_burst_start_s(rng),
                duration_s=float(rng.uniform(0.2, 1.6)),
                intensity=float(rng.uniform(0.3, 1.0)),
                source=f"{name}/js",
                ripple_hz=compute_hz,
                duty=compute_duty,
            )
        )
    for _ in range(int(rng.integers(1, 4))):
        templates.append(
            BurstTemplate(
                kind=BurstKind.MEMORY,
                start_s=_burst_start_s(rng),
                duration_s=float(rng.uniform(0.5, 2.5)),
                intensity=float(rng.uniform(0.3, 1.0)),
                source=f"{name}/heap",
            )
        )
    for _ in range(int(rng.integers(0, 3))):
        templates.append(
            BurstTemplate(
                kind=BurstKind.DISK,
                start_s=_burst_start_s(rng),
                duration_s=float(rng.uniform(0.1, 0.5)),
                intensity=float(rng.uniform(0.1, 0.6)),
                source=f"{name}/sata",
            )
        )
    style = SiteStyle(
        resched_weight=float(rng.uniform(0.4, 2.2)),
        net_coalescing=float(rng.uniform(0.6, 1.6)),
        memory_weight=float(rng.uniform(0.5, 1.5)),
    )
    return templates, style


#: Hand-chosen micro-structure for the marquee sites, by burst kind.
_MARQUEE_RIPPLES = {
    "nytimes.com": {BurstKind.NETWORK: (22.0, 0.55), BurstKind.RENDER: (30.0, 0.6),
                    BurstKind.COMPUTE: (14.0, 0.5)},
    "amazon.com": {BurstKind.NETWORK: (33.0, 0.45), BurstKind.RENDER: (20.0, 0.65),
                   BurstKind.COMPUTE: (25.0, 0.6)},
    "weather.com": {BurstKind.NETWORK: (12.0, 0.7), BurstKind.RENDER: (36.0, 0.4),
                    BurstKind.COMPUTE: (18.0, 0.35)},
}


def _marquee(name: str, entries: list[tuple[BurstKind, float, float, float, str]],
             style: SiteStyle) -> WebsiteProfile:
    ripples = _MARQUEE_RIPPLES[name]
    templates = []
    for kind, start, dur, inten, src in entries:
        ripple_hz, duty = ripples.get(kind, (0.0, 1.0))
        templates.append(
            BurstTemplate(kind=kind, start_s=start, duration_s=dur, intensity=inten,
                          source=f"{name}/{src}", ripple_hz=ripple_hz, duty=duty)
        )
    return WebsiteProfile(name, templates=templates, style=style)


def nytimes_profile() -> WebsiteProfile:
    """nytimes.com: most interrupt activity in the first ~4 s (Fig 5)."""
    return _marquee(
        "nytimes.com",
        [
            (BurstKind.NETWORK, 0.05, 1.6, 0.95, "nic"),
            (BurstKind.RENDER, 0.30, 1.8, 0.90, "gpu"),
            (BurstKind.COMPUTE, 0.50, 1.6, 0.85, "js"),
            (BurstKind.NETWORK, 1.80, 1.2, 0.70, "nic"),
            (BurstKind.MEMORY, 0.60, 2.4, 0.80, "heap"),
            (BurstKind.RENDER, 2.40, 1.2, 0.55, "gpu"),
            (BurstKind.NETWORK, 6.50, 0.5, 0.18, "nic"),
            (BurstKind.NETWORK, 11.0, 0.4, 0.12, "nic"),
        ],
        SiteStyle(resched_weight=0.9, net_coalescing=1.1, memory_weight=1.2),
    )


def amazon_profile() -> WebsiteProfile:
    """amazon.com: heavy first 2 s with spikes near 5 s and 10 s (Fig 3)."""
    return _marquee(
        "amazon.com",
        [
            (BurstKind.NETWORK, 0.05, 1.1, 1.00, "nic"),
            (BurstKind.RENDER, 0.25, 1.4, 0.95, "gpu"),
            (BurstKind.COMPUTE, 0.40, 1.3, 0.90, "js"),
            (BurstKind.MEMORY, 0.50, 1.6, 0.85, "heap"),
            (BurstKind.NETWORK, 4.90, 0.6, 0.75, "nic"),
            (BurstKind.RENDER, 5.10, 0.5, 0.60, "gpu"),
            (BurstKind.NETWORK, 9.90, 0.6, 0.70, "nic"),
            (BurstKind.RENDER, 10.1, 0.5, 0.55, "gpu"),
        ],
        SiteStyle(resched_weight=0.8, net_coalescing=1.0, memory_weight=1.0),
    )


def weather_profile() -> WebsiteProfile:
    """weather.com: routinely triggers rescheduling interrupts (§5.2)."""
    return _marquee(
        "weather.com",
        [
            (BurstKind.NETWORK, 0.05, 0.9, 0.85, "nic"),
            (BurstKind.RENDER, 0.30, 1.1, 0.75, "gpu"),
            (BurstKind.COMPUTE, 0.60, 2.2, 0.95, "js"),
            (BurstKind.COMPUTE, 3.50, 1.8, 0.85, "js"),
            (BurstKind.MEMORY, 0.80, 2.0, 0.70, "heap"),
            (BurstKind.COMPUTE, 7.00, 1.5, 0.75, "js"),
            (BurstKind.NETWORK, 7.20, 0.5, 0.45, "nic"),
        ],
        SiteStyle(resched_weight=2.4, net_coalescing=0.9, memory_weight=0.9),
    )


#: Sites with hand-written signatures used by the paper's example figures.
MARQUEE_PROFILES = {
    "nytimes.com": nytimes_profile,
    "amazon.com": amazon_profile,
    "weather.com": weather_profile,
}


def profile_for(name: str) -> WebsiteProfile:
    """Profile for a site name: marquee signature if one exists."""
    factory = MARQUEE_PROFILES.get(name)
    return factory() if factory else WebsiteProfile(name)
