"""Background application noise (paper §4.2, "Robustness to Background
Noise").

The paper runs Slack and Spotify (playing music) alongside the attack
and observes only a few points of accuracy drop.  Each app is modeled
as an activity timeline overlaid on the victim's: Spotify streams audio
(steady low-rate network + decode compute), Slack wakes periodically
(sync pings, occasional renders).
"""

from __future__ import annotations

import numpy as np

from repro.sim.events import MS, SEC
from repro.workload.phases import ActivityBurst, ActivityTimeline, BurstKind


def spotify_timeline(
    horizon_ns: int, rng: np.random.Generator, intensity: float = 0.18
) -> ActivityTimeline:
    """Continuous audio streaming: steady network trickle + decoding."""
    if not 0.0 < intensity <= 1.0:
        raise ValueError(f"intensity must be in (0, 1], got {intensity}")
    bursts = [
        ActivityBurst(
            start_ns=0.0,
            duration_ns=float(horizon_ns),
            kind=BurstKind.NETWORK,
            intensity=intensity,
            source="spotify/stream",
        ),
        ActivityBurst(
            start_ns=0.0,
            duration_ns=float(horizon_ns),
            kind=BurstKind.COMPUTE,
            intensity=intensity * 0.5,
            source="spotify/decode",
        ),
    ]
    return ActivityTimeline(bursts, horizon_ns)


def slack_timeline(
    horizon_ns: int, rng: np.random.Generator, wake_interval_s: float = 2.5
) -> ActivityTimeline:
    """Periodic sync wakes with occasional render activity."""
    if wake_interval_s <= 0:
        raise ValueError(f"wake interval must be positive, got {wake_interval_s}")
    bursts: list[ActivityBurst] = []
    t = float(rng.uniform(0, wake_interval_s * SEC))
    while t < horizon_ns - 50 * MS:
        bursts.append(
            ActivityBurst(
                start_ns=t,
                duration_ns=float(rng.uniform(40 * MS, 150 * MS)),
                kind=BurstKind.NETWORK,
                intensity=float(rng.uniform(0.1, 0.35)),
                source="slack/sync",
            )
        )
        if rng.random() < 0.3:
            bursts.append(
                ActivityBurst(
                    start_ns=t + 30 * MS,
                    duration_ns=float(rng.uniform(50 * MS, 200 * MS)),
                    kind=BurstKind.RENDER,
                    intensity=float(rng.uniform(0.1, 0.3)),
                    source="slack/render",
                )
            )
        t += rng.uniform(0.6, 1.4) * wake_interval_s * SEC
    if not bursts:  # horizon shorter than one wake interval
        bursts.append(
            ActivityBurst(
                start_ns=0.0,
                duration_ns=float(max(horizon_ns // 2, 10 * MS + 1)),
                kind=BurstKind.NETWORK,
                intensity=0.15,
                source="slack/sync",
            )
        )
    return ActivityTimeline(bursts, horizon_ns)


def office_background(horizon_ns: int, seed: int = 0) -> list[ActivityTimeline]:
    """The paper's noise mix: Slack plus Spotify playing music."""
    rng = np.random.default_rng(seed)
    return [spotify_timeline(horizon_ns, rng), slack_timeline(horizon_ns, rng)]
