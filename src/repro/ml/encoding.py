"""Label encoding: stable string-label ↔ integer-index mapping.

Website names are the class labels everywhere in the pipeline; the
classifiers want contiguous integer indices.  :class:`LabelEncoder`
assigns indices by *sorted* label order — never first-seen order — so
the mapping is a pure function of the label set and identical across
folds, worker processes and runs (the determinism invariant the rest of
the repo is built on).

>>> encoder = LabelEncoder()
>>> encoder.fit_transform(["nytimes.com", "amazon.com", "nytimes.com"]).tolist()
[1, 0, 1]
>>> encoder.classes
['amazon.com', 'nytimes.com']
>>> encoder.inverse([0, 1])
['amazon.com', 'nytimes.com']
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class LabelEncoder:
    """Maps string class labels to contiguous integer indices."""

    def __init__(self) -> None:
        self.classes: list[str] = []
        self._index: dict[str, int] = {}

    def fit(self, labels: Sequence[str]) -> "LabelEncoder":
        self.classes = sorted(set(labels))
        self._index = {label: i for i, label in enumerate(self.classes)}
        return self

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def transform(self, labels: Sequence[str]) -> np.ndarray:
        if not self._index:
            raise RuntimeError("encoder not fitted")
        try:
            return np.array([self._index[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unknown label {exc.args[0]!r}") from exc

    def fit_transform(self, labels: Sequence[str]) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse(self, indices: Sequence[int]) -> list[str]:
        return [self.classes[int(i)] for i in indices]
