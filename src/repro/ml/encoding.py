"""Label encoding utilities."""

from __future__ import annotations

from typing import Sequence

import numpy as np


class LabelEncoder:
    """Maps string class labels to contiguous integer indices."""

    def __init__(self) -> None:
        self.classes: list[str] = []
        self._index: dict[str, int] = {}

    def fit(self, labels: Sequence[str]) -> "LabelEncoder":
        self.classes = sorted(set(labels))
        self._index = {label: i for i, label in enumerate(self.classes)}
        return self

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def transform(self, labels: Sequence[str]) -> np.ndarray:
        if not self._index:
            raise RuntimeError("encoder not fitted")
        try:
            return np.array([self._index[label] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unknown label {exc.args[0]!r}") from exc

    def fit_transform(self, labels: Sequence[str]) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse(self, indices: Sequence[int]) -> list[str]:
        return [self.classes[int(i)] for i in indices]
