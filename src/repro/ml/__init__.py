"""From-scratch numpy deep-learning stack and fast feature classifier."""

from repro.ml.artifact import (
    ArtifactError,
    ArtifactInfo,
    load_artifact,
    load_info,
    save_artifact,
)
from repro.ml.crossval import CrossValResult, cross_validate, stratified_kfold
from repro.ml.encoding import LabelEncoder
from repro.ml.features import FeatureExtractor, Standardizer, mean_pool
from repro.ml.layers import Conv1D, Dense, Dropout, Flatten, Layer, MaxPool1D, ReLU
from repro.ml.linear import SoftmaxRegression
from repro.ml.losses import SoftmaxCrossEntropy, softmax
from repro.ml.lstm import LSTM
from repro.ml.metrics import (
    ClassMetrics,
    OpenWorldMetrics,
    confusion_matrix,
    macro_f1,
    open_world_metrics,
    per_class_metrics,
)
from repro.ml.models import (
    FeatureFingerprinter,
    Fingerprinter,
    LstmFingerprinter,
    build_paper_network,
    make_fingerprinter,
)
from repro.ml.network import Sequential
from repro.ml.optim import SGD, Adam, Optimizer
from repro.ml.train import Trainer, TrainingHistory, evaluate_accuracy

__all__ = [
    "ArtifactError", "ArtifactInfo", "load_artifact", "load_info",
    "save_artifact",
    "CrossValResult", "cross_validate", "stratified_kfold", "LabelEncoder",
    "FeatureExtractor", "Standardizer", "mean_pool", "Conv1D", "Dense",
    "ClassMetrics", "OpenWorldMetrics", "confusion_matrix", "macro_f1",
    "open_world_metrics", "per_class_metrics",
    "Dropout", "Flatten", "Layer", "MaxPool1D", "ReLU", "SoftmaxRegression",
    "SoftmaxCrossEntropy", "softmax", "LSTM", "FeatureFingerprinter",
    "Fingerprinter", "LstmFingerprinter", "build_paper_network",
    "make_fingerprinter", "Sequential", "SGD", "Adam", "Optimizer",
    "Trainer", "TrainingHistory", "evaluate_accuracy",
]
