"""Gradient-descent optimizers.

The paper trains with Adam at learning rate 0.001 (footnote 2); plain
SGD with momentum is provided for tests and ablations.  Optimizers
mutate parameter arrays in place, keyed by ``(layer_index, name)`` so
state survives across steps.
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple

import numpy as np

ParamKey = Tuple[int, str]


class Optimizer(abc.ABC):
    """Updates parameters given same-shaped gradients."""

    @abc.abstractmethod
    def step(self, params: Dict[ParamKey, np.ndarray], grads: Dict[ParamKey, np.ndarray]) -> None:
        """Apply one update in place."""


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: Dict[ParamKey, np.ndarray] = {}

    def step(self, params, grads) -> None:
        for key, param in params.items():
            grad = grads[key]
            if self.momentum:
                v = self._velocity.setdefault(key, np.zeros_like(param))
                v *= self.momentum
                v -= self.learning_rate * grad
                param += v
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction; the paper's optimizer."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[ParamKey, np.ndarray] = {}
        self._v: Dict[ParamKey, np.ndarray] = {}
        self._t = 0

    def step(self, params, grads) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for key, param in params.items():
            grad = grads[key]
            m = self._m.setdefault(key, np.zeros_like(param))
            v = self._v.setdefault(key, np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
