"""Neural-network layers implemented on numpy.

The paper's classifier (footnote 2) is a CNN+LSTM: two pairs of Conv1D
(256 filters, stride 3, ReLU) + MaxPool1D (pool 4), an LSTM (32 units),
Dropout (0.7) and a softmax classification layer, trained with Adam.
This module provides every feed-forward layer; the recurrent layer
lives in :mod:`repro.ml.lstm`.

Conventions: inputs are ``(batch, time, channels)`` for temporal layers
and ``(batch, features)`` for dense layers.  Each layer implements
``forward(x, training)`` and ``backward(grad)`` (which must be called
after a forward pass and returns the gradient w.r.t. the input), and
exposes trainable arrays via ``params()`` / ``grads()``.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np


class Layer(abc.ABC):
    """Base class for all layers."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch."""

    @abc.abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad`` (d-loss/d-output) to d-loss/d-input."""

    def params(self) -> Dict[str, np.ndarray]:
        """Trainable parameter arrays, by name."""
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        """Gradients matching :meth:`params`, valid after ``backward``."""
        return {}


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int, shape) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        if in_features < 1 or out_features < 1:
            raise ValueError("dense dimensions must be positive")
        self.W = _glorot(rng, in_features, out_features, (in_features, out_features))
        self.b = np.zeros(out_features)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW = self._x.T @ grad
        self.db = grad.sum(axis=0)
        return grad @ self.W.T

    def params(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"W": self.dW, "b": self.db}


class ReLU(Layer):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad * self._mask


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad if self._mask is None else grad * self._mask


class Flatten(Layer):
    """Collapse everything after the batch dimension."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(len(x), -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._shape)


class Conv1D(Layer):
    """1-D valid convolution over ``(batch, time, channels)`` input."""

    def __init__(
        self,
        in_channels: int,
        filters: int,
        kernel_size: int,
        stride: int,
        rng: np.random.Generator,
    ):
        if min(in_channels, filters, kernel_size, stride) < 1:
            raise ValueError("conv parameters must be positive")
        self.in_channels = in_channels
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        fan_in = in_channels * kernel_size
        self.W = _glorot(rng, fan_in, filters, (fan_in, filters))
        self.b = np.zeros(filters)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._patches: np.ndarray | None = None
        self._in_shape: tuple | None = None

    def output_length(self, in_length: int) -> int:
        if in_length < self.kernel_size:
            raise ValueError(
                f"input length {in_length} shorter than kernel {self.kernel_size}"
            )
        return (in_length - self.kernel_size) // self.stride + 1

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, length, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        l_out = self.output_length(length)
        windows = np.lib.stride_tricks.sliding_window_view(x, self.kernel_size, axis=1)
        windows = windows[:, :: self.stride][:, :l_out]  # (n, l_out, C, K)
        patches = windows.reshape(n, l_out, channels * self.kernel_size)
        self._patches = patches
        self._in_shape = x.shape
        return patches @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._patches is None or self._in_shape is None:
            raise RuntimeError("backward called before forward")
        n, l_out, _ = grad.shape
        flat_patches = self._patches.reshape(-1, self.W.shape[0])
        flat_grad = grad.reshape(-1, self.filters)
        self.dW = flat_patches.T @ flat_grad
        self.db = flat_grad.sum(axis=0)
        d_patches = (flat_grad @ self.W.T).reshape(
            n, l_out, self.in_channels, self.kernel_size
        )
        dx = np.zeros(self._in_shape)
        for k in range(self.kernel_size):
            positions = np.arange(l_out) * self.stride + k
            dx[:, positions, :] += d_patches[:, :, :, k]
        return dx

    def params(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"W": self.dW, "b": self.db}


class MaxPool1D(Layer):
    """Non-overlapping temporal max pooling; trailing remainder is cropped."""

    def __init__(self, pool_size: int):
        if pool_size < 1:
            raise ValueError(f"pool size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self._argmax: np.ndarray | None = None
        self._in_shape: tuple | None = None

    def output_length(self, in_length: int) -> int:
        out = in_length // self.pool_size
        if out < 1:
            raise ValueError(
                f"input length {in_length} shorter than pool {self.pool_size}"
            )
        return out

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, length, channels = x.shape
        l_out = self.output_length(length)
        cropped = x[:, : l_out * self.pool_size]
        blocks = cropped.reshape(n, l_out, self.pool_size, channels)
        self._argmax = blocks.argmax(axis=2)
        self._in_shape = x.shape
        return blocks.max(axis=2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._in_shape is None:
            raise RuntimeError("backward called before forward")
        n, l_out, channels = grad.shape
        blocks = np.zeros((n, l_out, self.pool_size, channels))
        n_idx, t_idx, c_idx = np.meshgrid(
            np.arange(n), np.arange(l_out), np.arange(channels), indexing="ij"
        )
        blocks[n_idx, t_idx, self._argmax, c_idx] = grad
        dx = np.zeros(self._in_shape)
        dx[:, : l_out * self.pool_size] = blocks.reshape(n, l_out * self.pool_size, channels)
        return dx
