"""Schema-versioned model artifacts for the fingerprinting backends.

A trained :class:`~repro.ml.models.Fingerprinter` can be persisted as an
*artifact directory* and reloaded bit-identically in another process —
the handoff point between ``biggerfish train`` and the serving layer
(:mod:`repro.serve`).  The layout is deliberately dull:

``artifact.json``
    Schema version, backend name, hyperparameters, the label-encoder
    classes, and training provenance (seed, scale, ``repro.__version__``
    and whatever the trainer records).  Everything a human needs to know
    about the model without loading a single array.

``weights.npz``
    Every learned array.  The LSTM backend's network parameters are
    keyed ``L{layer:02d}.{name}`` — the flat ``(layer_index, name)``
    parameter dict of :class:`~repro.ml.network.Sequential` made
    filename-safe — so a loaded network restores into a freshly rebuilt
    architecture and any key mismatch is a hard
    :class:`ArtifactError`, not a silently wrong model.

Loading validates the schema version and backend before touching any
array; corrupted or future-schema artifacts are rejected with
:class:`ArtifactError` rather than half-loaded.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ml.models import Fingerprinter

#: Current artifact schema.  Bump when the on-disk layout changes; load
#: rejects any other version so older readers never misinterpret arrays.
SCHEMA_VERSION = 1

ARTIFACT_JSON = "artifact.json"
WEIGHTS_NPZ = "weights.npz"


class ArtifactError(Exception):
    """A model artifact is missing, corrupted, or from another schema."""


@dataclass(frozen=True)
class ArtifactInfo:
    """The metadata half of an artifact (everything but the arrays)."""

    schema_version: int
    backend: str
    repro_version: str
    config: dict
    classes: Optional[tuple] = None
    provenance: Optional[dict] = None

    @property
    def n_classes(self) -> Optional[int]:
        return len(self.classes) if self.classes is not None else None


def _require_fitted(model, attr: str) -> None:
    if not hasattr(model, attr):
        raise ArtifactError(
            f"cannot save an unfitted {type(model).__name__}; call fit() first"
        )


def _lstm_state(model) -> tuple[dict, Dict[str, np.ndarray]]:
    _require_fitted(model, "_network")
    arrays = {
        f"L{layer:02d}.{name}": array
        for (layer, name), array in model._network.parameters().items()
    }
    config = {
        "conv_filters": model.conv_filters,
        "lstm_units": model.lstm_units,
        "dropout": model.dropout,
        "epochs": model.epochs,
        "batch_size": model.batch_size,
        "patience": model.patience,
        "learning_rate": model.learning_rate,
        "validation_fraction": model.validation_fraction,
        "seed": model.seed,
        "input_length": int(model._input_length),
        "n_classes": int(model._n_classes),
        "input_mean": model._input_mean,
        "input_std": model._input_std,
    }
    return config, arrays


def _lstm_restore(config: dict, arrays: Dict[str, np.ndarray]):
    from repro.ml.models import LstmFingerprinter, build_paper_network

    model = LstmFingerprinter(
        conv_filters=config["conv_filters"],
        lstm_units=config["lstm_units"],
        dropout=config["dropout"],
        epochs=config["epochs"],
        batch_size=config["batch_size"],
        patience=config["patience"],
        learning_rate=config["learning_rate"],
        validation_fraction=config["validation_fraction"],
        seed=config["seed"],
    )
    network = build_paper_network(
        config["input_length"],
        config["n_classes"],
        np.random.default_rng(config["seed"]),
        conv_filters=config["conv_filters"],
        lstm_units=config["lstm_units"],
        dropout=config["dropout"],
    )
    saved = {}
    for key, array in arrays.items():
        layer, _, name = key.partition(".")
        if not (layer.startswith("L") and layer[1:].isdigit() and name):
            raise ArtifactError(f"malformed weight key {key!r}")
        saved[(int(layer[1:]), name)] = array
    try:
        network.restore(saved)
    except ValueError as exc:
        raise ArtifactError(f"weights do not match the architecture: {exc}") from exc
    model._network = network
    model._input_mean = config["input_mean"]
    model._input_std = config["input_std"]
    model._input_length = config["input_length"]
    model._n_classes = config["n_classes"]
    return model


def _feature_state(model) -> tuple[dict, Dict[str, np.ndarray]]:
    _require_fitted(model, "_model")
    arrays = {
        "standardizer.mean": model._standardizer._mean,
        "standardizer.std": model._standardizer._std,
        "softmax.W": model._model.W,
        "softmax.b": model._model.b,
    }
    config = {
        "shape_bins": model.extractor.shape_bins,
        "diff_bins": model.extractor.diff_bins,
        "fft_bins": model.extractor.fft_bins,
        "learning_rate": model.learning_rate,
        "l2": model.l2,
        "epochs": model.epochs,
        "seed": model.seed,
        "n_classes": int(model._model.n_classes),
    }
    return config, arrays


def _feature_restore(config: dict, arrays: Dict[str, np.ndarray]):
    from repro.ml.features import FeatureExtractor, Standardizer
    from repro.ml.linear import SoftmaxRegression
    from repro.ml.models import FeatureFingerprinter

    model = FeatureFingerprinter(
        extractor=FeatureExtractor(
            shape_bins=config["shape_bins"],
            diff_bins=config["diff_bins"],
            fft_bins=config["fft_bins"],
        ),
        learning_rate=config["learning_rate"],
        l2=config["l2"],
        epochs=config["epochs"],
        seed=config["seed"],
    )
    standardizer = Standardizer()
    standardizer._mean = arrays["standardizer.mean"]
    standardizer._std = arrays["standardizer.std"]
    regression = SoftmaxRegression(
        n_classes=config["n_classes"],
        learning_rate=config["learning_rate"],
        l2=config["l2"],
        epochs=config["epochs"],
        seed=config["seed"],
    )
    regression.W = arrays["softmax.W"]
    regression.b = arrays["softmax.b"]
    if regression.W.shape[1] != config["n_classes"]:
        raise ArtifactError(
            f"weight matrix has {regression.W.shape[1]} classes, "
            f"metadata says {config['n_classes']}"
        )
    model._standardizer = standardizer
    model._model = regression
    return model


#: backend name -> (state extractor, restorer).  The names are the same
#: strings make_fingerprinter() accepts.
_BACKENDS = {
    "lstm": (_lstm_state, _lstm_restore),
    "feature": (_feature_state, _feature_restore),
}


def backend_name(model) -> str:
    """The artifact backend string for a fingerprinter instance."""
    from repro.ml.models import FeatureFingerprinter, LstmFingerprinter

    if isinstance(model, LstmFingerprinter):
        return "lstm"
    if isinstance(model, FeatureFingerprinter):
        return "feature"
    raise ArtifactError(f"no artifact backend for {type(model).__name__}")


def save_artifact(
    model,
    path,
    *,
    classes: Optional[Sequence[str]] = None,
    provenance: Optional[dict] = None,
) -> Path:
    """Persist a fitted fingerprinter as an artifact directory.

    ``classes`` is the label-encoder class list (sorted label order) the
    model was trained against; the serving layer uses it to turn argmax
    indices back into website names.  ``provenance`` is free-form
    training context (seed, scale name, dataset description) recorded
    verbatim; ``repro.__version__`` is always added.
    """
    import repro

    backend = backend_name(model)
    state, _ = _BACKENDS[backend]
    config, arrays = state(model)
    n_classes = config.get("n_classes")
    if classes is not None and n_classes is not None and len(classes) != n_classes:
        raise ArtifactError(
            f"{len(classes)} class labels for a {n_classes}-class model"
        )
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    info = ArtifactInfo(
        schema_version=SCHEMA_VERSION,
        backend=backend,
        repro_version=repro.__version__,
        config=config,
        classes=tuple(classes) if classes is not None else None,
        provenance=dict(provenance) if provenance else None,
    )
    document = asdict(info)
    document["classes"] = list(info.classes) if info.classes is not None else None
    document["weights"] = sorted(arrays)
    (path / ARTIFACT_JSON).write_text(json.dumps(document, indent=2, sort_keys=True))
    with open(path / WEIGHTS_NPZ, "wb") as handle:
        np.savez(handle, **arrays)
    return path


def load_info(path) -> ArtifactInfo:
    """Parse and validate an artifact's metadata (no arrays loaded)."""
    path = Path(path)
    manifest = path / ARTIFACT_JSON
    if not manifest.is_file():
        raise ArtifactError(f"not a model artifact: {manifest} missing")
    try:
        document = json.loads(manifest.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"corrupted artifact manifest {manifest}: {exc}") from exc
    if not isinstance(document, dict):
        raise ArtifactError(f"corrupted artifact manifest {manifest}: not an object")
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported artifact schema {version!r} (this build reads "
            f"schema {SCHEMA_VERSION}); re-train or convert the artifact"
        )
    backend = document.get("backend")
    if backend not in _BACKENDS:
        raise ArtifactError(f"unknown artifact backend {backend!r}")
    config = document.get("config")
    if not isinstance(config, dict):
        raise ArtifactError("artifact manifest has no config object")
    classes = document.get("classes")
    if classes is not None and not (
        isinstance(classes, list) and all(isinstance(c, str) for c in classes)
    ):
        raise ArtifactError("artifact classes must be a list of strings")
    provenance = document.get("provenance")
    return ArtifactInfo(
        schema_version=version,
        backend=backend,
        repro_version=str(document.get("repro_version", "")),
        config=config,
        classes=tuple(classes) if classes is not None else None,
        provenance=provenance if isinstance(provenance, dict) else None,
    )


def load_artifact(path) -> "Fingerprinter":
    """Rebuild a fingerprinter from an artifact directory.

    The returned model is ready for ``predict_proba`` and is
    bit-identical to the instance that was saved.
    """
    path = Path(path)
    info = load_info(path)
    weights = path / WEIGHTS_NPZ
    if not weights.is_file():
        raise ArtifactError(f"artifact {path} has no {WEIGHTS_NPZ}")
    try:
        with np.load(weights) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise ArtifactError(f"corrupted weights in {weights}: {exc}") from exc
    try:
        _, restore = _BACKENDS[info.backend]
        return restore(info.config, arrays)
    except KeyError as exc:
        raise ArtifactError(f"artifact {path} is missing {exc.args[0]!r}") from exc
