"""Classification metrics beyond plain accuracy.

The paper reports top-1/top-5 accuracy and, for the open world, separate
sensitive/non-sensitive accuracies.  For deeper analysis (and for the
open-world deployment question "how often does the attacker falsely
accuse a site?") this module adds confusion matrices and per-class
precision/recall/F1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def confusion_matrix(y_true, y_pred, n_classes: int) -> np.ndarray:
    """Counts[i, j] = traces of class i predicted as class j."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must align")
    if len(y_true) and (
        min(y_true.min(), y_pred.min()) < 0
        or max(y_true.max(), y_pred.max()) >= n_classes
    ):
        raise ValueError("labels outside [0, n_classes)")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


@dataclass(frozen=True)
class ClassMetrics:
    """Precision/recall/F1 for one class."""

    precision: float
    recall: float
    f1: float
    support: int


def per_class_metrics(matrix: np.ndarray) -> list[ClassMetrics]:
    """Per-class metrics from a confusion matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("confusion matrix must be square")
    result = []
    for cls in range(len(matrix)):
        true_positive = matrix[cls, cls]
        predicted = matrix[:, cls].sum()
        actual = matrix[cls, :].sum()
        precision = true_positive / predicted if predicted else 0.0
        recall = true_positive / actual if actual else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        result.append(
            ClassMetrics(
                precision=float(precision),
                recall=float(recall),
                f1=float(f1),
                support=int(actual),
            )
        )
    return result


def macro_f1(matrix: np.ndarray) -> float:
    """Unweighted mean F1 over classes."""
    metrics = per_class_metrics(matrix)
    return float(np.mean([m.f1 for m in metrics])) if metrics else 0.0


@dataclass(frozen=True)
class OpenWorldMetrics:
    """Attacker-relevant open-world numbers (§4.1's deployment view).

    ``false_accusation_rate``: fraction of non-sensitive visits labeled
    as some sensitive site — the attacker crying wolf.
    ``missed_sensitive_rate``: fraction of sensitive visits waved
    through as non-sensitive.
    """

    false_accusation_rate: float
    missed_sensitive_rate: float
    sensitive_accuracy: float


def open_world_metrics(
    y_true, y_pred, non_sensitive_class: int
) -> OpenWorldMetrics:
    """Open-world error decomposition."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    sensitive = y_true != non_sensitive_class
    if not sensitive.any() or sensitive.all():
        raise ValueError("need both sensitive and non-sensitive samples")
    false_accusation = float(
        (y_pred[~sensitive] != non_sensitive_class).mean()
    )
    missed = float((y_pred[sensitive] == non_sensitive_class).mean())
    correct_sensitive = float(
        (y_pred[sensitive] == y_true[sensitive]).mean()
    )
    return OpenWorldMetrics(
        false_accusation_rate=false_accusation,
        missed_sensitive_rate=missed,
        sensitive_accuracy=correct_sensitive,
    )
