"""K-fold cross-validation (paper §4.1).

The paper uses standard 10-fold CV: each fold serves once as the
held-out test set; the rest is split into training (81 % of the data)
and validation (9 %, handled inside the LSTM backend's early stopping).
Reported accuracy is the mean over folds, with its standard deviation
(the ``±`` in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.ml.models import Fingerprinter
from repro.stats.summary import MeanStd, top_k_accuracy


def stratified_kfold(
    y: np.ndarray, n_folds: int, seed: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` with per-class balance.

    Stratification mirrors the paper's per-site trace counts: every fold
    holds out roughly the same number of traces of each website.
    """
    y = np.asarray(y)
    if n_folds < 2:
        raise ValueError(f"need at least 2 folds, got {n_folds}")
    rng = np.random.default_rng(seed)
    fold_of = np.empty(len(y), dtype=np.int64)
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        rng.shuffle(members)
        fold_of[members] = np.arange(len(members)) % n_folds
    for fold in range(n_folds):
        test_idx = np.flatnonzero(fold_of == fold)
        train_idx = np.flatnonzero(fold_of != fold)
        if len(test_idx) == 0 or len(train_idx) == 0:
            raise ValueError(
                f"fold {fold} is degenerate; reduce n_folds or add data"
            )
        yield train_idx, test_idx


@dataclass
class CrossValResult:
    """Per-fold and aggregate accuracies."""

    fold_top1: list[float]
    fold_top5: list[float]

    @property
    def top1(self) -> MeanStd:
        return MeanStd.of(self.fold_top1)

    @property
    def top5(self) -> MeanStd:
        return MeanStd.of(self.fold_top5)


def _fold_task(task: tuple) -> tuple[float, float]:
    """Train/evaluate one fold; module-level so it pickles to workers.

    Each fold's classifier is seeded by ``make_classifier(fold)`` from
    the fold number alone, so fold results are independent of scheduling
    order — parallel CV is bit-identical to serial CV.
    """
    make_classifier, fold, x, y, n_classes, train_idx, test_idx, top_k = task
    classifier = make_classifier(fold)
    classifier.fit(x[train_idx], y[train_idx], n_classes)
    probs = classifier.predict_proba(x[test_idx])
    predictions = probs.argmax(axis=1)
    top1 = float((predictions == y[test_idx]).mean())
    top5 = top_k_accuracy(probs, y[test_idx], min(top_k, n_classes))
    return top1, top5


def cross_validate(
    make_classifier: Callable[[int], Fingerprinter],
    x: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    n_folds: int = 10,
    seed: int = 0,
    top_k: int = 5,
    engine=None,
) -> CrossValResult:
    """Run k-fold CV; ``make_classifier(fold)`` builds a fresh model.

    With an :class:`~repro.engine.engine.ExecutionEngine`, folds train
    concurrently (``make_classifier`` must then be picklable — a
    dataclass or module-level callable, not a lambda).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    tasks = [
        (make_classifier, fold, x, y, n_classes, train_idx, test_idx, top_k)
        for fold, (train_idx, test_idx) in enumerate(stratified_kfold(y, n_folds, seed))
    ]
    if engine is not None:
        outcomes = engine.map(_fold_task, tasks, stage="train")
    else:
        outcomes = [_fold_task(task) for task in tasks]
    return CrossValResult(
        fold_top1=[top1 for top1, _ in outcomes],
        fold_top5=[top5 for _, top5 in outcomes],
    )
