"""Sequential network container: the spine of the paper's CNN+LSTM.

:class:`Sequential` chains :class:`~repro.ml.layers.Layer` objects,
fuses them with :class:`~repro.ml.losses.SoftmaxCrossEntropy`, and
exposes the flat ``{(layer_index, name): array}`` parameter/gradient
dicts the optimizers consume.  ``snapshot()``/``restore()`` give the
trainer its early-stopping rollback ("train until validation accuracy
starts decreasing", §4.1) without any serialization machinery.

>>> import numpy as np
>>> from repro.ml.layers import Dense
>>> net = Sequential([Dense(3, 2, rng=np.random.default_rng(0))])
>>> net.predict_proba(np.zeros((4, 3))).shape
(4, 2)
>>> saved = net.snapshot()
>>> net.restore(saved)   # parameters written back in place
"""

from __future__ import annotations

import copy
from typing import Dict, List, Sequence

import numpy as np

from repro.ml.layers import Layer
from repro.ml.losses import SoftmaxCrossEntropy, softmax
from repro.ml.optim import Optimizer, ParamKey


class Sequential:
    """A stack of layers trained with softmax cross-entropy."""

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.loss = SoftmaxCrossEntropy()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class probabilities, computed in inference mode."""
        outputs = []
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start : start + batch_size], training=False)
            outputs.append(softmax(logits))
        return np.concatenate(outputs)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)

    def train_batch(self, x: np.ndarray, labels: np.ndarray, optimizer: Optimizer) -> float:
        """One optimization step; returns the batch loss."""
        logits = self.forward(x, training=True)
        loss_value = self.loss.forward(logits, labels)
        grad = self.loss.backward()
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        optimizer.step(self.parameters(), self.gradients())
        return loss_value

    def parameters(self) -> Dict[ParamKey, np.ndarray]:
        return {
            (i, name): array
            for i, layer in enumerate(self.layers)
            for name, array in layer.params().items()
        }

    def gradients(self) -> Dict[ParamKey, np.ndarray]:
        return {
            (i, name): array
            for i, layer in enumerate(self.layers)
            for name, array in layer.grads().items()
        }

    def snapshot(self) -> Dict[ParamKey, np.ndarray]:
        """Deep copy of all parameters (for early-stopping restore)."""
        return {key: array.copy() for key, array in self.parameters().items()}

    def restore(self, snapshot: Dict[ParamKey, np.ndarray]) -> None:
        """Load parameters saved by :meth:`snapshot` (in place)."""
        params = self.parameters()
        if set(params) != set(snapshot):
            raise ValueError("snapshot does not match this network's parameters")
        for key, array in params.items():
            array[...] = snapshot[key]
