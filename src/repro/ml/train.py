"""Training loop with the paper's early-stopping rule.

The paper trains until validation accuracy starts decreasing (§4.1).
``Trainer`` implements that: after every epoch it evaluates the
validation split, keeps a snapshot of the best parameters, and stops
when validation accuracy has not improved for ``patience`` epochs,
restoring the best snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import obs
from repro.ml.network import Sequential
from repro.ml.optim import Adam, Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch diagnostics."""

    losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False
    #: Wall-clock seconds per completed epoch.
    epoch_seconds: list[float] = field(default_factory=list)
    #: Why training ended: "early_stop", "max_epochs" or "no_validation".
    stop_reason: str = ""


@dataclass
class Trainer:
    """Mini-batch trainer with validation-based early stopping."""

    epochs: int = 30
    batch_size: int = 32
    patience: int = 3
    optimizer: Optional[Optimizer] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1 or self.patience < 1:
            raise ValueError("epochs, batch_size and patience must be positive")

    def fit(
        self,
        network: Sequential,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train ``network``; returns the history.

        Without a validation split, runs all epochs with no early stop.
        """
        optimizer = self.optimizer or Adam(learning_rate=0.001)
        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()
        best_accuracy = -1.0
        best_snapshot = None
        epochs_without_improvement = 0
        has_validation = x_val is not None and y_val is not None
        span = obs.span("ml.train", epochs=self.epochs, samples=len(x_train))
        with span:
            for epoch in range(self.epochs):
                epoch_started = time.perf_counter()
                order = rng.permutation(len(x_train))
                epoch_losses = []
                for start in range(0, len(x_train), self.batch_size):
                    batch = order[start : start + self.batch_size]
                    loss = network.train_batch(
                        x_train[batch], y_train[batch], optimizer
                    )
                    epoch_losses.append(loss)
                history.losses.append(float(np.mean(epoch_losses)))
                if not has_validation:
                    self._finish_epoch(history, epoch_started)
                    continue
                accuracy = evaluate_accuracy(network, x_val, y_val)
                history.val_accuracies.append(accuracy)
                if accuracy > best_accuracy:
                    best_accuracy = accuracy
                    best_snapshot = network.snapshot()
                    history.best_epoch = epoch
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    if epochs_without_improvement >= self.patience:
                        history.stopped_early = True
                        self._finish_epoch(history, epoch_started)
                        break
                self._finish_epoch(history, epoch_started)
            if history.stopped_early:
                history.stop_reason = "early_stop"
            elif has_validation:
                history.stop_reason = "max_epochs"
            else:
                history.stop_reason = "no_validation"
            span.set(
                epochs_run=len(history.losses),
                stop_reason=history.stop_reason,
                best_epoch=history.best_epoch,
            )
        if best_snapshot is not None:
            network.restore(best_snapshot)
        return history

    @staticmethod
    def _finish_epoch(history: TrainingHistory, epoch_started: float) -> None:
        elapsed = time.perf_counter() - epoch_started
        history.epoch_seconds.append(elapsed)
        obs.histogram("ml.epoch_seconds").observe(elapsed)
        obs.counter("ml.epochs").inc()


def evaluate_accuracy(network: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Top-1 accuracy of ``network`` on ``(x, y)``."""
    if len(x) == 0:
        raise ValueError("cannot evaluate on an empty set")
    return float((network.predict(x) == np.asarray(y)).mean())
