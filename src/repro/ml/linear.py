"""Multinomial logistic regression on numpy.

The fast classifier backend: softmax regression with L2 regularization
trained full-batch with Adam.  On the engineered features of
:mod:`repro.ml.features` this is strong enough to reproduce every
accuracy *ordering* in the paper while training in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.losses import softmax


@dataclass
class SoftmaxRegression:
    """L2-regularized multinomial logistic regression."""

    n_classes: int
    learning_rate: float = 0.05
    l2: float = 1e-4
    epochs: int = 300
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_classes < 2:
            raise ValueError(f"need at least two classes, got {self.n_classes}")
        if self.learning_rate <= 0 or self.epochs < 1 or self.l2 < 0:
            raise ValueError("invalid hyperparameters")
        self.W: np.ndarray | None = None
        self.b: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SoftmaxRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("x must be (n, features) aligned with y")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError("label outside class range")
        n, d = x.shape
        rng = np.random.default_rng(self.seed)
        self.W = rng.normal(0.0, 0.01, size=(d, self.n_classes))
        self.b = np.zeros(self.n_classes)
        onehot = np.zeros((n, self.n_classes))
        onehot[np.arange(n), y] = 1.0
        m_w = np.zeros_like(self.W)
        v_w = np.zeros_like(self.W)
        m_b = np.zeros_like(self.b)
        v_b = np.zeros_like(self.b)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for t in range(1, self.epochs + 1):
            probs = softmax(x @ self.W + self.b)
            grad_logits = (probs - onehot) / n
            grad_w = x.T @ grad_logits + self.l2 * self.W
            grad_b = grad_logits.sum(axis=0)
            for param, grad, m, v in (
                (self.W, grad_w, m_w, v_w),
                (self.b, grad_b, m_b, v_b),
            ):
                m *= beta1
                m += (1 - beta1) * grad
                v *= beta2
                v += (1 - beta2) * grad * grad
                m_hat = m / (1 - beta1**t)
                v_hat = v / (1 - beta2**t)
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.W is None or self.b is None:
            raise RuntimeError("classifier not fitted")
        return softmax(np.asarray(x, dtype=np.float64) @ self.W + self.b)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)
