"""Softmax cross-entropy, the training objective of both classifiers.

The fused :class:`SoftmaxCrossEntropy` keeps the softmax inside the
loss so the backward pass is the numerically trivial ``probs - onehot``
instead of a division by probabilities; :func:`softmax` is max-shifted
so large logits cannot overflow.

>>> import numpy as np
>>> probs = softmax(np.array([[1000.0, 1000.0]]))   # no overflow
>>> np.allclose(probs, [[0.5, 0.5]])
True
>>> loss = SoftmaxCrossEntropy()
>>> round(loss.forward(np.log(np.array([[0.25, 0.75]])), np.array([1])), 4)
0.2877
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilization."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy over integer class labels."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
        labels = np.asarray(labels, dtype=np.int64)
        if len(labels) != len(logits):
            raise ValueError("labels must align with logits")
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ValueError("label outside class range")
        probs = softmax(logits)
        self._probs = probs
        self._labels = labels
        picked = probs[np.arange(len(labels)), labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return grad / len(self._labels)
