"""Fingerprinting classifier backends.

Both backends implement the same protocol — ``fit(X, y, n_classes)`` and
``predict_proba(X)`` on raw normalized trace vectors — so the
fingerprinting pipeline can swap them freely:

* :class:`LstmFingerprinter` — the paper's architecture (footnote 2):
  two Conv1D(stride 3) + MaxPool1D(4) pairs, LSTM, Dropout(0.7), softmax
  output, trained with Adam (lr 0.001) and validation early stopping.
  Filter/unit counts are configurable; the defaults are scaled down from
  (256, 32) for laptop-speed training and can be set to the paper's
  values with ``LstmFingerprinter.paper_scale()``.
* :class:`FeatureFingerprinter` — engineered features + softmax
  regression; the fast backend used for full parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.ml.features import FeatureExtractor, Standardizer
from repro.ml.layers import Conv1D, Dense, Dropout, MaxPool1D, ReLU
from repro.ml.linear import SoftmaxRegression
from repro.ml.lstm import LSTM
from repro.ml.network import Sequential
from repro.ml.optim import Adam
from repro.ml.train import Trainer


class Fingerprinter(Protocol):
    """Classifier protocol consumed by the fingerprinting pipeline.

    Fitted backends also persist as schema-versioned artifact
    directories (:mod:`repro.ml.artifact`): ``save(path)`` writes one,
    ``load(path)`` rebuilds a bit-identical model from one.
    """

    def fit(self, x: np.ndarray, y: np.ndarray, n_classes: int) -> "Fingerprinter": ...

    def predict_proba(self, x: np.ndarray) -> np.ndarray: ...

    def save(self, path, *, classes=None, provenance=None): ...


class _ArtifactMixin:
    """save()/load() over :mod:`repro.ml.artifact` for both backends."""

    def save(self, path, *, classes=None, provenance=None):
        """Write this fitted model as an artifact directory at ``path``."""
        from repro.ml.artifact import save_artifact

        return save_artifact(self, path, classes=classes, provenance=provenance)

    @classmethod
    def load(cls, path):
        """Load an artifact directory; it must hold this backend."""
        from repro.ml.artifact import ArtifactError, load_artifact

        model = load_artifact(path)
        if not isinstance(model, cls):
            raise ArtifactError(
                f"artifact at {path} holds a {type(model).__name__}, "
                f"not a {cls.__name__}"
            )
        return model


def build_paper_network(
    input_length: int,
    n_classes: int,
    rng: np.random.Generator,
    conv_filters: int = 32,
    lstm_units: int = 24,
    dropout: float = 0.7,
) -> Sequential:
    """The paper's CNN+LSTM, parameterized by width.

    With ``conv_filters=256, lstm_units=32`` this is exactly the
    published architecture.
    """
    kernel, stride, pool = 8, 3, 4
    conv1 = Conv1D(1, conv_filters, kernel, stride, rng)
    pool1 = MaxPool1D(pool)
    length = pool1.output_length(conv1.output_length(input_length))
    conv2 = Conv1D(conv_filters, conv_filters, min(kernel, length), stride, rng)
    pool2_size = min(pool, max(conv2.output_length(length), 1))
    pool2 = MaxPool1D(pool2_size)
    lstm = LSTM(conv_filters, lstm_units, rng)
    return Sequential(
        [
            conv1,
            ReLU(),
            pool1,
            conv2,
            ReLU(),
            pool2,
            lstm,
            Dropout(dropout, rng),
            Dense(lstm_units, n_classes, rng),
        ]
    )


@dataclass
class LstmFingerprinter(_ArtifactMixin):
    """Paper-architecture backend (scaled widths by default)."""

    conv_filters: int = 32
    lstm_units: int = 24
    dropout: float = 0.7
    epochs: int = 40
    batch_size: int = 32
    patience: int = 5
    learning_rate: float = 0.001
    validation_fraction: float = 0.1
    seed: int = 0

    @classmethod
    def paper_scale(cls, **overrides) -> "LstmFingerprinter":
        """The exact published widths (slow on a laptop)."""
        defaults = dict(conv_filters=256, lstm_units=32)
        defaults.update(overrides)
        return cls(**defaults)

    def fit(self, x: np.ndarray, y: np.ndarray, n_classes: int) -> "LstmFingerprinter":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        # Normalized traces live in a narrow band near 1.0; center and
        # rescale so the conv stack sees unit-variance inputs.
        self._input_mean = float(x.mean())
        self._input_std = float(x.std()) or 1.0
        self._input_length = x.shape[1]
        self._n_classes = n_classes
        x = (x - self._input_mean) / self._input_std
        rng = np.random.default_rng(self.seed)
        self._network = build_paper_network(
            x.shape[1], n_classes, rng,
            conv_filters=self.conv_filters,
            lstm_units=self.lstm_units,
            dropout=self.dropout,
        )
        x3 = x[:, :, None]
        # Carve a validation split for early stopping (paper: 9 % of the
        # dataset; here a fraction of the training fold).
        n_val = max(int(len(x) * self.validation_fraction), 1) if len(x) > 10 else 0
        order = rng.permutation(len(x))
        val_idx, train_idx = order[:n_val], order[n_val:]
        trainer = Trainer(
            epochs=self.epochs,
            batch_size=self.batch_size,
            patience=self.patience,
            optimizer=Adam(learning_rate=self.learning_rate),
            seed=self.seed,
        )
        trainer.fit(
            self._network,
            x3[train_idx],
            y[train_idx],
            x3[val_idx] if n_val else None,
            y[val_idx] if n_val else None,
        )
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_network"):
            raise RuntimeError("classifier not fitted")
        x = (np.asarray(x, dtype=np.float64) - self._input_mean) / self._input_std
        return self._network.predict_proba(x[:, :, None])


@dataclass
class FeatureFingerprinter(_ArtifactMixin):
    """Fast backend: engineered features + softmax regression."""

    extractor: FeatureExtractor = field(default_factory=FeatureExtractor)
    learning_rate: float = 0.05
    l2: float = 1e-4
    epochs: int = 300
    seed: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray, n_classes: int) -> "FeatureFingerprinter":
        features = self.extractor.transform(np.asarray(x, dtype=np.float64))
        self._standardizer = Standardizer()
        features = self._standardizer.fit_transform(features)
        self._model = SoftmaxRegression(
            n_classes=n_classes,
            learning_rate=self.learning_rate,
            l2=self.l2,
            epochs=self.epochs,
            seed=self.seed,
        ).fit(features, np.asarray(y, dtype=np.int64))
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_model"):
            raise RuntimeError("classifier not fitted")
        features = self._standardizer.transform(
            self.extractor.transform(np.asarray(x, dtype=np.float64))
        )
        return self._model.predict_proba(features)


def make_fingerprinter(backend: str, seed: int = 0) -> Fingerprinter:
    """Factory for a backend by name (``"feature"`` or ``"lstm"``)."""
    if backend == "feature":
        return FeatureFingerprinter(seed=seed)
    if backend == "lstm":
        return LstmFingerprinter(seed=seed)
    if backend == "lstm-paper":
        return LstmFingerprinter.paper_scale(seed=seed)
    raise ValueError(f"unknown classifier backend {backend!r}")
