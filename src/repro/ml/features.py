"""Feature extraction for the fast classifier backend.

Traces are long (up to 10 000 samples at paper scale).  The fast backend
summarizes each normalized trace into a compact feature vector:

* mean-pooled trace shape (coarse temporal profile),
* mean-pooled absolute first differences (where activity happens),
* low-frequency FFT magnitudes (periodic structure), and
* global summary statistics.

These capture the same information the CNN front-end learns — where the
counter dips and how violently — while training orders of magnitude
faster, enabling the full Table 1/2/3/4 sweeps on a laptop.  DESIGN.md
documents this as a declared substitution; the LSTM backend remains the
faithful architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def mean_pool(x: np.ndarray, n_bins: int) -> np.ndarray:
    """Mean-pool rows of ``x`` down to ``n_bins`` columns."""
    if x.ndim != 2:
        raise ValueError(f"expected (n, length), got {x.shape}")
    n, length = x.shape
    if n_bins < 1:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if length < n_bins:
        # Short inputs: repeat-edge pad up to the bin count.
        pad = np.repeat(x[:, -1:], n_bins - length, axis=1)
        return np.concatenate([x, pad], axis=1)
    usable = (length // n_bins) * n_bins
    return x[:, :usable].reshape(n, n_bins, -1).mean(axis=2)


@dataclass(frozen=True)
class FeatureExtractor:
    """Turns a batch of normalized traces into feature matrices."""

    shape_bins: int = 64
    diff_bins: int = 32
    fft_bins: int = 96

    def __post_init__(self) -> None:
        if min(self.shape_bins, self.diff_bins, self.fft_bins) < 1:
            raise ValueError("all feature bin counts must be positive")

    @property
    def n_features(self) -> int:
        return self.shape_bins + self.diff_bins + self.fft_bins + 4

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Features for a batch of traces ``(n, length)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected (n, length), got {x.shape}")
        shape = mean_pool(x, self.shape_bins)
        diffs = np.abs(np.diff(x, axis=1))
        if diffs.shape[1] == 0:
            diffs = np.zeros((len(x), 1))
        diff_pooled = mean_pool(diffs, self.diff_bins)
        spectrum = np.abs(np.fft.rfft(x - x.mean(axis=1, keepdims=True), axis=1))
        # Energy-normalize so per-load gain (session bandwidth, caching)
        # does not scale the spectral fingerprint, then pool narrowly:
        # burst micro-structure (packet trains, render cadence) shows up
        # as sharp lines in the 5-50 Hz band that survive 4-bin pooling.
        spectrum = spectrum / (spectrum.sum(axis=1, keepdims=True) + 1e-12)
        fft_feats = mean_pool(spectrum[:, 1 : 1 + 4 * self.fft_bins], self.fft_bins)
        stats = np.column_stack(
            [x.mean(axis=1), x.std(axis=1), x.min(axis=1), diffs.mean(axis=1)]
        )
        return np.concatenate([shape, diff_pooled, fft_feats, stats], axis=1)


class Standardizer:
    """Column-wise z-scoring fitted on the training split only."""

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "Standardizer":
        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0)
        self._std = np.where(self._std < 1e-12, 1.0, self._std)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._mean is None or self._std is None:
            raise RuntimeError("standardizer not fitted")
        return (x - self._mean) / self._std

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
