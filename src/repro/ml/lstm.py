"""LSTM layer with full backpropagation through time.

Matches the paper's recurrent stage: an LSTM with 32 units consuming
the conv/pool front-end's output sequence and emitting its final hidden
state.  Gate layout in the fused weight matrices is ``[i, f, g, o]``
(input, forget, candidate, output).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ml.layers import Layer, _glorot


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


class LSTM(Layer):
    """Single-layer LSTM; returns the final hidden state ``(batch, hidden)``."""

    def __init__(self, in_channels: int, hidden: int, rng: np.random.Generator):
        if in_channels < 1 or hidden < 1:
            raise ValueError("LSTM dimensions must be positive")
        self.in_channels = in_channels
        self.hidden = hidden
        self.Wx = _glorot(rng, in_channels, 4 * hidden, (in_channels, 4 * hidden))
        self.Wh = _glorot(rng, hidden, 4 * hidden, (hidden, 4 * hidden))
        self.b = np.zeros(4 * hidden)
        # Standard trick: bias the forget gate open at initialization.
        self.b[hidden : 2 * hidden] = 1.0
        self.dWx = np.zeros_like(self.Wx)
        self.dWh = np.zeros_like(self.Wh)
        self.db = np.zeros_like(self.b)
        self._cache: dict | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, T, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        H = self.hidden
        h = np.zeros((n, H))
        c = np.zeros((n, H))
        gates_i = np.empty((T, n, H))
        gates_f = np.empty((T, n, H))
        gates_g = np.empty((T, n, H))
        gates_o = np.empty((T, n, H))
        cells = np.empty((T, n, H))
        tanh_cells = np.empty((T, n, H))
        hiddens = np.empty((T + 1, n, H))
        hiddens[0] = h
        for t in range(T):
            z = x[:, t] @ self.Wx + h @ self.Wh + self.b
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c = f * c + i * g
            tc = np.tanh(c)
            h = o * tc
            gates_i[t], gates_f[t], gates_g[t], gates_o[t] = i, f, g, o
            cells[t], tanh_cells[t], hiddens[t + 1] = c, tc, h
        self._cache = {
            "x": x, "i": gates_i, "f": gates_f, "g": gates_g, "o": gates_o,
            "c": cells, "tc": tanh_cells, "h": hiddens,
        }
        return h

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        n, T, _ = x.shape
        H = self.hidden
        self.dWx.fill(0.0)
        self.dWh.fill(0.0)
        self.db.fill(0.0)
        dx = np.zeros_like(x)
        dh = grad.copy()
        dc = np.zeros((n, H))
        for t in reversed(range(T)):
            i, f, g, o = cache["i"][t], cache["f"][t], cache["g"][t], cache["o"][t]
            tc = cache["tc"][t]
            c_prev = cache["c"][t - 1] if t > 0 else np.zeros((n, H))
            h_prev = cache["h"][t]
            do = dh * tc
            dc = dc + dh * o * (1 - tc * tc)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.concatenate(
                [
                    di * i * (1 - i),
                    df * f * (1 - f),
                    dg * (1 - g * g),
                    do * o * (1 - o),
                ],
                axis=1,
            )
            self.dWx += x[:, t].T @ dz
            self.dWh += h_prev.T @ dz
            self.db += dz.sum(axis=0)
            dx[:, t] = dz @ self.Wx.T
            dh = dz @ self.Wh.T
            dc = dc * f
        return dx

    def params(self) -> Dict[str, np.ndarray]:
        return {"Wx": self.Wx, "Wh": self.Wh, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"Wx": self.dWx, "Wh": self.dWh, "b": self.db}
