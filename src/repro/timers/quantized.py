"""Resolution-reduced timers: plain quantization and Chrome-style jitter.

Quantization (paper §6.1):  ``T_secure = floor(T_real / Δ) · Δ``.
Tor Browser uses Δ = 100 ms, Firefox and Safari Δ = 1 ms.

Chrome additionally adds deterministic jitter:
``T_secure = floor(T_real / Δ) · Δ + ε`` with ``ε ∈ {0, Δ}`` computed
from a hash of the quantization bucket so the output stays monotonic.
Chrome's Δ is 0.1 ms.
"""

from __future__ import annotations

import math

from repro.timers.base import BrowserTimer


class QuantizedTimer(BrowserTimer):
    """Floor-quantized timer with resolution ``delta_ns``.

    >>> timer = QuantizedTimer(delta_ns=100.0)
    >>> timer.read(250.0)
    200.0
    >>> timer.read(299.9)
    200.0
    >>> timer.first_crossing(250.0, 150.0)  # needs two bucket boundaries
    400.0
    >>> timer.first_crossing(250.0, 0.0)
    250.0
    """

    def __init__(self, delta_ns: float):
        if delta_ns <= 0:
            raise ValueError(f"resolution must be positive, got {delta_ns}")
        self.delta_ns = float(delta_ns)

    def read(self, t_real_ns: float) -> float:
        return math.floor(t_real_ns / self.delta_ns) * self.delta_ns

    def first_crossing(self, t0_real_ns: float, elapsed_ns: float) -> float:
        if elapsed_ns < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed_ns}")
        if elapsed_ns == 0:
            return float(t0_real_ns)
        bucket0 = math.floor(t0_real_ns / self.delta_ns)
        # Observed time advances only on bucket boundaries; we need the
        # bucket whose value is >= read(t0) + elapsed.
        buckets_needed = math.ceil(elapsed_ns / self.delta_ns)
        crossing = (bucket0 + buckets_needed) * self.delta_ns
        # Floating-point guard: bucket boundaries computed by
        # multiplication can floor into the previous bucket.
        if self.read(crossing) - self.read(t0_real_ns) < elapsed_ns:
            crossing = (bucket0 + buckets_needed + 1) * self.delta_ns
        return crossing


def _jitter_bit(bucket: int, seed: int) -> int:
    """Deterministic pseudo-random bit for one quantization bucket."""
    x = (bucket * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return x & 1


class JitteredTimer(BrowserTimer):
    """Chrome-style quantized timer with hash-derived jitter.

    ``read(t) = bucket(t) · Δ + ε(bucket(t)) · Δ`` with ε ∈ {0, 1}.  The
    deviation from real time is guaranteed to be < 2Δ, and the output is
    non-decreasing because consecutive buckets differ by Δ while ε can
    change by at most Δ.

    >>> timer = JitteredTimer(delta_ns=100.0, seed=1)
    >>> all(timer.read(t) - t < 2 * 100.0 for t in range(0, 2000, 7))
    True
    >>> reads = [timer.read(float(t)) for t in range(0, 2000, 7)]
    >>> reads == sorted(reads)  # jitter never breaks monotonicity
    True
    >>> crossing = timer.first_crossing(0.0, 500.0)
    >>> timer.read(crossing) - timer.read(0.0) >= 500.0
    True
    """

    def __init__(self, delta_ns: float, seed: int = 0):
        if delta_ns <= 0:
            raise ValueError(f"resolution must be positive, got {delta_ns}")
        self.delta_ns = float(delta_ns)
        self.seed = int(seed)

    def _epsilon_ns(self, bucket: int) -> float:
        return _jitter_bit(bucket, self.seed) * self.delta_ns

    def read(self, t_real_ns: float) -> float:
        bucket = math.floor(t_real_ns / self.delta_ns)
        return bucket * self.delta_ns + self._epsilon_ns(bucket)

    def first_crossing(self, t0_real_ns: float, elapsed_ns: float) -> float:
        if elapsed_ns < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed_ns}")
        if elapsed_ns == 0:
            return float(t0_real_ns)
        bucket0 = math.floor(t0_real_ns / self.delta_ns)
        # The crossing bucket is within one of the jitter-free answer:
        # observed diff = k·Δ + ε(b0+k) − ε(b0), and ε terms shift the
        # requirement by at most ±Δ each.
        k_base = math.ceil(elapsed_ns / self.delta_ns)
        base = self.read(t0_real_ns)
        for k in range(max(k_base - 1, 1), k_base + 4):
            crossing = (bucket0 + k) * self.delta_ns
            # Evaluate through read() so floating-point bucket rounding
            # is consistent with what the attacker actually observes.
            if self.read(crossing) - base >= elapsed_ns:
                return max(crossing, float(t0_real_ns))
        raise AssertionError("jittered crossing must occur within k_base + 3 buckets")
