"""Browser timer models (paper §6.1)."""

from repro.timers.base import BrowserTimer, PreciseTimer
from repro.timers.quantized import JitteredTimer, QuantizedTimer
from repro.timers.randomized import RandomizedTimer
from repro.timers.spec import (
    CHROME_TIMER,
    FIREFOX_TIMER,
    NATIVE_TIMER,
    RANDOMIZED_DEFENSE_TIMER,
    SAFARI_TIMER,
    TOR_TIMER,
    TimerKind,
    TimerSpec,
)

__all__ = [
    "BrowserTimer", "PreciseTimer", "JitteredTimer", "QuantizedTimer",
    "RandomizedTimer", "TimerKind", "TimerSpec", "CHROME_TIMER",
    "FIREFOX_TIMER", "SAFARI_TIMER", "TOR_TIMER", "NATIVE_TIMER",
    "RANDOMIZED_DEFENSE_TIMER",
]
