"""Declarative timer specifications.

Trace collection needs a fresh timer per trace (stateful timers must not
leak state across runs), so browsers and defenses describe their timer as
a :class:`TimerSpec` and the collector builds an instance per trace with
a derived seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.events import MS
from repro.timers.base import BrowserTimer, PreciseTimer
from repro.timers.quantized import JitteredTimer, QuantizedTimer
from repro.timers.randomized import RandomizedTimer


class TimerKind(enum.Enum):
    PRECISE = "precise"
    QUANTIZED = "quantized"
    JITTERED = "jittered"
    RANDOMIZED = "randomized"


@dataclass(frozen=True)
class TimerSpec:
    """Everything needed to build one browser timer."""

    kind: TimerKind
    resolution_ns: float = 0.1 * MS
    alpha_range: tuple[int, int] = (5, 25)
    beta_range: tuple[int, int] = (5, 25)
    threshold_ns: float = 100 * MS

    def build(self, seed: int = 0) -> BrowserTimer:
        """Instantiate the timer this spec describes."""
        if self.kind is TimerKind.PRECISE:
            return PreciseTimer()
        if self.kind is TimerKind.QUANTIZED:
            return QuantizedTimer(self.resolution_ns)
        if self.kind is TimerKind.JITTERED:
            return JitteredTimer(self.resolution_ns, seed=seed)
        if self.kind is TimerKind.RANDOMIZED:
            return RandomizedTimer(
                delta_ns=self.resolution_ns,
                alpha_range=self.alpha_range,
                beta_range=self.beta_range,
                threshold_ns=self.threshold_ns,
                seed=seed,
            )
        raise ValueError(f"unknown timer kind {self.kind!r}")

    @property
    def resolution_ms(self) -> float:
        return self.resolution_ns / MS


#: The timers shipped by real browsers (paper Table 1 column 2).
CHROME_TIMER = TimerSpec(TimerKind.JITTERED, resolution_ns=0.1 * MS)
#: Table 1 lists Firefox as "1 ms w/ jitter", but applying Chrome's
#: ε ∈ {0, Δ} hash-jitter at Δ = 1 ms would vary each 5 ms attack period
#: by ±20 % — incompatible with the paper's own 95.3 % Firefox accuracy.
#: Firefox's ``privacy.reduceTimerPrecision`` is a clamp; we model it as
#: pure 1 ms quantization (its jitter component is far below Δ).
FIREFOX_TIMER = TimerSpec(TimerKind.QUANTIZED, resolution_ns=1 * MS)
SAFARI_TIMER = TimerSpec(TimerKind.QUANTIZED, resolution_ns=1 * MS)
TOR_TIMER = TimerSpec(TimerKind.QUANTIZED, resolution_ns=100 * MS)
#: Native attackers (Python time.time(), Rust CLOCK_MONOTONIC).
NATIVE_TIMER = TimerSpec(TimerKind.PRECISE)
#: The paper's randomized-timer defense with its published parameters.
RANDOMIZED_DEFENSE_TIMER = TimerSpec(
    TimerKind.RANDOMIZED,
    resolution_ns=1 * MS,
    alpha_range=(5, 25),
    beta_range=(5, 25),
    threshold_ns=100 * MS,
)
