"""Browser timer interface.

In-browser attackers are restricted to ``performance.now()``, whose
output is deliberately degraded (paper §6.1): quantized to a resolution
Δ, optionally jittered (Chrome), or — with the paper's proposed defense —
randomized.  The attacker interacts with a timer in two ways:

* ``read(t_real)``: the value returned at real time ``t_real``; and
* ``first_crossing(t0, elapsed)``: the earliest real time at which the
  observed time has advanced by at least ``elapsed`` since ``t0``, which
  is the loop-period boundary in Fig 2's pseudo-code
  (``while (time() - t_begin < P)``).

Stateful timers (randomized) require time to be queried monotonically,
matching a real program's access pattern.
"""

from __future__ import annotations

import abc


class BrowserTimer(abc.ABC):
    """A (possibly degraded) monotonic timer exposed to the attacker."""

    @abc.abstractmethod
    def read(self, t_real_ns: float) -> float:
        """Observed timer value at real time ``t_real_ns``."""

    @abc.abstractmethod
    def first_crossing(self, t0_real_ns: float, elapsed_ns: float) -> float:
        """Earliest real time ``t >= t0`` with ``read(t) - read(t0) >= elapsed``."""

    def reset(self) -> None:
        """Forget internal state (called between traces); default no-op."""


class PreciseTimer(BrowserTimer):
    """A perfect timer: observed time equals real time.

    Used by native attackers (the Rust ``CLOCK_MONOTONIC`` poller of
    §5.2) and as the identity baseline in timer tests.

    >>> timer = PreciseTimer()
    >>> timer.read(1234.5)
    1234.5
    >>> timer.first_crossing(1000.0, 250.0)
    1250.0
    >>> timer.first_crossing(0.0, -1.0)
    Traceback (most recent call last):
        ...
    ValueError: elapsed must be non-negative, got -1.0
    """

    def read(self, t_real_ns: float) -> float:
        return float(t_real_ns)

    def first_crossing(self, t0_real_ns: float, elapsed_ns: float) -> float:
        if elapsed_ns < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed_ns}")
        return float(t0_real_ns + elapsed_ns)


class MonotonicQueryMixin:
    """Guards stateful timers against out-of-order queries."""

    def __init__(self) -> None:
        self._last_query_ns = float("-inf")

    def _check_monotonic(self, t_real_ns: float) -> None:
        if t_real_ns < self._last_query_ns:
            raise ValueError(
                f"timer queried backwards: {t_real_ns} after {self._last_query_ns}"
            )
        self._last_query_ns = float(t_real_ns)

    def _reset_monotonic(self) -> None:
        self._last_query_ns = float("-inf")
