"""The paper's randomized-timer defense (§6.1).

The timer increases monotonically with random increments at random
intervals.  Every Δ ms the browser draws two integers α, β uniformly
from a configured range and updates the returned value ``T_secure``:

* if ``T_real − T_secure < α·Δ`` — leave the value unchanged;
* if ``α·Δ ≤ T_real − T_secure < threshold`` — advance by ``β·Δ``;
* otherwise (lag exceeded the threshold) — snap to ``T_real + β·Δ``.

With the paper's parameters (α, β ~ U[5, 25], Δ = 1 ms, threshold =
100 ms) a single nominally-5-ms attacker period can span anywhere from
0 to ~100 ms of real time (Fig 8c), destroying the throughput signal and
driving closed-world accuracy to ~1 % (Table 4).
"""

from __future__ import annotations

import numpy as np

from repro.sim.events import MS
from repro.timers.base import BrowserTimer, MonotonicQueryMixin

#: Safety valve for first_crossing walks; generously above threshold/Δ.
_MAX_UPDATE_STEPS = 1_000_000


class RandomizedTimer(MonotonicQueryMixin, BrowserTimer):
    """Stateful randomized timer; queries must be monotone in real time."""

    def __init__(
        self,
        delta_ns: float = 1 * MS,
        alpha_range: tuple[int, int] = (5, 25),
        beta_range: tuple[int, int] = (5, 25),
        threshold_ns: float = 100 * MS,
        seed: int = 0,
    ):
        super().__init__()
        if delta_ns <= 0:
            raise ValueError(f"resolution must be positive, got {delta_ns}")
        if alpha_range[0] > alpha_range[1] or alpha_range[0] < 0:
            raise ValueError(f"invalid alpha range {alpha_range}")
        if beta_range[0] > beta_range[1] or beta_range[0] < 1:
            raise ValueError(f"invalid beta range {beta_range} (beta must advance time)")
        if threshold_ns <= 0:
            raise ValueError(f"threshold must be positive, got {threshold_ns}")
        self.delta_ns = float(delta_ns)
        self.alpha_range = (int(alpha_range[0]), int(alpha_range[1]))
        self.beta_range = (int(beta_range[0]), int(beta_range[1]))
        self.threshold_ns = float(threshold_ns)
        self.seed = int(seed)
        self.reset()

    def reset(self) -> None:
        """Restart the update process from time zero."""
        self._reset_monotonic()
        self._rng = np.random.default_rng(self.seed)
        self._next_update_ns = self.delta_ns
        self._secure_ns = 0.0

    def _apply_updates_until(self, t_real_ns: float) -> None:
        while self._next_update_ns <= t_real_ns:
            self._update_at(self._next_update_ns)
            self._next_update_ns += self.delta_ns

    def _update_at(self, t_real_ns: float) -> None:
        alpha = int(self._rng.integers(self.alpha_range[0], self.alpha_range[1] + 1))
        beta = int(self._rng.integers(self.beta_range[0], self.beta_range[1] + 1))
        lag = t_real_ns - self._secure_ns
        if lag < alpha * self.delta_ns:
            return
        if lag < self.threshold_ns:
            self._secure_ns += beta * self.delta_ns
        else:
            self._secure_ns = t_real_ns + beta * self.delta_ns

    def read(self, t_real_ns: float) -> float:
        self._check_monotonic(t_real_ns)
        self._apply_updates_until(t_real_ns)
        return self._secure_ns

    def first_crossing(self, t0_real_ns: float, elapsed_ns: float) -> float:
        if elapsed_ns < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed_ns}")
        start_value = self.read(t0_real_ns)
        if elapsed_ns == 0:
            return float(t0_real_ns)
        # The observed value only changes on update boundaries; walk them
        # on a snapshot of the update process.  The walk is a *peek*: the
        # update stream is deterministic, so restoring the state afterwards
        # lets a later read() at any time >= t0 (which the attacker loop
        # legitimately makes between t0 and the crossing) replay the same
        # updates instead of tripping the monotonicity check.
        saved_secure = self._secure_ns
        saved_next_update = self._next_update_ns
        saved_rng_state = self._rng.bit_generator.state
        try:
            t = float(t0_real_ns)
            for _ in range(_MAX_UPDATE_STEPS):
                if self._secure_ns - start_value >= elapsed_ns:
                    return max(t, float(t0_real_ns))
                t = self._next_update_ns
                self._apply_updates_until(t)
            raise RuntimeError(
                "randomized timer failed to advance; alpha/beta/threshold "
                "parameters leave the timer stuck"
            )
        finally:
            self._secure_ns = saved_secure
            self._next_update_ns = saved_next_update
            self._rng.bit_generator.state = saved_rng_state
