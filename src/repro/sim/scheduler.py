"""Scheduler contention model.

When the attacker process is not pinned to its own core, the OS
occasionally schedules a victim (or background) thread onto the
attacker's core for a time slice.  The attacker observes this as a long
execution gap that *starts* with a rescheduling interrupt — which is how
we represent it: a ``RESCHED_IPI`` record whose duration covers handler
plus the foreign time slice, labeled ``scheduler_contention`` so the
tracer can distinguish it.

Table 3 shows pinning attacker and victim to separate cores changes
accuracy by only ~0.2 %: contention is rare on a multi-core machine
whose browser threads have their own cores, so the default rate here is
low and proportional to system load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.events import MS, SEC, US
from repro.sim.interrupts import InterruptBatch, InterruptType
from repro.workload.phases import ActivityTimeline


@dataclass(frozen=True)
class SchedulerConfig:
    """Contention parameters.

    ``base_rate_hz`` is the rate of foreign time slices landing on the
    attacker's core at full system load; slices last between the two
    bounds (CFS grants sub-millisecond slices under multi-runnable load).
    """

    base_rate_hz: float = 3.0
    slice_min_ns: float = 80 * US
    slice_max_ns: float = 700 * US

    def __post_init__(self) -> None:
        if self.base_rate_hz < 0:
            raise ValueError("contention rate cannot be negative")
        if not 0 < self.slice_min_ns <= self.slice_max_ns:
            raise ValueError("invalid slice bounds")


def contention_batch(
    timeline: ActivityTimeline,
    config: SchedulerConfig,
    contention_scale: float,
    rng: np.random.Generator,
) -> InterruptBatch:
    """Foreign-slice events on the attacker's core for one run.

    The event rate follows the victim's instantaneous load, so even this
    nuisance channel is (weakly) correlated with website activity.
    """
    step_ns = 100 * MS
    window_starts = np.arange(0, timeline.horizon_ns, step_ns, dtype=np.float64)
    loads = timeline.load_at_array(window_starts)
    rates_hz = config.base_rate_hz * contention_scale * (0.15 + loads)
    counts = rng.poisson(rates_hz * (step_ns / SEC))
    starts = np.repeat(window_starts, counts)
    times_arr = np.sort(starts + rng.uniform(0.0, step_ns, len(starts)))
    slices = rng.uniform(config.slice_min_ns, config.slice_max_ns, len(times_arr))
    return InterruptBatch(
        itype=InterruptType.RESCHED_IPI,
        times=times_arr,
        durations=slices,
        cause="scheduler_contention",
    )
