"""Machine assembly: victim activity in, per-core interrupt timelines out.

``InterruptSynthesizer`` is the heart of the simulator.  Given a victim
:class:`~repro.workload.phases.ActivityTimeline` and a machine
configuration it generates every interrupt the machine would handle:

* per-core scheduler timer ticks,
* device IRQs for each activity burst, routed by the configured policy,
* deferred softirqs / IRQ work that piggyback near the triggering IRQ,
  placed wherever the kernel happens to process them (non-movable),
* rescheduling IPIs and broadcast TLB shootdowns from compute phases,
* load-driven timer-tick softirq work on every core,
* unrelated background device IRQs,
* scheduler contention slices (when the attacker is not pinned), and
* any extra injected batches (the §6.2 spurious-interrupt defense).

The result, a :class:`MachineRun`, carries one
:class:`~repro.sim.timeline.CoreTimeline` per core plus the DVFS
frequency schedule and the LLC occupancy curve — everything the
attackers and the kernel tracer observe.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.sim.events import MS, SEC
from repro.sim.frequency import FrequencyConfig, FrequencyTrace, TurboGovernor
from repro.sim.interrupts import (
    HandlerLatencyModel,
    InterruptBatch,
    InterruptType,
)
from repro.sim.routing import (
    AffinitySourceRouting,
    PinnedRouting,
    RoutingPolicy,
    SoftirqPlacement,
)
from repro.sim.scheduler import SchedulerConfig, contention_batch
from repro.sim.timeline import CoreTimeline
from repro.sim.vm import BARE_METAL, VmConfig
from repro.workload.browser import LINUX, OperatingSystem
from repro.workload.phases import (
    KIND_PROFILES,
    ActivityBurst,
    ActivityTimeline,
    BurstKind,
)
from repro.workload.website import SiteStyle

#: Burst kind -> (device IRQ type, deferred softirq type).
_KIND_IRQS: dict[BurstKind, tuple[Optional[InterruptType], Optional[InterruptType]]] = {
    BurstKind.NETWORK: (InterruptType.NETWORK_RX, InterruptType.SOFTIRQ_NET_RX),
    BurstKind.RENDER: (InterruptType.GRAPHICS, InterruptType.IRQ_WORK),
    BurstKind.COMPUTE: (None, None),  # compute emits IPIs, handled separately
    BurstKind.MEMORY: (None, None),
    BurstKind.DISK: (InterruptType.DISK, InterruptType.SOFTIRQ_TASKLET),
    BurstKind.INPUT: (InterruptType.KEYBOARD, None),
}

#: TLB shootdowns accompany rescheduling activity (observed in §5.2:
#: "rescheduling interrupts ... often occur alongside TLB shootdowns").
_TLB_FRACTION_OF_RESCHED = 0.45
#: Deferred work runs shortly after its trigger (next tick or wakeup).
_DEFERRED_DELAY_MEAN_NS = 0.5 * MS
#: Probability a deferred item runs inside the next timer tick on its
#: core (vs an immediate wakeup).  Piggybacked items merge into the
#: tick's execution gap, which is why Fig 6's IRQ-work spike aligns
#: with the timer-interrupt spike.  IRQ work cannot fire on its own at
#: all, so it snaps almost always.
_DEFERRED_TICK_SNAP_PROBABILITY = 0.7
_IRQ_WORK_TICK_SNAP_PROBABILITY = 0.95
#: Softirq-timer work per tick grows with system load (calibrated).
_TICK_WORK_LOAD_FACTOR = 14.0
#: Global rate multiplier applied to burst-driven interrupts (calibrated
#: so full-intensity overlapping bursts steal ~15-20 % of a core).
_BURST_RATE_SCALE = 2.0

#: Rate of Turbo Boost transition stalls per core when enabled.
_TURBO_ARTIFACT_RATE_HZ = 220.0

#: Test-only fault flag (any value): perturbs one vectorized RNG-derived
#: arrival so the repro.verify sim.synthesize oracle visibly fails.  The
#: acceptance path for the differential harness — never set in production.
_PERTURB_ENV_VAR = "BIGGERFISH_SIM_PERTURB"

#: Stable interrupt-type ordering for grouped duration sampling: batched
#: generation draws one latency sample per *type* rather than per burst,
#: and the groups must be visited in a deterministic order.
_TYPE_ORDER: dict[InterruptType, int] = {t: i for i, t in enumerate(InterruptType)}

#: Attacker-observable cache occupancy (see _distort_occupancy): the
#: victim's nominal occupancy is capped by the sweeping attacker's own
#: re-claims (residency), scaled by a per-run gain, and buried in
#: ambient eviction noise from unrelated processes and prefetchers —
#: noise that exists regardless of the victim, which is why the cache
#: channel's SNR is poor (Takeaway 2).
_OCCUPANCY_RESIDENCY = 0.12
_OCCUPANCY_GAIN_SIGMA = 0.30
_OCCUPANCY_NOISE_SIGMA = 0.15
_OCCUPANCY_NOISE_SMOOTHING = 15



@dataclass(frozen=True)
class MachineConfig:
    """Static configuration of the simulated machine."""

    n_cores: int = 4
    os: OperatingSystem = LINUX
    frequency: FrequencyConfig = field(default_factory=FrequencyConfig)
    vm: VmConfig = BARE_METAL
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Pin all movable IRQs to core 0 (Linux ``irqbalance``, Table 3).
    irqbalance: bool = False
    #: Pin attacker and victim to separate cores (``taskset``, Table 3).
    pin_cores: bool = False
    #: Model Intel Turbo Boost's unexplained execution stalls (paper
    #: footnote 4): gaps that correspond to no OS activity.  The paper
    #: runs with Turbo Boost *disabled* to get clean attribution, so the
    #: default is off.
    turbo_boost_artifacts: bool = False
    #: Core the attacker process runs on.
    attacker_core: int = 1

    def __post_init__(self) -> None:
        if self.n_cores < 2:
            raise ValueError("the co-located attack model needs >= 2 cores")
        if not 0 <= self.attacker_core < self.n_cores:
            raise ValueError(
                f"attacker core {self.attacker_core} out of range for {self.n_cores} cores"
            )

    def routing_policy(self) -> RoutingPolicy:
        """Movable-IRQ routing under this configuration."""
        if self.irqbalance:
            # Pin device IRQs to a housekeeping core that is not the
            # attacker's (core 0 by convention; the attacker uses core 1).
            target = 0 if self.attacker_core != 0 else 1
            return PinnedRouting(self.n_cores, target_core=target)
        return AffinitySourceRouting(self.n_cores)

    def with_isolation(self, **changes) -> "MachineConfig":
        """Copy with isolation-mechanism fields replaced."""
        return replace(self, **changes)


@dataclass
class MachineRun:
    """Everything observable from one simulated victim run.

    Occupancy is kept as two components: ``occupancy_victim`` is the
    victim's (residency-capped, gain-scaled) share of the LLC as a
    sweeping attacker can observe it; ``occupancy_ambient`` is eviction
    noise from unrelated processes and prefetchers — present regardless
    of the victim.  Noise countermeasures manipulate the two components
    differently (a cache-sweeping defender shrinks the victim's share
    while *raising* the ambient level).
    """

    cores: list[CoreTimeline]
    frequency: FrequencyTrace
    occupancy_times: np.ndarray
    occupancy_victim: np.ndarray
    occupancy_ambient: np.ndarray
    config: MachineConfig
    timeline: ActivityTimeline

    @property
    def attacker_timeline(self) -> CoreTimeline:
        """Interrupt history of the attacker's core."""
        return self.cores[self.config.attacker_core]

    def occupancy_at(self, t_ns: np.ndarray | float) -> np.ndarray | float:
        """Observable LLC occupancy in [0, 1] at time(s) ``t_ns``."""
        victim, ambient = self.occupancy_components_at(t_ns)
        return np.clip(victim + ambient, 0.0, 1.0)

    def occupancy_components_at(
        self, t_ns: np.ndarray | float
    ) -> tuple[np.ndarray | float, np.ndarray | float]:
        """``(victim, ambient)`` occupancy components at ``t_ns``."""
        victim = np.interp(t_ns, self.occupancy_times, self.occupancy_victim)
        ambient = np.interp(t_ns, self.occupancy_times, self.occupancy_ambient)
        return victim, ambient


class InterruptSynthesizer:
    """Generates a :class:`MachineRun` from a victim activity timeline."""

    def __init__(self, config: MachineConfig):
        self.config = config
        platform = config.os.handler_cost_factor
        self.latency_model = HandlerLatencyModel(platform_factor=platform)
        self.softirq_placement = SoftirqPlacement(
            follow_probability=config.os.softirq_follow_probability
        )
        self._governor = TurboGovernor(config.frequency)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def synthesize(
        self,
        timeline: ActivityTimeline,
        style: SiteStyle | None = None,
        rng: np.random.Generator | None = None,
        extra_batches: Optional[Sequence[tuple[int, InterruptBatch]]] = None,
    ) -> MachineRun:
        """Simulate one victim run.

        ``rng`` is required: every interrupt the synthesizer emits must
        come from a caller-seeded stream so a trace stays a pure function
        of ``(spec, seed)``.  ``extra_batches`` is a list of ``(core,
        batch)`` pairs injected on top of workload-driven interrupts
        (used by noise defenses).
        """
        style = style or SiteStyle()
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "synthesize() requires a seeded np.random.Generator (got "
                f"{type(rng).__name__}); derive one from the spec seed, e.g. "
                "np.random.default_rng(spec.seed)"
            )
        span = obs.span("sim.synthesize", horizon_ns=int(timeline.horizon_ns))
        with span:
            per_core: list[list[InterruptBatch]] = [
                [] for _ in range(self.config.n_cores)
            ]

            tick_period_ns = SEC / self.config.os.tick_hz
            tick_phases = rng.uniform(0, tick_period_ns, self.config.n_cores)
            self._add_timer_ticks(per_core, timeline, rng, tick_phases)
            self._add_burst_interrupts(per_core, timeline, style, rng, tick_phases)
            self._add_tick_work(per_core, timeline, rng, tick_phases)
            self._add_background(per_core, timeline.horizon_ns, rng)
            if self.config.turbo_boost_artifacts:
                self._add_turbo_artifacts(per_core, timeline, rng)
            if not self.config.pin_cores:
                batch = contention_batch(
                    timeline, self.config.scheduler, self.config.os.contention_scale, rng
                )
                per_core[self.config.attacker_core].append(batch)
            for core, batch in extra_batches or ():
                per_core[core].append(batch)

            n_events = sum(len(b.times) for batches in per_core for b in batches)
            obs.counter("sim.events_processed").inc(n_events)
            span.set(events=n_events)

            cores = [self._build_core(batches) for batches in per_core]
            frequency = self._governor.run(
                timeline.load_at_array, timeline.horizon_ns, rng
            )
            occ_times, occ_nominal = timeline.occupancy_curve()
            occ_victim, occ_ambient = self._distort_occupancy(occ_nominal, rng)
        return MachineRun(
            cores=cores,
            frequency=frequency,
            occupancy_times=occ_times,
            occupancy_victim=occ_victim,
            occupancy_ambient=occ_ambient,
            config=self.config,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    # generation stages
    # ------------------------------------------------------------------

    def _distort_occupancy(
        self, occupancy: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convert nominal victim occupancy into the attacker-observable one.

        Three distortions, all rooted in how a sweeping attacker actually
        measures the LLC: (1) the victim's residency is capped — the
        attacker's constant sweeps re-claim lines, so the victim never
        holds much of the cache; (2) a per-run gain (working-set size
        varies across loads); (3) ambient, temporally-correlated eviction
        noise from unrelated processes and prefetchers that is present
        *regardless of the victim*.  The ambient noise does not shrink
        when the victim's signal does, which is what makes the coarse
        (0..~32 counts) cache channel far less reliable than the
        fine-grained interrupt channel — the paper's central observation.
        """
        gain = rng.lognormal(0.0, _OCCUPANCY_GAIN_SIGMA)
        white = rng.normal(0.0, _OCCUPANCY_NOISE_SIGMA, len(occupancy))
        kernel = np.ones(_OCCUPANCY_NOISE_SMOOTHING) / _OCCUPANCY_NOISE_SMOOTHING
        ambient = np.abs(np.convolve(white, kernel, mode="same"))
        victim = np.clip(_OCCUPANCY_RESIDENCY * occupancy * gain, 0.0, 1.0)
        return victim, ambient

    def _build_core(self, batches: list[InterruptBatch]) -> CoreTimeline:
        if self.config.vm.enabled:
            batches = [
                InterruptBatch(
                    itype=b.itype,
                    times=b.times,
                    durations=self.config.vm.transform_durations(b.durations),
                    cause=b.cause,
                )
                for b in batches
            ]
        return CoreTimeline.from_batches(batches)

    def _next_tick(
        self, t: np.ndarray, core: np.ndarray, tick_phases: np.ndarray
    ) -> np.ndarray:
        """Time of the next timer tick at or after ``t`` on each core."""
        period_ns = SEC / self.config.os.tick_hz
        phase = tick_phases[core]
        return phase + np.ceil(np.maximum(t - phase, 0.0) / period_ns) * period_ns

    def _add_timer_ticks(
        self,
        per_core: list[list[InterruptBatch]],
        timeline: ActivityTimeline,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        period_ns = SEC / self.config.os.tick_hz
        for core in range(self.config.n_cores):
            phase = tick_phases[core]
            times = np.arange(phase, timeline.horizon_ns, period_ns, dtype=np.float64)
            durations = self.latency_model.sample(InterruptType.TIMER, rng, len(times))
            per_core[core].append(
                InterruptBatch(InterruptType.TIMER, times, durations, cause="tick")
            )

    def _poisson_times(
        self,
        burst: ActivityBurst,
        rate_hz: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Arrival times within a burst, honouring its micro-structure.

        With ``ripple_hz`` set, arrivals concentrate in the on-phase of
        an on/off pulse train (packet trains, frame cadence); the mean
        rate over the burst is unchanged.

        This is the single-burst reference implementation; the synthesis
        hot path uses :meth:`_poisson_times_batch`, which draws the same
        distribution for many bursts at once.
        """
        expected = rate_hz * burst.duration_ns / SEC
        count = rng.poisson(expected)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        if burst.ripple_hz <= 0:
            return np.sort(rng.uniform(burst.start_ns, burst.end_ns, count))
        period_ns = SEC / burst.ripple_hz
        n_windows = max(int(burst.duration_ns / period_ns), 1)
        on_len_ns = burst.duty * period_ns
        window = rng.integers(0, n_windows, count)
        offset = rng.uniform(0.0, on_len_ns, count)
        times = burst.start_ns + window * period_ns + offset
        return np.sort(np.clip(times, burst.start_ns, burst.end_ns))

    def _poisson_times_batch(
        self,
        bursts: Sequence[ActivityBurst],
        rates_hz: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`_poisson_times` across many bursts.

        Returns ``(times, owners)`` where ``owners[i]`` indexes the burst
        each arrival belongs to.  Counts, ripple windows and offsets for
        every burst come from single vectorized draws (a homogeneous
        burst is one full-duty ripple window), so the RNG draw *order*
        differs from the per-burst reference while each arrival keeps the
        same distribution.
        """
        if not bursts:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        durations = np.array([b.duration_ns for b in bursts], dtype=np.float64)
        starts = np.array([b.start_ns for b in bursts], dtype=np.float64)
        ripple = np.array([b.ripple_hz for b in bursts], dtype=np.float64)
        duty = np.array([b.duty for b in bursts], dtype=np.float64)
        rippled = ripple > 0
        period = np.where(rippled, SEC / np.where(rippled, ripple, 1.0), durations)
        n_windows = np.maximum((durations / period).astype(np.int64), 1)
        on_len = np.where(rippled, duty * period, durations)
        counts = rng.poisson(np.asarray(rates_hz, dtype=np.float64) * durations / SEC)
        owners = np.repeat(np.arange(len(bursts)), counts)
        if not len(owners):
            return np.empty(0, dtype=np.float64), owners
        # Window draws use one scalar-bound call per multi-window burst:
        # scalar-bound integer generation is several times faster than the
        # per-element array-bound path, and single-window bursts need no
        # draw at all (the window is always 0).
        window = np.zeros(len(owners), dtype=np.float64)
        bounds = np.searchsorted(owners, np.arange(len(bursts) + 1))
        for i in range(len(bursts)):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi > lo and n_windows[i] > 1:
                window[lo:hi] = rng.integers(0, n_windows[i], hi - lo)
        offset = rng.random(len(owners))
        offset *= on_len[owners]
        # Build arrival times in place on the window array (owned here).
        times = window
        times *= period[owners]
        times += starts[owners]
        times += offset
        if rippled.any():
            np.clip(times, starts[owners], starts[owners] + durations[owners], out=times)
        if _PERTURB_ENV_VAR in os.environ:
            # Test-only fault injection for the verify harness: nudging a
            # single arrival must trip the sim.synthesize oracle (the
            # reference synthesizer overrides this method and is unmoved).
            times = times.copy()
            times[0] += 1.0
        return times, owners

    def _sample_durations_grouped(
        self,
        burst_types: Sequence[Optional[InterruptType]],
        owners: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Handler durations for ``owners``-indexed arrivals, one latency
        draw per distinct interrupt type (visited in enum order).

        ``owners`` is sorted, so each burst occupies one contiguous slice;
        a type's arrivals are the concatenation of its bursts' slices, and
        one batched draw per type is split across them in order.
        """
        durations = np.empty(len(owners), dtype=np.float64)
        bounds = np.searchsorted(owners, np.arange(len(burst_types) + 1))
        slices_by_type: dict[InterruptType, list[tuple[int, int]]] = {}
        for i, itype in enumerate(burst_types):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if itype is not None and hi > lo:
                slices_by_type.setdefault(itype, []).append((lo, hi))
        for itype in sorted(slices_by_type, key=_TYPE_ORDER.__getitem__):
            slices = slices_by_type[itype]
            draws = self.latency_model.sample(
                itype, rng, sum(hi - lo for lo, hi in slices)
            )
            offset = 0
            for lo, hi in slices:
                durations[lo:hi] = draws[offset : offset + (hi - lo)]
                offset += hi - lo
        return durations

    def _add_burst_interrupts(
        self,
        per_core: list[list[InterruptBatch]],
        timeline: ActivityTimeline,
        style: SiteStyle,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        """Workload-driven interrupts for every burst, generated batched.

        Device bursts and compute bursts are partitioned once; all RNG
        work (arrival counts and times, routing spreads, handler
        durations, deferred-work placement) is drawn across bursts in
        vectorized batches.  Per-burst python work shrinks to routing and
        the final per-(burst, core) appends, which preserve each burst's
        ``source`` for tracer attribution.
        """
        device_bursts = [
            b
            for b in timeline
            if b.kind is not BurstKind.COMPUTE and _KIND_IRQS[b.kind][0] is not None
        ]
        if device_bursts:
            self._add_device_irqs(
                per_core, device_bursts, style, rng, tick_phases
            )
        self._add_compute_ipis(
            per_core, timeline.of_kind(BurstKind.COMPUTE), style, rng
        )

    def _add_device_irqs(
        self,
        per_core: list[list[InterruptBatch]],
        bursts: Sequence[ActivityBurst],
        style: SiteStyle,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        routing = self.config.routing_policy()
        rates = np.array(
            [
                KIND_PROFILES[b.kind].irq_rate_hz * b.intensity * _BURST_RATE_SCALE
                for b in bursts
            ]
        )
        times, owners = self._poisson_times_batch(bursts, rates, rng)
        if not len(times):
            return
        # ``owners`` is sorted by construction (np.repeat), so each
        # burst's arrivals form a contiguous slice — no boolean masks.
        bounds = np.searchsorted(owners, np.arange(len(bursts) + 1))
        targets = np.empty(len(times), dtype=np.int64)
        for i, burst in enumerate(bursts):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi > lo:
                targets[lo:hi] = routing.route_source(burst.source, hi - lo, rng)
        device_types = [_KIND_IRQS[b.kind][0] for b in bursts]
        durations = self._sample_durations_grouped(device_types, owners, rng)
        for i, burst in enumerate(bursts):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi > lo:
                self._scatter(
                    per_core,
                    device_types[i],
                    times[lo:hi],
                    durations[lo:hi],
                    targets[lo:hi],
                    burst.source,
                )
        self._add_deferred(
            per_core, bursts, style, times, owners, targets, rng, tick_phases
        )

    def _scatter(
        self,
        per_core: list[list[InterruptBatch]],
        itype: InterruptType,
        times: np.ndarray,
        durations: np.ndarray,
        targets: np.ndarray,
        cause: str,
    ) -> None:
        if not len(targets):
            return
        first = int(targets[0])
        if bool((targets == first).all()):
            # Affinity/pinned routing sends a whole burst to one core.
            per_core[first].append(
                InterruptBatch(itype, times, durations, cause=cause)
            )
            return
        for core in np.unique(targets):
            mask = targets == core
            per_core[int(core)].append(
                InterruptBatch(itype, times[mask], durations[mask], cause=cause)
            )

    def _add_deferred(
        self,
        per_core: list[list[InterruptBatch]],
        bursts: Sequence[ActivityBurst],
        style: SiteStyle,
        trigger_times: np.ndarray,
        owners: np.ndarray,
        trigger_cores: np.ndarray,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        """Softirqs / IRQ work piggybacking on the device IRQs of all bursts."""
        deferred_types = [_KIND_IRQS[b.kind][1] for b in bursts]
        profiles = [KIND_PROFILES[b.kind] for b in bursts]
        coalescing = np.array(
            [
                style.net_coalescing if t is InterruptType.SOFTIRQ_NET_RX else 1.0
                for t in deferred_types
            ]
        )
        keep_probability = np.array(
            [
                0.0 if t is None else min(p.deferred_per_irq / c, 1.0)
                for t, p, c in zip(deferred_types, profiles, coalescing)
            ]
        )
        keep = rng.random(len(trigger_times)) < keep_probability[owners]
        if not keep.any():
            return
        deferred_owners = owners[keep]
        times = trigger_times[keep]
        times += rng.exponential(_DEFERRED_DELAY_MEAN_NS, len(times))
        cores = self.softirq_placement.place(
            trigger_cores[keep], self.config.n_cores, rng
        )
        # Most deferred items drain inside the next timer tick on their
        # core; the rest run on an immediate wakeup.
        snap_probability = np.array(
            [
                _IRQ_WORK_TICK_SNAP_PROBABILITY
                if t is InterruptType.IRQ_WORK
                else _DEFERRED_TICK_SNAP_PROBABILITY
                for t in deferred_types
            ]
        )
        snap = rng.random(len(times)) < snap_probability[deferred_owners]
        times[snap] = self._next_tick(times[snap], cores[snap], tick_phases)
        durations = self._sample_durations_grouped(deferred_types, deferred_owners, rng)
        # Heavier bursts defer more work per softirq -> longer handlers.
        # IRQ work is exempt: it only queues/kicks off the deferred
        # operation, so its own handler stays short (Fig 6).
        load_stretch = np.array(
            [
                1.0
                if t is None or t is InterruptType.IRQ_WORK
                else 1.0 + p.duration_load_factor * b.intensity * c
                for t, p, b, c in zip(deferred_types, profiles, bursts, coalescing)
            ]
        )
        durations *= load_stretch[deferred_owners]
        bounds = np.searchsorted(deferred_owners, np.arange(len(bursts) + 1))
        for i, burst in enumerate(bursts):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi > lo:
                self._scatter(
                    per_core,
                    deferred_types[i],
                    times[lo:hi],
                    durations[lo:hi],
                    cores[lo:hi],
                    f"{burst.source}/deferred",
                )

    def _add_compute_ipis(
        self,
        per_core: list[list[InterruptBatch]],
        bursts: Sequence[ActivityBurst],
        style: SiteStyle,
        rng: np.random.Generator,
    ) -> None:
        """Rescheduling IPIs and TLB shootdowns for all compute bursts."""
        if not bursts:
            return
        profile = KIND_PROFILES[BurstKind.COMPUTE]
        intensities = np.array([b.intensity for b in bursts])
        rates = (
            profile.irq_rate_hz
            * intensities
            * style.resched_weight
            * _BURST_RATE_SCALE
        )
        resched_times, owners = self._poisson_times_batch(bursts, rates, rng)
        if len(resched_times):
            targets = rng.integers(0, self.config.n_cores, len(resched_times))
            durations = self.latency_model.sample(
                InterruptType.RESCHED_IPI, rng, len(resched_times)
            )
            stretch = 1.0 + profile.duration_load_factor * intensities
            durations *= stretch[owners]
            bounds = np.searchsorted(owners, np.arange(len(bursts) + 1))
            for i, burst in enumerate(bursts):
                lo, hi = int(bounds[i]), int(bounds[i + 1])
                if hi > lo:
                    self._scatter(
                        per_core,
                        InterruptType.RESCHED_IPI,
                        resched_times[lo:hi],
                        durations[lo:hi],
                        targets[lo:hi],
                        burst.source,
                    )
        # TLB shootdowns broadcast to every core.
        tlb_times, tlb_owners = self._poisson_times_batch(
            bursts, rates * _TLB_FRACTION_OF_RESCHED, rng
        )
        if len(tlb_times):
            tlb_bounds = np.searchsorted(tlb_owners, np.arange(len(bursts) + 1))
            for core in range(self.config.n_cores):
                durations = self.latency_model.sample(
                    InterruptType.TLB_SHOOTDOWN, rng, len(tlb_times)
                )
                for i, burst in enumerate(bursts):
                    lo, hi = int(tlb_bounds[i]), int(tlb_bounds[i + 1])
                    if hi > lo:
                        per_core[core].append(
                            InterruptBatch(
                                InterruptType.TLB_SHOOTDOWN,
                                tlb_times[lo:hi],
                                durations[lo:hi],
                                cause=f"{burst.source}/tlb",
                            )
                        )

    def _add_tick_work(
        self,
        per_core: list[list[InterruptBatch]],
        timeline: ActivityTimeline,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        """Load-proportional softirq work attached to timer ticks.

        The kernel drains deferred timer work on every tick; under load
        this work grows, stretching the gap each tick causes on *every*
        core — a purely non-movable leakage path.  Arrivals coincide
        with the core's tick times so the work merges into the tick's
        execution gap.
        """
        period_ns = SEC / self.config.os.tick_hz
        for core in range(self.config.n_cores):
            phase = tick_phases[core]
            ticks = np.arange(phase, timeline.horizon_ns, period_ns, dtype=np.float64)
            loads = timeline.load_at_array(ticks)
            active = loads > 0.02
            if not active.any():
                continue
            times = ticks[active]
            durations = self.latency_model.sample(
                InterruptType.SOFTIRQ_TIMER, rng, len(times)
            )
            durations = durations * (1.0 + _TICK_WORK_LOAD_FACTOR * loads[active])
            per_core[core].append(
                InterruptBatch(
                    InterruptType.SOFTIRQ_TIMER, times, durations, cause="tick_work"
                )
            )

    def _add_turbo_artifacts(
        self,
        per_core: list[list[InterruptBatch]],
        timeline: ActivityTimeline,
        rng: np.random.Generator,
    ) -> None:
        """Turbo-transition stalls on every core (footnote 4).

        Frequency transitions cluster around load changes; the stalls
        are user-visible execution gaps that no kernel probe explains.
        """
        for core in range(self.config.n_cores):
            expected = _TURBO_ARTIFACT_RATE_HZ * timeline.horizon_ns / SEC
            count = rng.poisson(expected)
            if not count:
                continue
            times = np.sort(rng.uniform(0, timeline.horizon_ns, count))
            durations = self.latency_model.sample(InterruptType.UNKNOWN, rng, count)
            per_core[core].append(
                InterruptBatch(
                    InterruptType.UNKNOWN, times, durations, cause="turbo_boost"
                )
            )

    def _add_background(
        self,
        per_core: list[list[InterruptBatch]],
        horizon_ns: int,
        rng: np.random.Generator,
    ) -> None:
        routing = self.config.routing_policy()
        sources = (
            ("system/bg-net", InterruptType.NETWORK_RX, 0.45),
            ("system/bg-disk", InterruptType.DISK, 0.35),
            ("system/bg-usb", InterruptType.KEYBOARD, 0.20),
        )
        for source, itype, share in sources:
            expected = self.config.os.background_irq_hz * share * horizon_ns / SEC
            count = rng.poisson(expected)
            if not count:
                continue
            times = np.sort(rng.uniform(0, horizon_ns, count))
            targets = routing.route_source(source, count, rng)
            durations = self.latency_model.sample(itype, rng, count)
            self._scatter(per_core, itype, times, durations, targets, source)
