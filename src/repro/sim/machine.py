"""Machine assembly: victim activity in, per-core interrupt timelines out.

``InterruptSynthesizer`` is the heart of the simulator.  Given a victim
:class:`~repro.workload.phases.ActivityTimeline` and a machine
configuration it generates every interrupt the machine would handle:

* per-core scheduler timer ticks,
* device IRQs for each activity burst, routed by the configured policy,
* deferred softirqs / IRQ work that piggyback near the triggering IRQ,
  placed wherever the kernel happens to process them (non-movable),
* rescheduling IPIs and broadcast TLB shootdowns from compute phases,
* load-driven timer-tick softirq work on every core,
* unrelated background device IRQs,
* scheduler contention slices (when the attacker is not pinned), and
* any extra injected batches (the §6.2 spurious-interrupt defense).

The result, a :class:`MachineRun`, carries one
:class:`~repro.sim.timeline.CoreTimeline` per core plus the DVFS
frequency schedule and the LLC occupancy curve — everything the
attackers and the kernel tracer observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.sim.events import MS, SEC
from repro.sim.frequency import FrequencyConfig, FrequencyTrace, TurboGovernor
from repro.sim.interrupts import (
    HandlerLatencyModel,
    InterruptBatch,
    InterruptType,
)
from repro.sim.routing import (
    AffinitySourceRouting,
    PinnedRouting,
    RoutingPolicy,
    SoftirqPlacement,
)
from repro.sim.scheduler import SchedulerConfig, contention_batch
from repro.sim.timeline import CoreTimeline
from repro.sim.vm import BARE_METAL, VmConfig
from repro.workload.browser import LINUX, OperatingSystem
from repro.workload.phases import (
    KIND_PROFILES,
    ActivityBurst,
    ActivityTimeline,
    BurstKind,
)
from repro.workload.website import SiteStyle

#: Burst kind -> (device IRQ type, deferred softirq type).
_KIND_IRQS: dict[BurstKind, tuple[Optional[InterruptType], Optional[InterruptType]]] = {
    BurstKind.NETWORK: (InterruptType.NETWORK_RX, InterruptType.SOFTIRQ_NET_RX),
    BurstKind.RENDER: (InterruptType.GRAPHICS, InterruptType.IRQ_WORK),
    BurstKind.COMPUTE: (None, None),  # compute emits IPIs, handled separately
    BurstKind.MEMORY: (None, None),
    BurstKind.DISK: (InterruptType.DISK, InterruptType.SOFTIRQ_TASKLET),
    BurstKind.INPUT: (InterruptType.KEYBOARD, None),
}

#: TLB shootdowns accompany rescheduling activity (observed in §5.2:
#: "rescheduling interrupts ... often occur alongside TLB shootdowns").
_TLB_FRACTION_OF_RESCHED = 0.45
#: Deferred work runs shortly after its trigger (next tick or wakeup).
_DEFERRED_DELAY_MEAN_NS = 0.5 * MS
#: Probability a deferred item runs inside the next timer tick on its
#: core (vs an immediate wakeup).  Piggybacked items merge into the
#: tick's execution gap, which is why Fig 6's IRQ-work spike aligns
#: with the timer-interrupt spike.  IRQ work cannot fire on its own at
#: all, so it snaps almost always.
_DEFERRED_TICK_SNAP_PROBABILITY = 0.7
_IRQ_WORK_TICK_SNAP_PROBABILITY = 0.95
#: Softirq-timer work per tick grows with system load (calibrated).
_TICK_WORK_LOAD_FACTOR = 14.0
#: Global rate multiplier applied to burst-driven interrupts (calibrated
#: so full-intensity overlapping bursts steal ~15-20 % of a core).
_BURST_RATE_SCALE = 2.0

#: Rate of Turbo Boost transition stalls per core when enabled.
_TURBO_ARTIFACT_RATE_HZ = 220.0

#: Attacker-observable cache occupancy (see _distort_occupancy): the
#: victim's nominal occupancy is capped by the sweeping attacker's own
#: re-claims (residency), scaled by a per-run gain, and buried in
#: ambient eviction noise from unrelated processes and prefetchers —
#: noise that exists regardless of the victim, which is why the cache
#: channel's SNR is poor (Takeaway 2).
_OCCUPANCY_RESIDENCY = 0.12
_OCCUPANCY_GAIN_SIGMA = 0.30
_OCCUPANCY_NOISE_SIGMA = 0.15
_OCCUPANCY_NOISE_SMOOTHING = 15



@dataclass(frozen=True)
class MachineConfig:
    """Static configuration of the simulated machine."""

    n_cores: int = 4
    os: OperatingSystem = LINUX
    frequency: FrequencyConfig = field(default_factory=FrequencyConfig)
    vm: VmConfig = BARE_METAL
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Pin all movable IRQs to core 0 (Linux ``irqbalance``, Table 3).
    irqbalance: bool = False
    #: Pin attacker and victim to separate cores (``taskset``, Table 3).
    pin_cores: bool = False
    #: Model Intel Turbo Boost's unexplained execution stalls (paper
    #: footnote 4): gaps that correspond to no OS activity.  The paper
    #: runs with Turbo Boost *disabled* to get clean attribution, so the
    #: default is off.
    turbo_boost_artifacts: bool = False
    #: Core the attacker process runs on.
    attacker_core: int = 1

    def __post_init__(self) -> None:
        if self.n_cores < 2:
            raise ValueError("the co-located attack model needs >= 2 cores")
        if not 0 <= self.attacker_core < self.n_cores:
            raise ValueError(
                f"attacker core {self.attacker_core} out of range for {self.n_cores} cores"
            )

    def routing_policy(self) -> RoutingPolicy:
        """Movable-IRQ routing under this configuration."""
        if self.irqbalance:
            # Pin device IRQs to a housekeeping core that is not the
            # attacker's (core 0 by convention; the attacker uses core 1).
            target = 0 if self.attacker_core != 0 else 1
            return PinnedRouting(self.n_cores, target_core=target)
        return AffinitySourceRouting(self.n_cores)

    def with_isolation(self, **changes) -> "MachineConfig":
        """Copy with isolation-mechanism fields replaced."""
        return replace(self, **changes)


@dataclass
class MachineRun:
    """Everything observable from one simulated victim run.

    Occupancy is kept as two components: ``occupancy_victim`` is the
    victim's (residency-capped, gain-scaled) share of the LLC as a
    sweeping attacker can observe it; ``occupancy_ambient`` is eviction
    noise from unrelated processes and prefetchers — present regardless
    of the victim.  Noise countermeasures manipulate the two components
    differently (a cache-sweeping defender shrinks the victim's share
    while *raising* the ambient level).
    """

    cores: list[CoreTimeline]
    frequency: FrequencyTrace
    occupancy_times: np.ndarray
    occupancy_victim: np.ndarray
    occupancy_ambient: np.ndarray
    config: MachineConfig
    timeline: ActivityTimeline

    @property
    def attacker_timeline(self) -> CoreTimeline:
        """Interrupt history of the attacker's core."""
        return self.cores[self.config.attacker_core]

    def occupancy_at(self, t_ns: np.ndarray | float) -> np.ndarray | float:
        """Observable LLC occupancy in [0, 1] at time(s) ``t_ns``."""
        victim, ambient = self.occupancy_components_at(t_ns)
        return np.clip(victim + ambient, 0.0, 1.0)

    def occupancy_components_at(
        self, t_ns: np.ndarray | float
    ) -> tuple[np.ndarray | float, np.ndarray | float]:
        """``(victim, ambient)`` occupancy components at ``t_ns``."""
        victim = np.interp(t_ns, self.occupancy_times, self.occupancy_victim)
        ambient = np.interp(t_ns, self.occupancy_times, self.occupancy_ambient)
        return victim, ambient


class InterruptSynthesizer:
    """Generates a :class:`MachineRun` from a victim activity timeline."""

    def __init__(self, config: MachineConfig):
        self.config = config
        platform = config.os.handler_cost_factor
        self.latency_model = HandlerLatencyModel(platform_factor=platform)
        self.softirq_placement = SoftirqPlacement(
            follow_probability=config.os.softirq_follow_probability
        )
        self._governor = TurboGovernor(config.frequency)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def synthesize(
        self,
        timeline: ActivityTimeline,
        style: SiteStyle | None = None,
        rng: np.random.Generator | None = None,
        extra_batches: Optional[Sequence[tuple[int, InterruptBatch]]] = None,
    ) -> MachineRun:
        """Simulate one victim run.

        ``rng`` is required: every interrupt the synthesizer emits must
        come from a caller-seeded stream so a trace stays a pure function
        of ``(spec, seed)``.  ``extra_batches`` is a list of ``(core,
        batch)`` pairs injected on top of workload-driven interrupts
        (used by noise defenses).
        """
        style = style or SiteStyle()
        if not isinstance(rng, np.random.Generator):
            raise TypeError(
                "synthesize() requires a seeded np.random.Generator (got "
                f"{type(rng).__name__}); derive one from the spec seed, e.g. "
                "np.random.default_rng(spec.seed)"
            )
        span = obs.span("sim.synthesize", horizon_ns=int(timeline.horizon_ns))
        with span:
            per_core: list[list[InterruptBatch]] = [
                [] for _ in range(self.config.n_cores)
            ]

            tick_period_ns = SEC / self.config.os.tick_hz
            tick_phases = rng.uniform(0, tick_period_ns, self.config.n_cores)
            self._add_timer_ticks(per_core, timeline, rng, tick_phases)
            self._add_burst_interrupts(per_core, timeline, style, rng, tick_phases)
            self._add_tick_work(per_core, timeline, rng, tick_phases)
            self._add_background(per_core, timeline.horizon_ns, rng)
            if self.config.turbo_boost_artifacts:
                self._add_turbo_artifacts(per_core, timeline, rng)
            if not self.config.pin_cores:
                batch = contention_batch(
                    timeline, self.config.scheduler, self.config.os.contention_scale, rng
                )
                per_core[self.config.attacker_core].append(batch)
            for core, batch in extra_batches or ():
                per_core[core].append(batch)

            n_events = sum(len(b.times) for batches in per_core for b in batches)
            obs.counter("sim.events_processed").inc(n_events)
            span.set(events=n_events)

            cores = [self._build_core(batches) for batches in per_core]
            frequency = self._governor.run(timeline.load_at, timeline.horizon_ns, rng)
            occ_times, occ_nominal = timeline.occupancy_curve()
            occ_victim, occ_ambient = self._distort_occupancy(occ_nominal, rng)
        return MachineRun(
            cores=cores,
            frequency=frequency,
            occupancy_times=occ_times,
            occupancy_victim=occ_victim,
            occupancy_ambient=occ_ambient,
            config=self.config,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    # generation stages
    # ------------------------------------------------------------------

    def _distort_occupancy(
        self, occupancy: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convert nominal victim occupancy into the attacker-observable one.

        Three distortions, all rooted in how a sweeping attacker actually
        measures the LLC: (1) the victim's residency is capped — the
        attacker's constant sweeps re-claim lines, so the victim never
        holds much of the cache; (2) a per-run gain (working-set size
        varies across loads); (3) ambient, temporally-correlated eviction
        noise from unrelated processes and prefetchers that is present
        *regardless of the victim*.  The ambient noise does not shrink
        when the victim's signal does, which is what makes the coarse
        (0..~32 counts) cache channel far less reliable than the
        fine-grained interrupt channel — the paper's central observation.
        """
        gain = rng.lognormal(0.0, _OCCUPANCY_GAIN_SIGMA)
        white = rng.normal(0.0, _OCCUPANCY_NOISE_SIGMA, len(occupancy))
        kernel = np.ones(_OCCUPANCY_NOISE_SMOOTHING) / _OCCUPANCY_NOISE_SMOOTHING
        ambient = np.abs(np.convolve(white, kernel, mode="same"))
        victim = np.clip(_OCCUPANCY_RESIDENCY * occupancy * gain, 0.0, 1.0)
        return victim, ambient

    def _build_core(self, batches: list[InterruptBatch]) -> CoreTimeline:
        transformed = [
            InterruptBatch(
                itype=b.itype,
                times=b.times,
                durations=self.config.vm.transform_durations(b.durations),
                cause=b.cause,
            )
            for b in batches
        ]
        return CoreTimeline.from_batches(transformed)

    def _next_tick(
        self, t: np.ndarray, core: np.ndarray, tick_phases: np.ndarray
    ) -> np.ndarray:
        """Time of the next timer tick at or after ``t`` on each core."""
        period_ns = SEC / self.config.os.tick_hz
        phase = tick_phases[core]
        return phase + np.ceil(np.maximum(t - phase, 0.0) / period_ns) * period_ns

    def _add_timer_ticks(
        self,
        per_core: list[list[InterruptBatch]],
        timeline: ActivityTimeline,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        period_ns = SEC / self.config.os.tick_hz
        for core in range(self.config.n_cores):
            phase = tick_phases[core]
            times = np.arange(phase, timeline.horizon_ns, period_ns, dtype=np.float64)
            durations = self.latency_model.sample(InterruptType.TIMER, rng, len(times))
            per_core[core].append(
                InterruptBatch(InterruptType.TIMER, times, durations, cause="tick")
            )

    def _poisson_times(
        self,
        burst: ActivityBurst,
        rate_hz: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Arrival times within a burst, honouring its micro-structure.

        With ``ripple_hz`` set, arrivals concentrate in the on-phase of
        an on/off pulse train (packet trains, frame cadence); the mean
        rate over the burst is unchanged.
        """
        expected = rate_hz * burst.duration_ns / SEC
        count = rng.poisson(expected)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        if burst.ripple_hz <= 0:
            return np.sort(rng.uniform(burst.start_ns, burst.end_ns, count))
        period_ns = SEC / burst.ripple_hz
        n_windows = max(int(burst.duration_ns / period_ns), 1)
        on_len_ns = burst.duty * period_ns
        window = rng.integers(0, n_windows, count)
        offset = rng.uniform(0.0, on_len_ns, count)
        times = burst.start_ns + window * period_ns + offset
        return np.sort(np.clip(times, burst.start_ns, burst.end_ns))

    def _add_burst_interrupts(
        self,
        per_core: list[list[InterruptBatch]],
        timeline: ActivityTimeline,
        style: SiteStyle,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        routing = self.config.routing_policy()
        for burst in timeline:
            profile = KIND_PROFILES[burst.kind]
            device_type, deferred_type = _KIND_IRQS[burst.kind]
            if burst.kind is BurstKind.COMPUTE:
                self._add_compute_ipis(per_core, burst, style, rng)
                continue
            if device_type is None:
                continue
            rate = profile.irq_rate_hz * burst.intensity * _BURST_RATE_SCALE
            times = self._poisson_times(burst, rate, rng)
            if not len(times):
                continue
            targets = routing.route_source(burst.source, len(times), rng)
            durations = self.latency_model.sample(device_type, rng, len(times))
            self._scatter(per_core, device_type, times, durations, targets, burst.source)
            if deferred_type is not None:
                self._add_deferred(
                    per_core, burst, style, deferred_type, times, targets, profile,
                    rng, tick_phases,
                )

    def _scatter(
        self,
        per_core: list[list[InterruptBatch]],
        itype: InterruptType,
        times: np.ndarray,
        durations: np.ndarray,
        targets: np.ndarray,
        cause: str,
    ) -> None:
        for core in np.unique(targets):
            mask = targets == core
            per_core[int(core)].append(
                InterruptBatch(itype, times[mask], durations[mask], cause=cause)
            )

    def _add_deferred(
        self,
        per_core: list[list[InterruptBatch]],
        burst: ActivityBurst,
        style: SiteStyle,
        deferred_type: InterruptType,
        trigger_times: np.ndarray,
        trigger_cores: np.ndarray,
        profile,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        coalescing = style.net_coalescing if deferred_type is InterruptType.SOFTIRQ_NET_RX else 1.0
        keep_probability = min(profile.deferred_per_irq / coalescing, 1.0)
        keep = rng.random(len(trigger_times)) < keep_probability
        if not keep.any():
            return
        times = trigger_times[keep] + rng.exponential(_DEFERRED_DELAY_MEAN_NS, keep.sum())
        cores = self.softirq_placement.place(trigger_cores[keep], self.config.n_cores, rng)
        # Most deferred items drain inside the next timer tick on their
        # core; the rest run on an immediate wakeup.
        snap_probability = (
            _IRQ_WORK_TICK_SNAP_PROBABILITY
            if deferred_type is InterruptType.IRQ_WORK
            else _DEFERRED_TICK_SNAP_PROBABILITY
        )
        snap = rng.random(len(times)) < snap_probability
        times = np.where(snap, self._next_tick(times, cores, tick_phases), times)
        durations = self.latency_model.sample(deferred_type, rng, keep.sum())
        # Heavier bursts defer more work per softirq -> longer handlers.
        # IRQ work is exempt: it only queues/kicks off the deferred
        # operation, so its own handler stays short (Fig 6).
        if deferred_type is not InterruptType.IRQ_WORK:
            load_stretch = 1.0 + profile.duration_load_factor * burst.intensity * coalescing
            durations = durations * load_stretch
        order = np.argsort(times)
        self._scatter(
            per_core,
            deferred_type,
            times[order],
            durations[order],
            cores[order],
            f"{burst.source}/deferred",
        )

    def _add_compute_ipis(
        self,
        per_core: list[list[InterruptBatch]],
        burst: ActivityBurst,
        style: SiteStyle,
        rng: np.random.Generator,
    ) -> None:
        profile = KIND_PROFILES[BurstKind.COMPUTE]
        rate = (
            profile.irq_rate_hz
            * burst.intensity
            * style.resched_weight
            * _BURST_RATE_SCALE
        )
        resched_times = self._poisson_times(burst, rate, rng)
        if len(resched_times):
            targets = rng.integers(0, self.config.n_cores, len(resched_times))
            durations = self.latency_model.sample(
                InterruptType.RESCHED_IPI, rng, len(resched_times)
            )
            stretch = 1.0 + profile.duration_load_factor * burst.intensity
            self._scatter(
                per_core,
                InterruptType.RESCHED_IPI,
                resched_times,
                durations * stretch,
                targets,
                burst.source,
            )
        # TLB shootdowns broadcast to every core.
        tlb_times = self._poisson_times(
            burst, rate * _TLB_FRACTION_OF_RESCHED, rng
        )
        if len(tlb_times):
            for core in range(self.config.n_cores):
                durations = self.latency_model.sample(
                    InterruptType.TLB_SHOOTDOWN, rng, len(tlb_times)
                )
                per_core[core].append(
                    InterruptBatch(
                        InterruptType.TLB_SHOOTDOWN,
                        tlb_times,
                        durations,
                        cause=f"{burst.source}/tlb",
                    )
                )

    def _add_tick_work(
        self,
        per_core: list[list[InterruptBatch]],
        timeline: ActivityTimeline,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        """Load-proportional softirq work attached to timer ticks.

        The kernel drains deferred timer work on every tick; under load
        this work grows, stretching the gap each tick causes on *every*
        core — a purely non-movable leakage path.  Arrivals coincide
        with the core's tick times so the work merges into the tick's
        execution gap.
        """
        period_ns = SEC / self.config.os.tick_hz
        for core in range(self.config.n_cores):
            phase = tick_phases[core]
            ticks = np.arange(phase, timeline.horizon_ns, period_ns, dtype=np.float64)
            loads = np.array([timeline.load_at(float(t)) for t in ticks])
            active = loads > 0.02
            if not active.any():
                continue
            times = ticks[active]
            durations = self.latency_model.sample(
                InterruptType.SOFTIRQ_TIMER, rng, len(times)
            )
            durations = durations * (1.0 + _TICK_WORK_LOAD_FACTOR * loads[active])
            per_core[core].append(
                InterruptBatch(
                    InterruptType.SOFTIRQ_TIMER, times, durations, cause="tick_work"
                )
            )

    def _add_turbo_artifacts(
        self,
        per_core: list[list[InterruptBatch]],
        timeline: ActivityTimeline,
        rng: np.random.Generator,
    ) -> None:
        """Turbo-transition stalls on every core (footnote 4).

        Frequency transitions cluster around load changes; the stalls
        are user-visible execution gaps that no kernel probe explains.
        """
        for core in range(self.config.n_cores):
            expected = _TURBO_ARTIFACT_RATE_HZ * timeline.horizon_ns / SEC
            count = rng.poisson(expected)
            if not count:
                continue
            times = np.sort(rng.uniform(0, timeline.horizon_ns, count))
            durations = self.latency_model.sample(InterruptType.UNKNOWN, rng, count)
            per_core[core].append(
                InterruptBatch(
                    InterruptType.UNKNOWN, times, durations, cause="turbo_boost"
                )
            )

    def _add_background(
        self,
        per_core: list[list[InterruptBatch]],
        horizon_ns: int,
        rng: np.random.Generator,
    ) -> None:
        routing = self.config.routing_policy()
        sources = (
            ("system/bg-net", InterruptType.NETWORK_RX, 0.45),
            ("system/bg-disk", InterruptType.DISK, 0.35),
            ("system/bg-usb", InterruptType.KEYBOARD, 0.20),
        )
        for source, itype, share in sources:
            expected = self.config.os.background_irq_hz * share * horizon_ns / SEC
            count = rng.poisson(expected)
            if not count:
                continue
            times = np.sort(rng.uniform(0, horizon_ns, count))
            targets = routing.route_source(source, count, rng)
            durations = self.latency_model.sample(itype, rng, count)
            self._scatter(per_core, itype, times, durations, targets, source)
