"""Interrupt routing policies.

Operating systems balance *device* IRQs between cores in different ways
(paper §2.2): route each source to a fixed core, spread interrupts across
all cores, or — with Linux's ``irqbalance`` — pin all movable IRQs to one
chosen core, which is the isolation mechanism evaluated in Table 3.

Non-movable interrupts never pass through these policies:

* timer ticks are generated per-core,
* rescheduling IPIs and TLB shootdowns target whichever core the kernel
  needs (modeled as uniform/broadcast),
* softirqs and IRQ work run wherever the kernel happens to process them,
  usually the core that took the triggering device IRQ but regularly a
  different one — which is why pinning device IRQs away does not silence
  the channel (Takeaway 5).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


class RoutingPolicy:
    """Maps device-IRQ sources and individual interrupts to cores."""

    def __init__(self, n_cores: int):
        if n_cores < 1:
            raise ValueError(f"need at least one core, got {n_cores}")
        self.n_cores = int(n_cores)

    def route_source(self, source: str, count: int, rng: np.random.Generator) -> np.ndarray:
        """Target cores for ``count`` interrupts from device ``source``."""
        raise NotImplementedError


class AffinitySourceRouting(RoutingPolicy):
    """Each device source is bound to one core (default Linux behaviour).

    The binding is a stable hash of the source name so that, for example,
    the NIC always interrupts the same core across runs.
    """

    def core_for(self, source: str) -> int:
        return zlib.crc32(source.encode()) % self.n_cores

    def route_source(self, source: str, count: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(count, self.core_for(source), dtype=np.int64)


class SpreadRouting(RoutingPolicy):
    """Distribute interrupts uniformly across all cores."""

    def route_source(self, source: str, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.n_cores, size=count)


class PinnedRouting(RoutingPolicy):
    """``irqbalance``-style: every movable IRQ goes to one housekeeping core."""

    def __init__(self, n_cores: int, target_core: int = 0):
        super().__init__(n_cores)
        if not 0 <= target_core < n_cores:
            raise ValueError(f"target core {target_core} out of range for {n_cores} cores")
        self.target_core = int(target_core)

    def route_source(self, source: str, count: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(count, self.target_core, dtype=np.int64)


@dataclass
class SoftirqPlacement:
    """Where deferred work (softirqs / IRQ work) executes.

    With probability ``follow_probability`` a softirq runs on the core
    that handled the triggering device IRQ; otherwise the kernel processes
    it opportunistically on a uniformly random core (e.g. during that
    core's next timer tick).  Linux exposes no knob to change this, which
    is exactly why the paper calls these interrupts non-movable.
    """

    follow_probability: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.follow_probability <= 1.0:
            raise ValueError(
                f"follow_probability must be in [0, 1], got {self.follow_probability}"
            )

    def place(
        self, trigger_cores: np.ndarray, n_cores: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Pick an execution core for each deferred-work item."""
        trigger_cores = np.asarray(trigger_cores, dtype=np.int64)
        follow = rng.random(len(trigger_cores)) < self.follow_probability
        random_cores = rng.integers(0, n_cores, size=len(trigger_cores))
        return np.where(follow, trigger_cores, random_cores)
