"""Discrete-event foundations for the machine simulator.

All simulation time is kept in integer nanoseconds.  The module provides
unit helpers, a simulation clock, and a priority event queue used by the
stateful parts of the simulator (scheduler, frequency governor, defense
injectors).  The high-volume interrupt path is array-based (see
:mod:`repro.sim.timeline`) and does not go through the queue.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

#: Nanoseconds per microsecond / millisecond / second.
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns_to_ms(t_ns: float) -> float:
    """Convert nanoseconds to (float) milliseconds."""
    return t_ns / MS


def ms_to_ns(t_ms: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return int(round(t_ms * MS))


def seconds_to_ns(t_s: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return int(round(t_s * SEC))


class SimulationClock:
    """Monotonic simulation clock in nanoseconds.

    The clock is shared between user-space code (the attacker) and the
    kernel tracer, mirroring Linux's ``CLOCK_MONOTONIC``, which both the
    paper's Rust attacker and its eBPF probes read.
    """

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ValueError(f"clock cannot start before zero, got {start_ns}")
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def advance_to(self, t_ns: int) -> None:
        """Move the clock forward to ``t_ns``; moving backwards is an error."""
        if t_ns < self._now:
            raise ValueError(f"clock cannot move backwards: {t_ns} < {self._now}")
        self._now = int(t_ns)

    def advance_by(self, dt_ns: int) -> None:
        """Move the clock forward by ``dt_ns`` nanoseconds."""
        if dt_ns < 0:
            raise ValueError(f"cannot advance by a negative duration: {dt_ns}")
        self._now += int(dt_ns)


@dataclass(order=True)
class _QueueEntry:
    time: int
    seq: int
    event: "Event" = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass
class Event:
    """A scheduled simulation event.

    ``action`` is invoked with the event's firing time when the event is
    popped.  ``payload`` is free-form context for inspection in tests.
    """

    name: str
    action: Optional[Callable[[int], None]] = None
    payload: Any = None


class EventQueue:
    """A cancellable priority queue of timed events.

    Ties are broken by insertion order, which keeps runs deterministic for
    a fixed seed — a property the reproduction relies on throughout.
    """

    def __init__(self) -> None:
        self._heap: list[_QueueEntry] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time_ns: int, event: Event) -> _QueueEntry:
        """Schedule ``event`` at ``time_ns``; returns a cancellation handle."""
        if time_ns < 0:
            raise ValueError(f"cannot schedule an event before time zero: {time_ns}")
        entry = _QueueEntry(time=int(time_ns), seq=next(self._counter), event=event)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def cancel(self, entry: _QueueEntry) -> None:
        """Cancel a previously pushed event (lazy removal)."""
        if not entry.cancelled:
            entry.cancelled = True
            self._live -= 1

    def peek_time(self) -> Optional[int]:
        """Firing time of the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> tuple[int, Event]:
        """Remove and return ``(time, event)`` for the next live event."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        entry = heapq.heappop(self._heap)
        self._live -= 1
        return entry.time, entry.event

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def drain_until(self, horizon_ns: int) -> Iterator[tuple[int, Event]]:
        """Yield events in time order up to and including ``horizon_ns``.

        Events whose ``action`` is set are invoked as they are yielded.
        """
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > horizon_ns:
                return
            time_ns, event = self.pop()
            if event.action is not None:
                event.action(time_ns)
            yield time_ns, event
