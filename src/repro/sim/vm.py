"""Virtual-machine isolation model.

Table 3's final row runs attacker and victim in separate VMs and finds
the attack gets *stronger* (+3.4 % top-1).  The paper's explanation: an
interrupt routed to a core running a VM must be processed by both the
host and the guest OS, and VM entries/exits are far more expensive than
process-level context switches — so every gap the attacker observes is
amplified.

We model this as an affine transform on handler durations: each
delivered interrupt costs ``duration × amplification + exit_overhead``.
Amplification raises the signal-to-noise ratio of the interrupt channel,
reproducing the counter-intuitive accuracy increase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.events import US


@dataclass(frozen=True)
class VmConfig:
    """Virtualization parameters for the attacker's machine."""

    enabled: bool = False
    #: Host-plus-guest handling cost relative to bare metal.
    amplification: float = 2.3
    #: Fixed VM-exit/entry overhead added per interrupt.
    exit_overhead_ns: float = 2.5 * US

    def __post_init__(self) -> None:
        if self.amplification < 1.0:
            raise ValueError(
                f"VM handling cannot be cheaper than bare metal: {self.amplification}"
            )
        if self.exit_overhead_ns < 0:
            raise ValueError("exit overhead cannot be negative")

    def transform_durations(self, durations_ns: np.ndarray) -> np.ndarray:
        """Apply VM amplification to a batch of handler durations."""
        if not self.enabled:
            return durations_ns
        return durations_ns * self.amplification + self.exit_overhead_ns


BARE_METAL = VmConfig(enabled=False)
SEPARATE_VMS = VmConfig(enabled=True)
