"""Retained reference implementation of interrupt synthesis.

PR 5 rewrote :class:`~repro.sim.machine.InterruptSynthesizer`'s hot path
around contiguous ``searchsorted`` owner slices, grouped latency draws
and in-place array assembly.  This module keeps the *pre-vectorization*
semantics alive as an executable specification:
:class:`ReferenceInterruptSynthesizer` draws from the RNG in exactly the
same order, with the same sizes and distribution parameters, but derives
every index with per-burst boolean masks and assembles every time array
with plain out-of-place arithmetic — the shapes the optimized code was
refactored away from.

The two synthesizers must agree **bit-for-bit** on every seed: that is
the ``sim.synthesize`` differential oracle in :mod:`repro.verify`, and it
is what certifies that future speedups touch only the *how*, never the
*what*.  Anything PR 5 did not restructure (timer ticks, tick work,
background IRQs, turbo artifacts, occupancy distortion, scheduler
contention) is intentionally shared with the base class — those paths
are their own reference.

Nothing here is exported through ``repro.sim``'s public surface; the
verify harness and its tests are the only intended consumers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sim.events import SEC
from repro.sim.interrupts import (
    HandlerLatencyModel,
    InterruptBatch,
    InterruptType,
)
from repro.sim.machine import (
    _BURST_RATE_SCALE,
    _DEFERRED_DELAY_MEAN_NS,
    _DEFERRED_TICK_SNAP_PROBABILITY,
    _IRQ_WORK_TICK_SNAP_PROBABILITY,
    _KIND_IRQS,
    _TLB_FRACTION_OF_RESCHED,
    _TYPE_ORDER,
    InterruptSynthesizer,
)
from repro.sim.timeline import CoreTimeline
from repro.workload.phases import KIND_PROFILES, ActivityBurst, BurstKind
from repro.workload.website import SiteStyle


class ReferenceHandlerLatencyModel(HandlerLatencyModel):
    """Latency model without the ``platform_factor == 1.0`` fast path.

    The optimized model skips the multiply when the factor is exactly 1;
    the reference always performs it.  ``x * 1.0`` is an IEEE identity
    for the positive finite durations involved, so the outputs stay
    bit-identical — the oracle exercises precisely that claim.
    """

    def sample(
        self, itype: InterruptType, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        draws = self.spec_for(itype).sample(rng, size)
        return draws * self.platform_factor


def merge_batches_ref(batches: Sequence[InterruptBatch]) -> tuple[np.ndarray, ...]:
    """Reference for :func:`repro.sim.interrupts.merge_batches`.

    Uses numpy's stable argsort directly instead of the two-pass
    unstable-sort-plus-tie-fixup of ``_stable_time_order``.
    """
    type_index = {t: i for i, t in enumerate(InterruptType)}
    live = [b for b in batches if len(b)]
    if not live:
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        return empty_f, empty_f.copy(), empty_i, empty_i.copy(), []
    cause_names: list[str] = []
    cause_index: dict[str, int] = {}
    for batch in live:
        if batch.cause not in cause_index:
            cause_index[batch.cause] = len(cause_names)
            cause_names.append(batch.cause)
    times = np.concatenate([b.times for b in live])
    durations = np.concatenate([b.durations for b in live])
    type_codes = np.concatenate(
        [np.full(len(b), type_index[b.itype], dtype=np.int64) for b in live]
    )
    cause_codes = np.concatenate(
        [np.full(len(b), cause_index[b.cause], dtype=np.int64) for b in live]
    )
    order = np.argsort(times, kind="stable")
    return (
        times[order],
        durations[order],
        type_codes[order],
        cause_codes[order],
        cause_names,
    )


class ReferenceInterruptSynthesizer(InterruptSynthesizer):
    """Mask-and-loop reference for the vectorized synthesizer.

    RNG-call identical to the base class — every draw happens at the
    same point in the stream with the same size and parameters — while
    all derived indexing and arithmetic uses the pre-PR-5 shapes.
    """

    def __init__(self, config) -> None:
        super().__init__(config)
        self.latency_model = ReferenceHandlerLatencyModel(
            platform_factor=config.os.handler_cost_factor
        )

    # -- arrival generation -------------------------------------------

    def _poisson_times_batch(
        self,
        bursts: Sequence[ActivityBurst],
        rates_hz: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        if not bursts:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        durations = np.array([b.duration_ns for b in bursts], dtype=np.float64)
        starts = np.array([b.start_ns for b in bursts], dtype=np.float64)
        ripple = np.array([b.ripple_hz for b in bursts], dtype=np.float64)
        duty = np.array([b.duty for b in bursts], dtype=np.float64)
        rippled = ripple > 0
        period = np.where(rippled, SEC / np.where(rippled, ripple, 1.0), durations)
        n_windows = np.maximum((durations / period).astype(np.int64), 1)
        on_len = np.where(rippled, duty * period, durations)
        counts = rng.poisson(np.asarray(rates_hz, dtype=np.float64) * durations / SEC)
        owners = np.repeat(np.arange(len(bursts)), counts)
        if not len(owners):
            return np.empty(0, dtype=np.float64), owners
        # Window draws: boolean membership masks instead of searchsorted
        # slice bounds, same one-call-per-multi-window-burst draw order.
        window = np.zeros(len(owners), dtype=np.float64)
        for i in range(len(bursts)):
            mask = owners == i
            members = int(mask.sum())
            if members and n_windows[i] > 1:
                window[mask] = rng.integers(0, n_windows[i], members)
        raw_offset = rng.random(len(owners))
        # Out-of-place per-burst assembly; each binary operation matches
        # the optimized in-place sequence ((w·p) + s) + (r·on_len).
        times = np.empty(len(owners), dtype=np.float64)
        for i in range(len(bursts)):
            mask = owners == i
            if not mask.any():
                continue
            placed = (window[mask] * period[i] + starts[i]) + (
                raw_offset[mask] * on_len[i]
            )
            times[mask] = placed
        if rippled.any():
            clipped = np.empty_like(times)
            for i in range(len(bursts)):
                mask = owners == i
                if mask.any():
                    clipped[mask] = np.minimum(
                        np.maximum(times[mask], starts[i]), starts[i] + durations[i]
                    )
            times = clipped
        return times, owners

    # -- duration sampling --------------------------------------------

    def _sample_durations_grouped(
        self,
        burst_types: Sequence[Optional[InterruptType]],
        owners: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        durations = np.empty(len(owners), dtype=np.float64)
        types_present = sorted(
            {t for t in burst_types if t is not None}, key=_TYPE_ORDER.__getitem__
        )
        for itype in types_present:
            # All arrivals of this type, gathered by mask in burst order;
            # owners are sorted, so this matches the slice concatenation.
            idx = np.flatnonzero(
                np.isin(owners, [i for i, t in enumerate(burst_types) if t is itype])
            )
            if not len(idx):
                continue
            draws = self.latency_model.sample(itype, rng, len(idx))
            durations[idx] = draws
        return durations

    # -- generation stages --------------------------------------------

    def _add_device_irqs(
        self,
        per_core: list[list[InterruptBatch]],
        bursts: Sequence[ActivityBurst],
        style: SiteStyle,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        routing = self.config.routing_policy()
        rates = np.array(
            [
                KIND_PROFILES[b.kind].irq_rate_hz
                * b.intensity
                * _BURST_RATE_SCALE
                for b in bursts
            ]
        )
        times, owners = self._poisson_times_batch(bursts, rates, rng)
        if not len(times):
            return
        targets = np.empty(len(times), dtype=np.int64)
        for i, burst in enumerate(bursts):
            mask = owners == i
            members = int(mask.sum())
            if members:
                targets[mask] = routing.route_source(burst.source, members, rng)
        device_types = [_KIND_IRQS[b.kind][0] for b in bursts]
        durations = self._sample_durations_grouped(device_types, owners, rng)
        for i, burst in enumerate(bursts):
            mask = owners == i
            if mask.any():
                self._scatter(
                    per_core,
                    device_types[i],
                    times[mask],
                    durations[mask],
                    targets[mask],
                    burst.source,
                )
        self._add_deferred(
            per_core, bursts, style, times, owners, targets, rng, tick_phases
        )

    def _add_deferred(
        self,
        per_core: list[list[InterruptBatch]],
        bursts: Sequence[ActivityBurst],
        style: SiteStyle,
        trigger_times: np.ndarray,
        owners: np.ndarray,
        trigger_cores: np.ndarray,
        rng: np.random.Generator,
        tick_phases: np.ndarray,
    ) -> None:
        deferred_types = [_KIND_IRQS[b.kind][1] for b in bursts]
        profiles = [KIND_PROFILES[b.kind] for b in bursts]
        coalescing = [
            style.net_coalescing if t is InterruptType.SOFTIRQ_NET_RX else 1.0
            for t in deferred_types
        ]
        keep_probability = np.array(
            [
                0.0 if t is None else min(p.deferred_per_irq / c, 1.0)
                for t, p, c in zip(deferred_types, profiles, coalescing)
            ]
        )
        keep = rng.random(len(trigger_times)) < keep_probability[owners]
        if not keep.any():
            return
        deferred_owners = owners[keep]
        delay = rng.exponential(_DEFERRED_DELAY_MEAN_NS, int(keep.sum()))
        times = trigger_times[keep] + delay
        cores = self.softirq_placement.place(
            trigger_cores[keep], self.config.n_cores, rng
        )
        snap_probability = np.array(
            [
                _IRQ_WORK_TICK_SNAP_PROBABILITY
                if t is InterruptType.IRQ_WORK
                else _DEFERRED_TICK_SNAP_PROBABILITY
                for t in deferred_types
            ]
        )
        snap = rng.random(len(times)) < snap_probability[deferred_owners]
        # Per-element tick snapping: scalar phase/ceil arithmetic in the
        # same operation order as the vectorized _next_tick.
        period_ns = SEC / self.config.os.tick_hz
        for j in np.flatnonzero(snap):
            phase = tick_phases[int(cores[j])]
            times[j] = (
                phase + np.ceil(np.maximum(times[j] - phase, 0.0) / period_ns) * period_ns
            )
        durations = self._sample_durations_grouped(deferred_types, deferred_owners, rng)
        load_stretch = np.array(
            [
                1.0
                if t is None or t is InterruptType.IRQ_WORK
                else 1.0 + p.duration_load_factor * b.intensity * c
                for t, p, b, c in zip(deferred_types, profiles, bursts, coalescing)
            ]
        )
        durations = durations * load_stretch[deferred_owners]
        for i, burst in enumerate(bursts):
            mask = deferred_owners == i
            if mask.any():
                self._scatter(
                    per_core,
                    deferred_types[i],
                    times[mask],
                    durations[mask],
                    cores[mask],
                    f"{burst.source}/deferred",
                )

    def _add_compute_ipis(
        self,
        per_core: list[list[InterruptBatch]],
        bursts: Sequence[ActivityBurst],
        style: SiteStyle,
        rng: np.random.Generator,
    ) -> None:
        if not bursts:
            return
        profile = KIND_PROFILES[BurstKind.COMPUTE]
        intensities = np.array([b.intensity for b in bursts])
        rates = (
            profile.irq_rate_hz
            * intensities
            * style.resched_weight
            * _BURST_RATE_SCALE
        )
        resched_times, owners = self._poisson_times_batch(bursts, rates, rng)
        if len(resched_times):
            targets = rng.integers(0, self.config.n_cores, len(resched_times))
            durations = self.latency_model.sample(
                InterruptType.RESCHED_IPI, rng, len(resched_times)
            )
            stretch = 1.0 + profile.duration_load_factor * intensities
            durations = durations * stretch[owners]
            for i, burst in enumerate(bursts):
                mask = owners == i
                if mask.any():
                    self._scatter(
                        per_core,
                        InterruptType.RESCHED_IPI,
                        resched_times[mask],
                        durations[mask],
                        targets[mask],
                        burst.source,
                    )
        tlb_times, tlb_owners = self._poisson_times_batch(
            bursts, rates * _TLB_FRACTION_OF_RESCHED, rng
        )
        if len(tlb_times):
            for core in range(self.config.n_cores):
                durations = self.latency_model.sample(
                    InterruptType.TLB_SHOOTDOWN, rng, len(tlb_times)
                )
                for i, burst in enumerate(bursts):
                    mask = tlb_owners == i
                    if mask.any():
                        per_core[core].append(
                            InterruptBatch(
                                InterruptType.TLB_SHOOTDOWN,
                                tlb_times[mask],
                                durations[mask],
                                cause=f"{burst.source}/tlb",
                            )
                        )

    # -- assembly ------------------------------------------------------

    def _build_core(self, batches: list[InterruptBatch]) -> CoreTimeline:
        if self.config.vm.enabled:
            batches = [
                InterruptBatch(
                    itype=b.itype,
                    times=b.times,
                    durations=self.config.vm.transform_durations(b.durations),
                    cause=b.cause,
                )
                for b in batches
            ]
        times, durations, type_codes, cause_codes, cause_names = merge_batches_ref(
            batches
        )
        # Validated constructor: the reference re-checks sortedness the
        # trusted fast path skips.
        return CoreTimeline(
            times, durations, type_codes, cause_codes, cause_names,
            arrivals_sorted=False,
        )


__all__ = [
    "ReferenceHandlerLatencyModel",
    "ReferenceInterruptSynthesizer",
    "merge_batches_ref",
]
