"""CPU frequency scaling (DVFS / turbo) model.

The loop-counting attack measures instruction throughput, so processor
frequency directly scales its counter values.  Table 3 shows that fixing
the frequency (``cpufreq-set``) costs the attack only ~1 % accuracy:
frequency contributes a small, load-correlated component plus noise, but
is not the primary channel.

The attacker's own core is always 100 % busy (it spins), so an
ondemand-style governor keeps it at its highest available frequency.
What varies is the *turbo budget*: as other cores become active while
the victim loads a page, the package drops to lower multi-core turbo
bins.  We model the attacker core's frequency as maximum turbo minus a
load-proportional droop, quantized to 100 MHz bins, re-evaluated on a
fixed governor interval with estimation noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.events import MS


@dataclass(frozen=True)
class FrequencyConfig:
    """Turbo/DVFS parameters for one machine.

    The default span (1.6–3.0 GHz) matches the paper's test machine; the
    pinned frequency (2.5 GHz) matches its ``cpufreq-set`` experiment.
    """

    min_ghz: float = 1.6
    max_ghz: float = 3.0
    pinned_ghz: float = 2.5
    scaling_enabled: bool = True
    governor_interval_ns: int = 50 * MS
    #: Fraction of the frequency span lost at full system load (turbo
    #: bins shrinking as sibling cores wake up).
    turbo_droop: float = 0.12
    #: Turbo bin granularity (Intel: 100 MHz).
    bin_ghz: float = 0.1
    #: Std-dev of the governor's load-estimation noise.
    load_noise: float = 0.06

    def __post_init__(self) -> None:
        if self.min_ghz <= 0 or self.max_ghz < self.min_ghz:
            raise ValueError(
                f"invalid frequency span [{self.min_ghz}, {self.max_ghz}] GHz"
            )
        if not self.min_ghz <= self.pinned_ghz <= self.max_ghz:
            raise ValueError(f"pinned frequency {self.pinned_ghz} outside span")
        if not 0.0 <= self.turbo_droop <= 1.0:
            raise ValueError(f"turbo_droop must be in [0, 1], got {self.turbo_droop}")
        if self.bin_ghz <= 0:
            raise ValueError("turbo bin size must be positive")


class FrequencyTrace:
    """Piecewise-constant core frequency over a simulation run."""

    def __init__(self, boundaries_ns: np.ndarray, ghz: np.ndarray):
        self.boundaries_ns = np.asarray(boundaries_ns, dtype=np.float64)
        self.ghz = np.asarray(ghz, dtype=np.float64)
        if len(self.ghz) != len(self.boundaries_ns):
            raise ValueError("need one frequency per interval start")
        if len(self.boundaries_ns) == 0:
            raise ValueError("frequency trace cannot be empty")
        if np.any(np.diff(self.boundaries_ns) <= 0):
            raise ValueError("interval starts must be strictly increasing")

    def ghz_at(self, t_ns: np.ndarray | float) -> np.ndarray | float:
        """Frequency in GHz at time(s) ``t_ns``."""
        t_arr = np.asarray(t_ns, dtype=np.float64)
        idx = np.clip(
            np.searchsorted(self.boundaries_ns, t_arr, side="right") - 1,
            0,
            len(self.ghz) - 1,
        )
        result = self.ghz[idx]
        return float(result) if np.isscalar(t_ns) else result


class TurboGovernor:
    """Produces the attacker core's frequency schedule under system load.

    ``load_at(t_ns) -> [0, 1]`` supplies instantaneous system load; the
    governor samples it every interval, adds estimation noise, and maps
    load to a turbo bin: ``f = max − droop · span · load``, rounded to
    the bin grid.
    """

    def __init__(self, config: FrequencyConfig):
        self.config = config

    def ghz_for_load(self, load: float) -> float:
        """Turbo frequency for a given (noise-free) system load."""
        return float(self.ghz_for_loads(np.asarray(load, dtype=np.float64)))

    def ghz_for_loads(self, loads: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`ghz_for_load` over an array of loads."""
        cfg = self.config
        span = cfg.max_ghz - cfg.min_ghz
        raw = cfg.max_ghz - cfg.turbo_droop * span * np.clip(loads, 0.0, 1.0)
        binned = np.round(raw / cfg.bin_ghz) * cfg.bin_ghz
        return np.clip(binned, cfg.min_ghz, cfg.max_ghz)

    def _sample_loads(self, load_at, starts: np.ndarray) -> np.ndarray:
        """Evaluate ``load_at`` over ``starts``, vectorized when possible.

        ``load_at`` may be an array-aware callable (e.g.
        ``ActivityTimeline.load_at_array``) or a plain scalar function;
        scalar-only callables fall back to a per-sample loop.
        """
        try:
            loads = np.asarray(load_at(starts), dtype=np.float64)
        except (TypeError, ValueError):
            loads = None
        if loads is not None and loads.shape == starts.shape:
            return loads
        return np.array([float(load_at(float(t))) for t in starts])

    def run(self, load_at, horizon_ns: int, rng: np.random.Generator) -> FrequencyTrace:
        """Produce the frequency schedule for ``[0, horizon_ns)``."""
        if horizon_ns <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_ns}")
        if not self.config.scaling_enabled:
            return FrequencyTrace(np.array([0.0]), np.array([self.config.pinned_ghz]))
        starts = np.arange(0, horizon_ns, self.config.governor_interval_ns, dtype=np.float64)
        loads = self._sample_loads(load_at, starts)
        loads = np.clip(loads + rng.normal(0.0, self.config.load_noise, len(starts)), 0.0, 1.0)
        return FrequencyTrace(starts, self.ghz_for_loads(loads))


@dataclass
class IterationRateModel:
    """Converts core frequency into attacker loop-iteration rate.

    Calibrated so a loop iteration (increment + ``performance.now()``
    call) costs ~185 ns at max turbo (3.0 GHz), putting 5 ms-period
    counters at the paper's ~27 000 ceiling with dips toward ~21 000
    under combined interrupt pressure and turbo droop (Fig 3).
    """

    base_iter_ns: float = 222.0
    base_ghz: float = 2.5

    def __post_init__(self) -> None:
        if self.base_iter_ns <= 0 or self.base_ghz <= 0:
            raise ValueError("iteration cost and base frequency must be positive")

    def iterations_per_ns(self, ghz: np.ndarray | float) -> np.ndarray | float:
        """Loop iterations completed per executed nanosecond at ``ghz``."""
        return (np.asarray(ghz) / self.base_ghz) / self.base_iter_ns
