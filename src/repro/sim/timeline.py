"""Per-core interrupt timelines and execution-gap accounting.

A CPU core handles interrupts serially: when an interrupt arrives while
another handler is still running, it is processed back-to-back.  From the
point of view of the user-space task pinned to that core, consecutive or
overlapping handler executions merge into a single *execution gap* — the
paper's observable (§2.3, Fig 1).  This module turns a sorted batch of
interrupt arrivals into

* serialized per-record handling windows (used by the eBPF-style tracer),
* merged execution gaps, and
* O(log n) prefix-sum queries for "how much execution time was stolen
  between two instants", which the attacker-loop model is built on.

Everything is vectorized; a 15-second trace with ~10^5 interrupts costs a
few milliseconds to process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.interrupts import InterruptBatch, InterruptType, merge_batches

#: Two handling windows closer than this merge into one observed gap.  A
#: user loop iteration is ~200 ns, so a shorter window of returned control
#: is not observable as separate execution.
GAP_MERGE_EPSILON_NS = 200.0


@dataclass(frozen=True)
class InterruptRecord:
    """One handled interrupt, as the kernel tracer would log it."""

    arrival_ns: float
    start_ns: float
    end_ns: float
    itype: InterruptType
    cause: str

    @property
    def handler_ns(self) -> float:
        """Time spent in the handler itself."""
        return self.end_ns - self.start_ns


def serialize_handlers(
    arrivals: np.ndarray, durations: np.ndarray, assume_sorted: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Compute actual handling windows for arrival-sorted interrupts.

    ``start[i] = max(arrival[i], end[i-1])`` and ``end[i] = start[i] +
    duration[i]``, computed without a Python loop via the identity
    ``end[i] = cumsum(d)[i] + max_{j<=i}(arrival[j] - cumsum(d)[j-1])``.

    ``assume_sorted`` skips the sortedness validation for callers whose
    arrivals are sorted by construction (``merge_batches`` output).
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    durations = np.asarray(durations, dtype=np.float64)
    if len(arrivals) == 0:
        return arrivals.copy(), arrivals.copy()
    if not assume_sorted and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrivals must be sorted")
    cum = np.cumsum(durations)
    offset = np.maximum.accumulate(arrivals - (cum - durations))
    ends = cum + offset
    starts = ends - durations
    return starts, ends


class GapTimeline:
    """Merged execution gaps on one core, with fast stolen-time queries."""

    def __init__(self, gap_starts: np.ndarray, gap_ends: np.ndarray):
        gap_starts = np.asarray(gap_starts, dtype=np.float64)
        gap_ends = np.asarray(gap_ends, dtype=np.float64)
        if gap_starts.shape != gap_ends.shape:
            raise ValueError("gap starts/ends must align")
        if len(gap_starts):
            if np.any(gap_ends < gap_starts):
                raise ValueError("gaps must have non-negative length")
            if np.any(gap_starts[1:] < gap_ends[:-1]):
                raise ValueError("gaps must be disjoint and sorted")
        self.gap_starts = gap_starts
        self.gap_ends = gap_ends
        durations = gap_ends - gap_starts
        # _cum_before[i] = total gap time in gaps 0..i-1.
        self._cum_before = np.concatenate([[0.0], np.cumsum(durations)])

    def __len__(self) -> int:
        return len(self.gap_starts)

    @classmethod
    def empty(cls) -> "GapTimeline":
        return cls(np.empty(0), np.empty(0))

    @classmethod
    def _trusted(cls, gap_starts: np.ndarray, gap_ends: np.ndarray) -> "GapTimeline":
        """Construct without validation.

        For internal callers (``CoreTimeline._merge_gaps``) whose gaps are
        sorted, disjoint and non-negative by construction.
        """
        self = cls.__new__(cls)
        self.gap_starts = gap_starts
        self.gap_ends = gap_ends
        self._cum_before = np.concatenate([[0.0], np.cumsum(gap_ends - gap_starts)])
        return self

    @property
    def total_stolen_ns(self) -> float:
        """Total execution time stolen by all gaps."""
        return float(self._cum_before[-1])

    def durations(self) -> np.ndarray:
        """Lengths of all gaps, in arrival order."""
        return self.gap_ends - self.gap_starts

    def stolen_before(self, t: np.ndarray | float) -> np.ndarray | float:
        """Cumulative gap time in ``[0, t)``; vectorized over ``t``."""
        t_arr = np.asarray(t, dtype=np.float64)
        idx = np.searchsorted(self.gap_ends, t_arr, side="left")
        base = self._cum_before[idx]
        starts = self.gap_starts[np.minimum(idx, max(len(self) - 1, 0))] if len(self) else t_arr
        if len(self):
            partial = np.where(idx < len(self), np.clip(t_arr - starts, 0.0, None), 0.0)
        else:
            partial = np.zeros_like(t_arr)
        result = base + partial
        return float(result) if np.isscalar(t) else result

    def stolen_between(self, t0: float, t1: float) -> float:
        """Gap time stolen within ``[t0, t1)``."""
        if t1 < t0:
            raise ValueError(f"interval is reversed: [{t0}, {t1})")
        return float(self.stolen_before(t1) - self.stolen_before(t0))

    def executed_between(self, t0: float, t1: float) -> float:
        """User-space execution time available within ``[t0, t1)``."""
        return (t1 - t0) - self.stolen_between(t0, t1)

    def gap_index_at(self, t: float) -> int:
        """Index of the gap containing ``t``, or -1 if the core is free."""
        idx = int(np.searchsorted(self.gap_ends, t, side="right"))
        if idx < len(self) and self.gap_starts[idx] <= t < self.gap_ends[idx]:
            return idx
        return -1

    def next_execution_time(self, t: float) -> float:
        """Earliest instant >= ``t`` at which user code is running."""
        idx = self.gap_index_at(t)
        return float(self.gap_ends[idx]) if idx >= 0 else float(t)

    def gaps_overlapping(self, t0: float, t1: float) -> np.ndarray:
        """Indices of gaps intersecting ``[t0, t1)``."""
        lo = int(np.searchsorted(self.gap_ends, t0, side="right"))
        hi = int(np.searchsorted(self.gap_starts, t1, side="left"))
        return np.arange(lo, hi)


class CoreTimeline:
    """Full interrupt history of one core: records plus merged gaps."""

    def __init__(
        self,
        times: np.ndarray,
        durations: np.ndarray,
        type_codes: np.ndarray,
        cause_codes: np.ndarray,
        cause_names: list[str],
        merge_epsilon_ns: float = GAP_MERGE_EPSILON_NS,
        arrivals_sorted: bool = False,
    ):
        self.arrivals = np.asarray(times, dtype=np.float64)
        self.handler_durations = np.asarray(durations, dtype=np.float64)
        self.type_codes = np.asarray(type_codes, dtype=np.int64)
        self.cause_codes = np.asarray(cause_codes, dtype=np.int64)
        self.cause_names = list(cause_names)
        self.starts, self.ends = serialize_handlers(
            self.arrivals, self.handler_durations, assume_sorted=arrivals_sorted
        )
        self._merge_epsilon = float(merge_epsilon_ns)
        self.record_gap_index, self.gaps = self._merge_gaps()

    @classmethod
    def from_batches(cls, batches: list[InterruptBatch], **kwargs) -> "CoreTimeline":
        """Build a timeline from per-type interrupt batches."""
        times, durations, type_codes, cause_codes, cause_names = merge_batches(batches)
        return cls(
            times,
            durations,
            type_codes,
            cause_codes,
            cause_names,
            arrivals_sorted=True,
            **kwargs,
        )

    def _merge_gaps(self) -> tuple[np.ndarray, GapTimeline]:
        n = len(self.starts)
        if n == 0:
            return np.empty(0, dtype=np.int64), GapTimeline.empty()
        # A record opens a new gap when it starts strictly after the
        # previous record's end plus the observability epsilon.
        new_gap = np.empty(n, dtype=bool)
        new_gap[0] = True
        new_gap[1:] = self.starts[1:] > self.ends[:-1] + self._merge_epsilon
        gap_index = np.cumsum(new_gap) - 1
        first_in_gap = np.flatnonzero(new_gap)
        gap_starts = self.starts[first_in_gap]
        # Gap end = max end within the gap; ends are nondecreasing within a
        # serialized gap, so the last record's end is the gap end.  The last
        # record of gap g is the record before gap g+1's first record.
        gap_ends = self.ends[np.append(first_in_gap[1:] - 1, n - 1)]
        return gap_index, GapTimeline._trusted(gap_starts, gap_ends)

    def __len__(self) -> int:
        return len(self.arrivals)

    def itypes(self) -> list[InterruptType]:
        """Interrupt types of each record, in order."""
        all_types = list(InterruptType)
        return [all_types[int(c)] for c in self.type_codes]

    def records(self) -> list[InterruptRecord]:
        """Materialize per-record objects (tracer/report path only)."""
        all_types = list(InterruptType)
        return [
            InterruptRecord(
                arrival_ns=float(self.arrivals[i]),
                start_ns=float(self.starts[i]),
                end_ns=float(self.ends[i]),
                itype=all_types[int(self.type_codes[i])],
                cause=self.cause_names[int(self.cause_codes[i])],
            )
            for i in range(len(self))
        ]

    def records_in_gap(self, gap_idx: int) -> np.ndarray:
        """Indices of records merged into gap ``gap_idx``."""
        return np.flatnonzero(self.record_gap_index == gap_idx)
