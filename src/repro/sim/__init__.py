"""Discrete-event machine simulator: cores, interrupts, routing, DVFS, VMs."""

from repro.sim.events import MS, SEC, US, Event, EventQueue, SimulationClock
from repro.sim.frequency import FrequencyConfig, FrequencyTrace, IterationRateModel, TurboGovernor
from repro.sim.interrupts import (
    DEFAULT_LATENCIES,
    MOVABLE_TYPES,
    NON_MOVABLE_TYPES,
    PIGGYBACK_TYPES,
    HandlerLatencyModel,
    InterruptBatch,
    InterruptType,
    LatencySpec,
    is_movable,
)
from repro.sim.machine import InterruptSynthesizer, MachineConfig, MachineRun
from repro.sim.routing import (
    AffinitySourceRouting,
    PinnedRouting,
    RoutingPolicy,
    SoftirqPlacement,
    SpreadRouting,
)
from repro.sim.scheduler import SchedulerConfig
from repro.sim.timeline import CoreTimeline, GapTimeline, InterruptRecord, serialize_handlers
from repro.sim.vm import BARE_METAL, SEPARATE_VMS, VmConfig

__all__ = [
    "MS", "SEC", "US", "Event", "EventQueue", "SimulationClock",
    "FrequencyConfig", "FrequencyTrace", "IterationRateModel", "TurboGovernor",
    "DEFAULT_LATENCIES", "MOVABLE_TYPES", "NON_MOVABLE_TYPES", "PIGGYBACK_TYPES",
    "HandlerLatencyModel", "InterruptBatch", "InterruptType", "LatencySpec",
    "is_movable", "InterruptSynthesizer", "MachineConfig", "MachineRun",
    "AffinitySourceRouting", "PinnedRouting", "RoutingPolicy",
    "SoftirqPlacement", "SpreadRouting", "SchedulerConfig", "CoreTimeline",
    "GapTimeline", "InterruptRecord", "serialize_handlers", "BARE_METAL",
    "SEPARATE_VMS", "VmConfig",
]
