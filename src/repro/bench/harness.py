"""The measurement loop behind ``biggerfish bench``.

Timing discipline:

* every scenario gets ``warmup`` untimed repetitions (JIT-less Python
  still benefits: allocator warmup, import side effects, CPU governor
  ramp), then ``repeat`` timed ones recording wall and CPU seconds;
* timed repetitions run with profiling **off** — recorded numbers
  exclude observability overhead, matching EXPERIMENTS.md's convention;
* one extra *untimed* repetition runs with :mod:`repro.obs` enabled
  into a throwaway spool, and its counter values and per-span-name
  aggregates are attached to the record's ``obs`` block.  That is what
  ties a slow number back to *what* got slower (events processed,
  span breakdown) without contaminating the measurement.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro import obs
from repro.bench.results import BenchReport, ScenarioRecord
from repro.bench.scenarios import Scenario, get_scenario, list_scenarios

#: Default repetition counts (CLI flags override).
DEFAULT_WARMUP = 1
DEFAULT_REPEAT = 5


@dataclass(frozen=True)
class BenchConfig:
    """Knobs for one bench invocation."""

    warmup: int = DEFAULT_WARMUP
    repeat: int = DEFAULT_REPEAT
    seed: int = 0
    #: Skip the instrumented extra repetition (faster, loses ``obs``).
    instrument: bool = True

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {self.repeat}")
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")


def run_scenario(scenario: Scenario, config: BenchConfig) -> ScenarioRecord:
    """Measure one scenario: warmups, timed repeats, obs snapshot."""
    work = scenario.setup(config.seed)
    for _ in range(config.warmup):
        work()
    wall: list[float] = []
    cpu: list[float] = []
    meta: dict = {}
    for _ in range(config.repeat):
        t0 = time.perf_counter()
        c0 = time.process_time()
        meta = work() or {}
        cpu.append(time.process_time() - c0)
        wall.append(time.perf_counter() - t0)
    snapshot = _instrumented_snapshot(work) if config.instrument else {}
    return ScenarioRecord(
        name=scenario.name,
        description=scenario.description,
        scale=scenario.scale,
        seed=config.seed,
        warmup=config.warmup,
        repeat=config.repeat,
        wall_s=wall,
        cpu_s=cpu,
        meta=meta,
        obs=snapshot,
    )


def _instrumented_snapshot(work) -> Dict[str, dict]:
    """One extra untimed repetition under obs, reduced to counters+spans.

    Skipped (returning ``{}``) when profiling is already active — the
    harness must not tear down an outer ``--profile`` session.
    """
    if obs.enabled():
        return {}
    from repro.obs.export import merge_spool, summarize

    with tempfile.TemporaryDirectory(prefix="biggerfish-bench-obs-") as spool:
        obs.enable(spool)
        try:
            work()
            obs.flush_metrics()
            profile = merge_spool(spool)
        finally:
            obs.disable()
    summary = summarize(profile, top_n=3)
    spans = {
        name: {"count": entry["count"], "wall_s": entry["wall_s"]}
        for name, entry in summary["spans"].items()
    }
    return {"counters": profile.metrics.get("counters", {}), "spans": spans}


def run_bench(
    names: Optional[Iterable[str]] = None,
    config: Optional[BenchConfig] = None,
    label: str = "run",
    progress=None,
) -> BenchReport:
    """Run the named scenarios (default: all) into a :class:`BenchReport`.

    ``progress`` is an optional ``callable(str)`` used by the CLI to
    narrate long runs; pass ``print`` for immediate feedback.
    """
    config = config or BenchConfig()
    wanted = list(names) if names else list_scenarios()
    records: Dict[str, ScenarioRecord] = {}
    for name in wanted:
        scenario = get_scenario(name)
        if progress is not None:
            progress(f"bench: {name} ({scenario.description})")
        record = run_scenario(scenario, config)
        if progress is not None:
            progress(
                f"bench: {name} best {record.best_s * 1e3:.1f} ms, "
                f"median {record.median_s * 1e3:.1f} ms over {config.repeat} run(s)"
            )
        records[name] = record
    return BenchReport(label=label, scenarios=records)
