"""Performance-regression harness: ``biggerfish bench``.

The ROADMAP's north star is a system that runs as fast as the hardware
allows; this package is how the repo *knows* whether that is still true.
It runs named, seeded benchmark scenarios (trace synthesis, feature
extraction, an end-to-end Table 1 smoke), records wall/CPU time plus
:mod:`repro.obs` span and counter snapshots as schema-versioned JSON
under ``benchmarks/results/``, and compares runs against a recorded
baseline with a noise-aware threshold so CI can flag perf regressions
before they merge:

* :mod:`repro.bench.scenarios` — the scenario registry.  Every scenario
  is a pure function of its seed, so two runs on the same machine do
  the same work and their times are comparable;
* :mod:`repro.bench.harness`  — warmup/repeat measurement loop, plus
  one extra *untimed* instrumented repetition that captures obs
  counters and span aggregates (timed reps always run with profiling
  off, matching the repo's convention that recorded numbers exclude
  observability overhead);
* :mod:`repro.bench.results`  — ``bench_<label>.json`` reading/writing
  with an explicit schema version and hard validation errors;
* :mod:`repro.bench.compare`  — baseline comparison.  A scenario
  regresses when its best time exceeds the baseline's by more than
  ``max(--threshold, noise_factor x observed CV)``, so noisy scenarios
  get a proportionally wider band instead of flapping;
* :mod:`repro.bench.cli`      — the ``biggerfish bench`` command
  (``python -m repro.bench`` works too).

The first optimization this harness certified is the vectorized
:class:`~repro.sim.machine.InterruptSynthesizer` (see
``benchmarks/results/bench_prevec.json`` vs ``bench_postvec.json``).
"""

from repro.bench.compare import ComparisonReport, ScenarioComparison, compare_reports
from repro.bench.harness import BenchConfig, run_bench
from repro.bench.results import (
    SCHEMA_VERSION,
    BenchFormatError,
    BenchReport,
    ScenarioRecord,
)
from repro.bench.scenarios import SCENARIOS, Scenario, get_scenario, list_scenarios

__all__ = [
    "SCENARIOS",
    "SCHEMA_VERSION",
    "BenchConfig",
    "BenchFormatError",
    "BenchReport",
    "ComparisonReport",
    "Scenario",
    "ScenarioComparison",
    "ScenarioRecord",
    "compare_reports",
    "get_scenario",
    "list_scenarios",
    "run_bench",
]
