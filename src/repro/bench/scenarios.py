"""Named, seeded benchmark scenarios.

A scenario is a pure function of its seed: ``setup(seed)`` does every
piece of untimed preparation (site profiles, pre-generated timelines,
synthetic datasets) and returns a zero-argument ``work()`` callable that
the harness times.  ``work()`` returns a small dict of facts about the
work it did (event counts, dataset shapes) which lands in the result
JSON's ``meta`` block — a cheap sanity check that two runs being
compared really did the same thing.

The default registry covers the layers the ROADMAP cares about:

* ``sim.synthesize``   — the interrupt-synthesis hot path (the component
  PR 5 vectorized), at the ``custom`` scale: four 12-second nytimes.com
  loads per repetition;
* ``ml.features``      — feature extraction + standardization for the
  fast classifier backend;
* ``e2e.table1_smoke`` — the Chrome/Linux cell of Table 1 end to end
  (collect → features → cross-validated accuracy) at a tiny scale,
  serial and cache-less so the measurement is pure compute;
* ``serve.latency``    — closed-loop wall latency (p50/p99) of the
  micro-batching :class:`~repro.serve.server.FingerprintServer` under
  concurrent clients hammering a warm feature-backend artifact;
* ``data.stream``      — warm streaming read throughput of a sharded
  :mod:`repro.data` store (memory-mapped batches) against loading the
  same rows from a monolithic compressed ``.npz``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.config import DEFAULT, Scale

#: The scale label recorded for the synthesis scenario (a DEFAULT
#: variant with longer traces, mirroring `generate_experiments.py`'s
#: naming for overridden scales).
CUSTOM_SCALE: Scale = DEFAULT.with_(name="custom", trace_seconds=12.0)

#: Tiny end-to-end scale: small enough for CI, big enough to exercise
#: collection, feature extraction and cross-validation together.
E2E_SCALE: Scale = Scale(
    name="bench-tiny",
    n_sites=4,
    traces_per_site=4,
    trace_seconds=2.0,
    period_ms=10.0,
    n_folds=2,
    backend="feature",
    open_world_sites=10,
)

#: Loads synthesized per repetition of ``sim.synthesize``.
_SYNTH_LOADS = 4

#: Closed-loop shape of the ``serve.latency`` scenario: this many
#: concurrent clients, each sending this many back-to-back requests.
_SERVE_CLIENTS = 8
_SERVE_REQUESTS = 24

#: Shape of the ``data.stream`` scenario's synthetic store.
_STREAM_SHARDS = 16
_STREAM_ROWS_PER_SHARD = 64
_STREAM_BATCH = 128


@dataclass(frozen=True)
class Scenario:
    """One named benchmark: untimed ``setup(seed)`` -> timed ``work()``."""

    name: str
    description: str
    scale: str
    setup: Callable[[int], Callable[[], dict]]


SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"duplicate scenario name {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def list_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(list_scenarios())
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


# ----------------------------------------------------------------------
# scenario implementations


def _setup_synthesize(seed: int) -> Callable[[], dict]:
    from repro.sim.events import SEC
    from repro.sim.machine import InterruptSynthesizer, MachineConfig
    from repro.workload.website import profile_for

    site = profile_for("nytimes.com")
    synthesizer = InterruptSynthesizer(MachineConfig())
    horizon_ns = int(CUSTOM_SCALE.trace_seconds * SEC)
    gen_rng = np.random.default_rng([seed, 0xB1F])
    timelines = [
        site.generate_load(gen_rng, horizon_ns) for _ in range(_SYNTH_LOADS)
    ]

    def work() -> dict:
        events = 0
        for index, timeline in enumerate(timelines):
            run = synthesizer.synthesize(
                timeline,
                style=site.style,
                rng=np.random.default_rng([seed, 0x5EED, index]),
            )
            events += sum(len(core.arrivals) for core in run.cores)
        return {"loads": len(timelines), "events": events}

    return work


def _setup_features(seed: int) -> Callable[[], dict]:
    from repro.ml.features import FeatureExtractor, Standardizer

    rng = np.random.default_rng([seed, 0xFEA7])
    x = rng.normal(loc=25_000.0, scale=1_500.0, size=(96, 1_500))
    extractor = FeatureExtractor()

    def work() -> dict:
        features = extractor.transform(x)
        Standardizer().fit_transform(features)
        return {"traces": x.shape[0], "features": features.shape[1]}

    return work


def _setup_table1_smoke(seed: int) -> Callable[[], dict]:
    from repro.core.pipeline import FingerprintingPipeline
    from repro.sim.machine import MachineConfig
    from repro.workload.browser import CHROME

    def work() -> dict:
        # The pipeline owns a collector seeded from `seed`; rebuild it
        # per repetition so repeated measurements stay independent and
        # cache-less (no engine, no TraceCache attached).
        pipeline = FingerprintingPipeline(
            MachineConfig(), CHROME, scale=E2E_SCALE, seed=seed
        )
        result = pipeline.run_closed_world()
        return {
            "sites": E2E_SCALE.n_sites,
            "traces_per_site": E2E_SCALE.traces_per_site,
            "top1_pct": round(100.0 * result.top1.mean, 2),
        }

    return work


register(
    Scenario(
        name="sim.synthesize",
        description=(
            f"InterruptSynthesizer.synthesize over {_SYNTH_LOADS} x "
            f"{CUSTOM_SCALE.trace_seconds:g}s nytimes.com loads"
        ),
        scale=CUSTOM_SCALE.name,
        setup=_setup_synthesize,
    )
)
register(
    Scenario(
        name="ml.features",
        description="FeatureExtractor.transform + Standardizer on 96x1500 traces",
        scale="n/a",
        setup=_setup_features,
    )
)
def _setup_serve_latency(seed: int) -> Callable[[], dict]:
    import tempfile

    from repro.ml.models import FeatureFingerprinter
    from repro.serve.loadgen import run_load
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import FingerprintServer

    n_classes, per_class, length = 8, 12, 1_500
    rng = np.random.default_rng([seed, 0x5EC7])
    # Synthetic classes: distinct per-class temporal profiles on top of
    # the paper's counter band, cheap to train but non-trivial to serve.
    profiles = rng.normal(0.0, 400.0, size=(n_classes, length))
    x = np.concatenate(
        [
            25_000.0 + profiles[c] + rng.normal(0.0, 300.0, size=(per_class, length))
            for c in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), per_class)
    model = FeatureFingerprinter(seed=seed, epochs=60).fit(x, y, n_classes)
    artifact_dir = tempfile.mkdtemp(prefix="biggerfish-serve-bench-")
    model.save(artifact_dir, classes=[f"site{c:02d}" for c in range(n_classes)])
    registry = ModelRegistry()
    registry.add("bench", artifact_dir)
    registry.get("bench")  # warm the LRU so work() measures serving only
    vectors = [x[i] for i in range(0, len(x), 3)]

    def work() -> dict:
        with FingerprintServer(
            registry, max_batch=16, max_wait_ms=1.0, max_queue=512
        ) as server:
            report = run_load(
                server,
                vectors,
                clients=_SERVE_CLIENTS,
                requests_per_client=_SERVE_REQUESTS,
                seed=seed,
            )
        return {
            "clients": _SERVE_CLIENTS,
            "requests": report.n_requests,
            "ok": report.n_ok,
            "p50_ms": round(report.p50_ms, 3),
            "p99_ms": round(report.p99_ms, 3),
            "mean_batch": round(report.mean_batch, 2),
        }

    return work


def _setup_data_stream(seed: int) -> Callable[[], dict]:
    import tempfile
    import time
    from pathlib import Path

    from repro.data.format import write_shard
    from repro.data.manifest import DatasetConfig, DatasetManifest, ShardEntry
    from repro.data.reader import ShardedDataset

    n_shards, rows_per_shard, length = _STREAM_SHARDS, _STREAM_ROWS_PER_SHARD, 1_500
    rng = np.random.default_rng([seed, 0xDA7A])
    store_dir = Path(tempfile.mkdtemp(prefix="biggerfish-data-bench-"))
    config = DatasetConfig(n_sites=n_shards, traces_per_site=rows_per_shard)
    manifest = DatasetManifest(
        config=config, trace_length=length, repro_version="bench", status="building"
    )
    parts = []
    for index in range(n_shards):
        # Counter-band traces with per-shard structure; float64 noise, so
        # the monolithic comparison pays a realistic decompression cost.
        x = 25_000.0 + rng.normal(0.0, 1_500.0, size=(rows_per_shard, length))
        labels = [f"site{index:02d}" for _ in range(rows_per_shard)]
        name = f"shard-{index:04d}.npz"
        info = write_shard(store_dir / name, x, labels, {"bench": True})
        manifest.shards.append(
            ShardEntry(
                name=name,
                sha256=info.sha256,
                n_rows=info.n_rows,
                n_bytes=info.n_bytes,
                site_start=index,
                site_stop=index + 1,
            )
        )
        parts.append(x)
    manifest.status = "complete"
    manifest.save(store_dir)
    monolithic = store_dir / "monolithic.npz"
    all_x = np.concatenate(parts)
    np.savez_compressed(monolithic, x=all_x)
    store = ShardedDataset(store_dir)
    # Warm both paths: page cache for the shards, so work() measures
    # steady-state read throughput, not first-touch disk latency.
    for batch, _ in store.stream_batches(_STREAM_BATCH, seed=seed):
        batch.sum()
    np.load(monolithic)["x"].sum()

    def work() -> dict:
        started = time.perf_counter()
        rows = 0
        checksum = 0.0
        for batch, _ in store.stream_batches(_STREAM_BATCH, seed=seed):
            rows += len(batch)
            checksum += float(batch[:, 0].sum())
        stream_s = time.perf_counter() - started
        started = time.perf_counter()
        loaded = np.load(monolithic)["x"]
        checksum += float(loaded[:, 0].sum())
        monolithic_s = time.perf_counter() - started
        return {
            "rows": rows,
            "trace_length": length,
            "shards": n_shards,
            "stream_ms": round(stream_s * 1e3, 3),
            "monolithic_ms": round(monolithic_s * 1e3, 3),
            "speedup": round(monolithic_s / stream_s, 2) if stream_s > 0 else 0.0,
        }

    return work


register(
    Scenario(
        name="e2e.table1_smoke",
        description=(
            "Table 1's Chrome/Linux cell end to end (collect + features + "
            "2-fold CV) at a tiny scale, serial, cache-less"
        ),
        scale=E2E_SCALE.name,
        setup=_setup_table1_smoke,
    )
)
register(
    Scenario(
        name="serve.latency",
        description=(
            f"FingerprintServer closed-loop wall latency: {_SERVE_CLIENTS} "
            f"clients x {_SERVE_REQUESTS} requests against a warm feature "
            "model (micro-batch 16, 1 ms window); meta records p50/p99"
        ),
        scale="n/a",
        setup=_setup_serve_latency,
    )
)
register(
    Scenario(
        name="data.stream",
        description=(
            f"warm mmap streaming read of a {_STREAM_SHARDS}-shard store "
            f"({_STREAM_SHARDS * _STREAM_ROWS_PER_SHARD}x1500) vs loading "
            "the same rows from one compressed .npz; meta records both"
        ),
        scale="n/a",
        setup=_setup_data_stream,
    )
)
