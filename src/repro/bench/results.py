"""Schema-versioned benchmark result files.

A bench run serializes to ``bench_<label>.json``: one
:class:`BenchReport` holding per-scenario :class:`ScenarioRecord`\\ s
(raw wall/CPU samples, never pre-aggregated — the comparison layer
decides what statistic to trust) plus enough host context to tell when
two files must not be compared across machines.

``SCHEMA_VERSION`` gates the file format: :func:`BenchReport.load`
raises :class:`BenchFormatError` — with the offending path and what was
found — on anything that is not a current-schema bench file, so a stale
baseline fails loudly instead of producing a nonsense comparison.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import platform
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional

#: Bump on any incompatible change to the JSON layout below.
SCHEMA_VERSION = 1

#: File-name prefix shared by every result file (CI globs on this).
FILENAME_PREFIX = "bench_"


class BenchFormatError(ValueError):
    """A bench JSON file is malformed, truncated or from another schema."""


def _require(condition: bool, path: os.PathLike, message: str) -> None:
    if not condition:
        raise BenchFormatError(f"{path}: {message}")


@dataclass
class ScenarioRecord:
    """Measured samples for one scenario in one bench run."""

    name: str
    description: str
    scale: str
    seed: int
    warmup: int
    repeat: int
    #: Raw per-repetition samples, in seconds, in execution order.
    wall_s: List[float]
    cpu_s: List[float]
    #: Scenario-reported facts about the work done (event counts, sizes).
    meta: Dict[str, object] = field(default_factory=dict)
    #: Obs counter values and per-span aggregates from the instrumented
    #: (untimed) repetition; empty when instrumentation was skipped.
    obs: Dict[str, dict] = field(default_factory=dict)

    @property
    def best_s(self) -> float:
        """Fastest repetition — the standard microbenchmark statistic."""
        return min(self.wall_s)

    @property
    def mean_s(self) -> float:
        return sum(self.wall_s) / len(self.wall_s)

    @property
    def median_s(self) -> float:
        ordered = sorted(self.wall_s)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    @property
    def cv(self) -> float:
        """Coefficient of variation of the wall-time samples."""
        if len(self.wall_s) < 2:
            return 0.0
        mean = self.mean_s
        if mean <= 0:
            return 0.0
        var = sum((t - mean) ** 2 for t in self.wall_s) / (len(self.wall_s) - 1)
        return math.sqrt(var) / mean

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "scale": self.scale,
            "seed": self.seed,
            "warmup": self.warmup,
            "repeat": self.repeat,
            "wall_s": [round(t, 6) for t in self.wall_s],
            "cpu_s": [round(t, 6) for t in self.cpu_s],
            "meta": self.meta,
            "obs": self.obs,
        }

    @classmethod
    def from_dict(cls, data: dict, path: os.PathLike) -> "ScenarioRecord":
        _require(isinstance(data, dict), path, "scenario entry is not an object")
        for key in ("name", "wall_s", "cpu_s"):
            _require(key in data, path, f"scenario entry missing {key!r}")
        wall = data["wall_s"]
        _require(
            isinstance(wall, list)
            and len(wall) > 0
            and all(isinstance(t, (int, float)) and t >= 0 for t in wall),
            path,
            f"scenario {data.get('name')!r} has no usable wall_s samples",
        )
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            scale=str(data.get("scale", "")),
            seed=int(data.get("seed", 0)),
            warmup=int(data.get("warmup", 0)),
            repeat=int(data.get("repeat", len(wall))),
            wall_s=[float(t) for t in wall],
            cpu_s=[float(t) for t in data["cpu_s"]],
            meta=dict(data.get("meta", {})),
            obs=dict(data.get("obs", {})),
        )


def host_fingerprint() -> Dict[str, object]:
    """Enough host context to flag cross-machine comparisons."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


@dataclass
class BenchReport:
    """One complete bench run: every scenario, plus provenance."""

    label: str
    scenarios: Dict[str, ScenarioRecord]
    host: Dict[str, object] = field(default_factory=host_fingerprint)
    created: str = ""
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.created:
            self.created = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "label": self.label,
            "created": self.created,
            "host": self.host,
            "scenarios": {
                name: record.as_dict() for name, record in sorted(self.scenarios.items())
            },
        }

    def write(self, out_dir: os.PathLike) -> pathlib.Path:
        """Write ``bench_<label>.json`` under ``out_dir`` and return the path."""
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{FILENAME_PREFIX}{self.label}.json"
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: os.PathLike) -> "BenchReport":
        """Read and validate a bench JSON file.

        Raises :class:`BenchFormatError` on missing files, non-JSON
        content, wrong schema versions and structurally broken records —
        always naming the path and the problem.
        """
        path = pathlib.Path(path)
        try:
            raw = path.read_text()
        except OSError as error:
            raise BenchFormatError(f"{path}: cannot read baseline ({error})") from error
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            raise BenchFormatError(f"{path}: not valid JSON ({error})") from error
        _require(isinstance(data, dict), path, "top level is not a JSON object")
        schema = data.get("schema")
        _require(
            schema == SCHEMA_VERSION,
            path,
            f"schema version {schema!r} is not the supported {SCHEMA_VERSION} "
            "(re-record the baseline with this version of biggerfish bench)",
        )
        raw_scenarios = data.get("scenarios")
        _require(
            isinstance(raw_scenarios, dict) and raw_scenarios,
            path,
            "no scenarios recorded",
        )
        scenarios = {
            name: ScenarioRecord.from_dict(entry, path)
            for name, entry in raw_scenarios.items()
        }
        return cls(
            label=str(data.get("label", path.stem)),
            scenarios=scenarios,
            host=dict(data.get("host", {})),
            created=str(data.get("created", "")),
            schema=int(schema),
        )


def default_results_dir(start: Optional[os.PathLike] = None) -> pathlib.Path:
    """``benchmarks/results`` under the repo containing ``start`` (or cwd).

    Falls back to ``<cwd>/benchmarks/results`` when no checkout root is
    found, so ``biggerfish bench --out`` stays optional outside the repo.
    """
    here = pathlib.Path(start) if start is not None else pathlib.Path.cwd()
    for candidate in (here, *here.parents):
        marker = candidate / "benchmarks" / "results"
        if marker.is_dir():
            return marker
    return here / "benchmarks" / "results"
