"""The ``biggerfish bench`` command.

Usage::

    biggerfish bench                        # run all scenarios, print times
    biggerfish bench --list                 # names + descriptions
    biggerfish bench sim.synthesize --repeat 7 --warmup 2
    biggerfish bench --out benchmarks/results --label main
    biggerfish bench --compare benchmarks/results/bench_main.json
    biggerfish bench --compare OLD.json --against NEW.json   # no run

Exit codes: 0 on success, 1 when ``--compare`` finds a regression or a
scenario missing from the candidate, 2 on usage/format errors (unknown
scenario, malformed or old-schema baseline JSON).

Also runnable as ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import compare as bench_compare
from repro.bench import harness
from repro.bench.results import BenchFormatError, BenchReport, default_results_dir
from repro.bench.scenarios import SCENARIOS, list_scenarios


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="biggerfish bench",
        description=(
            "Run seeded performance scenarios, record schema-versioned "
            "bench_*.json results, and gate on regressions vs a baseline."
        ),
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names (default: all; see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument(
        "--warmup", type=int, default=harness.DEFAULT_WARMUP,
        help="untimed repetitions per scenario before measuring",
    )
    parser.add_argument(
        "--repeat", type=int, default=harness.DEFAULT_REPEAT,
        help="timed repetitions per scenario",
    )
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--label", default="run",
        help="result label; the file is written as bench_<label>.json",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write bench_<label>.json here (default with --save: "
        "benchmarks/results under the repo)",
    )
    parser.add_argument(
        "--save", action="store_true",
        help="write the result JSON even without an explicit --out",
    )
    parser.add_argument(
        "--no-obs", action="store_true",
        help="skip the instrumented (untimed) repetition that records "
        "obs counters and span aggregates",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="bench_*.json to compare against; exit 1 on regression",
    )
    parser.add_argument(
        "--against", default=None, metavar="CANDIDATE",
        help="with --compare: load the candidate from this file instead "
        "of running scenarios",
    )
    parser.add_argument(
        "--threshold", type=float, default=bench_compare.DEFAULT_THRESHOLD,
        metavar="FRACTION",
        help="relative slowdown tolerated before a scenario regresses "
        "(e.g. 0.10 = 10%%); widened automatically for noisy scenarios",
    )
    parser.add_argument(
        "--noise-factor", type=float, default=bench_compare.DEFAULT_NOISE_FACTOR,
        help="multiplier on the observed coefficient of variation used "
        "to widen --threshold for noisy scenarios",
    )
    return parser


def _list_command() -> int:
    for name in list_scenarios():
        scenario = SCENARIOS[name]
        print(f"{name:20s} [{scenario.scale}] {scenario.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        return _list_command()
    unknown = [name for name in args.scenarios if name not in SCENARIOS]
    if unknown:
        print(
            f"biggerfish bench: unknown scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(list_scenarios())})",
            file=sys.stderr,
        )
        return 2
    if args.against and not args.compare:
        print("biggerfish bench: --against requires --compare", file=sys.stderr)
        return 2

    try:
        config = harness.BenchConfig(
            warmup=args.warmup,
            repeat=args.repeat,
            seed=args.seed,
            instrument=not args.no_obs,
        )
    except ValueError as error:
        print(f"biggerfish bench: {error}", file=sys.stderr)
        return 2

    try:
        if args.against:
            candidate = BenchReport.load(args.against)
        else:
            candidate = harness.run_bench(
                args.scenarios or None, config, label=args.label, progress=print
            )
    except BenchFormatError as error:
        print(f"biggerfish bench: {error}", file=sys.stderr)
        return 2

    if not args.against and (args.out or args.save):
        out_dir = args.out or default_results_dir()
        path = candidate.write(out_dir)
        print(f"bench: wrote {path}")

    if not args.compare:
        if args.against is None and not (args.out or args.save):
            for name, record in sorted(candidate.scenarios.items()):
                print(
                    f"{name:20s} best {record.best_s:8.4f}s  "
                    f"median {record.median_s:8.4f}s  cv {record.cv * 100:4.1f}%"
                )
        return 0

    try:
        baseline = BenchReport.load(args.compare)
        report = bench_compare.compare_reports(
            baseline,
            candidate,
            threshold=args.threshold,
            noise_factor=args.noise_factor,
        )
    except (BenchFormatError, ValueError) as error:
        print(f"biggerfish bench: {error}", file=sys.stderr)
        return 2
    print(report.format_table())
    if baseline.host and candidate.host and baseline.host != candidate.host:
        print(
            "bench: note — baseline and candidate were recorded on "
            "different hosts; absolute comparisons are indicative only",
        )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
