"""Baseline comparison with a noise-aware regression threshold.

The comparison statistic is each scenario's *best* (minimum) wall time:
for CPU-bound deterministic work the minimum is the least-noisy estimate
of the true cost — everything above it is scheduler and cache-state
noise.  A scenario **regresses** when

    candidate_best > baseline_best * (1 + effective_threshold)

where ``effective_threshold = max(threshold, noise_factor * cv)`` and
``cv`` is the larger coefficient of variation of the two runs: scenarios
that measure noisily earn a proportionally wider band instead of
flapping CI.  A candidate exactly *at* the threshold passes — the bound
is strict.

Scenario-set drift is reported explicitly: a scenario present in the
baseline but absent from the candidate is a failure (coverage loss, or a
typo in ``--scenarios``); a scenario new in the candidate is informational.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench.results import BenchReport, ScenarioRecord

#: Relative slowdown tolerated before a scenario counts as regressed.
DEFAULT_THRESHOLD = 0.10
#: Multiplier widening the band for noisy scenarios.
DEFAULT_NOISE_FACTOR = 3.0


@dataclass(frozen=True)
class ScenarioComparison:
    """Verdict for one scenario name across two reports."""

    name: str
    status: str  # "ok" | "faster" | "regressed" | "added" | "missing"
    ratio: float = 1.0
    baseline_best_s: float = 0.0
    candidate_best_s: float = 0.0
    threshold: float = 0.0

    def describe(self) -> str:
        if self.status == "added":
            return f"{self.name}: added (no baseline entry; {self.candidate_best_s:.4f}s)"
        if self.status == "missing":
            return f"{self.name}: MISSING from candidate (baseline {self.baseline_best_s:.4f}s)"
        arrow = {
            "ok": "~",
            "faster": "improved",
            "regressed": "REGRESSED",
        }[self.status]
        return (
            f"{self.name}: {arrow} {self.baseline_best_s:.4f}s -> "
            f"{self.candidate_best_s:.4f}s (x{self.ratio:.2f}, "
            f"threshold +{self.threshold * 100:.0f}%)"
        )


@dataclass
class ComparisonReport:
    """All per-scenario verdicts plus the overall pass/fail."""

    rows: List[ScenarioComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[ScenarioComparison]:
        return [r for r in self.rows if r.status == "regressed"]

    @property
    def missing(self) -> List[ScenarioComparison]:
        return [r for r in self.rows if r.status == "missing"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def format_table(self) -> str:
        lines = [row.describe() for row in self.rows]
        verdict = "PASS" if self.ok else (
            f"FAIL ({len(self.regressions)} regression(s), "
            f"{len(self.missing)} missing scenario(s))"
        )
        lines.append(f"bench compare: {verdict}")
        return "\n".join(lines)


def _effective_threshold(
    baseline: ScenarioRecord,
    candidate: ScenarioRecord,
    threshold: float,
    noise_factor: float,
) -> float:
    return max(threshold, noise_factor * max(baseline.cv, candidate.cv))


def compare_reports(
    baseline: BenchReport,
    candidate: BenchReport,
    threshold: float = DEFAULT_THRESHOLD,
    noise_factor: float = DEFAULT_NOISE_FACTOR,
) -> ComparisonReport:
    """Compare two bench reports scenario by scenario."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if noise_factor < 0:
        raise ValueError(f"noise_factor must be >= 0, got {noise_factor}")
    rows: List[ScenarioComparison] = []
    names = sorted(set(baseline.scenarios) | set(candidate.scenarios))
    for name in names:
        base = baseline.scenarios.get(name)
        cand = candidate.scenarios.get(name)
        if base is None:
            rows.append(
                ScenarioComparison(
                    name=name, status="added", candidate_best_s=cand.best_s
                )
            )
            continue
        if cand is None:
            rows.append(
                ScenarioComparison(
                    name=name, status="missing", baseline_best_s=base.best_s
                )
            )
            continue
        effective = _effective_threshold(base, cand, threshold, noise_factor)
        ratio = cand.best_s / base.best_s if base.best_s > 0 else float("inf")
        if ratio > 1.0 + effective:
            status = "regressed"
        elif ratio < 1.0 - effective:
            status = "faster"
        else:
            status = "ok"
        rows.append(
            ScenarioComparison(
                name=name,
                status=status,
                ratio=ratio,
                baseline_best_s=base.best_s,
                candidate_best_s=cand.best_s,
                threshold=effective,
            )
        )
    return ComparisonReport(rows=rows)


def speedup_summary(
    baseline: BenchReport, candidate: BenchReport
) -> Dict[str, float]:
    """``{scenario: baseline_best / candidate_best}`` for shared scenarios."""
    out: Dict[str, float] = {}
    for name in sorted(set(baseline.scenarios) & set(candidate.scenarios)):
        cand_best = candidate.scenarios[name].best_s
        if cand_best > 0:
            out[name] = baseline.scenarios[name].best_s / cand_best
    return out
