"""Structural comparison for differential-oracle outputs.

Oracle callables return plain structures — nested dicts / lists /
tuples whose leaves are numpy arrays, numbers, strings, booleans or
``None``.  :func:`diff_structures` walks a reference and an optimized
structure in lockstep and returns a human-readable description of the
*first* divergence (with its path, e.g. ``$.cores[1].arrivals``), or
``None`` when the structures agree under the requested mode.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

#: Leaves treated as scalars (compared by value, never recursed into).
_SCALAR_TYPES = (str, bytes, bool, int, float, complex, type(None))


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
        value, bool
    )


def _format_value(value: Any) -> str:
    if isinstance(value, np.ndarray):
        return f"ndarray(shape={value.shape}, dtype={value.dtype})"
    text = repr(value)
    return text if len(text) <= 80 else text[:77] + "..."


def _first_array_mismatch(a: np.ndarray, b: np.ndarray, close: np.ndarray) -> str:
    bad = np.flatnonzero(~np.ravel(close))
    index = int(bad[0])
    where = np.unravel_index(index, a.shape) if a.ndim > 1 else index
    return (
        f"first mismatch at element {where}: "
        f"{a.ravel()[index]!r} vs {b.ravel()[index]!r} "
        f"({len(bad)} of {a.size} elements differ)"
    )


def _diff_arrays(
    a: np.ndarray, b: np.ndarray, mode: str, rtol: float, atol: float, path: str
) -> Optional[str]:
    if a.shape != b.shape:
        return f"{path}: array shapes differ: {a.shape} vs {b.shape}"
    if a.dtype.kind != b.dtype.kind:
        return f"{path}: array dtype kinds differ: {a.dtype} vs {b.dtype}"
    if a.size == 0:
        return None
    if a.dtype.kind in "fc":
        if mode == "bit":
            close = (a == b) | (np.isnan(a) & np.isnan(b))
        else:
            close = np.isclose(a, b, rtol=rtol, atol=atol, equal_nan=True)
    else:
        close = a == b
    if bool(np.all(close)):
        return None
    return f"{path}: {_first_array_mismatch(a, b, np.asarray(close))}"


def diff_structures(
    reference: Any,
    optimized: Any,
    mode: str = "bit",
    rtol: float = 1e-9,
    atol: float = 0.0,
    path: str = "$",
) -> Optional[str]:
    """First divergence between two structures, or ``None`` if equal.

    ``mode`` is ``"bit"`` (exact equality; NaNs compare equal to NaNs)
    or ``"allclose"`` (floats within ``rtol``/``atol``).  Containers
    must match in type-shape exactly under either mode.
    """
    a, b = reference, optimized
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return (
                f"{path}: types differ: {type(a).__name__} vs {type(b).__name__}"
            )
        return _diff_arrays(a, b, mode, rtol, atol, path)
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            only_a = sorted(set(a) - set(b))
            only_b = sorted(set(b) - set(a))
            return (
                f"{path}: dict keys differ "
                f"(only in reference: {only_a}, only in optimized: {only_b})"
            )
        for key in sorted(a, key=repr):
            found = diff_structures(
                a[key], b[key], mode=mode, rtol=rtol, atol=atol,
                path=f"{path}.{key}",
            )
            if found:
                return found
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: lengths differ: {len(a)} vs {len(b)}"
        for i, (item_a, item_b) in enumerate(zip(a, b)):
            found = diff_structures(
                item_a, item_b, mode=mode, rtol=rtol, atol=atol,
                path=f"{path}[{i}]",
            )
            if found:
                return found
        return None
    if _is_number(a) and _is_number(b):
        a_f, b_f = float(a), float(b)
        if math.isnan(a_f) and math.isnan(b_f):
            return None
        if mode == "bit":
            equal = a_f == b_f
        else:
            equal = math.isclose(a_f, b_f, rel_tol=rtol, abs_tol=atol)
        if not equal:
            return f"{path}: numbers differ: {a!r} vs {b!r}"
        return None
    if type(a) is not type(b):
        return f"{path}: types differ: {type(a).__name__} vs {type(b).__name__}"
    if isinstance(a, _SCALAR_TYPES):
        if a != b:
            return f"{path}: values differ: {_format_value(a)} vs {_format_value(b)}"
        return None
    return f"{path}: unsupported leaf type {type(a).__name__} in oracle output"


__all__ = ["diff_structures"]
