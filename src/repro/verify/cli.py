"""``biggerfish verify`` — sweep the differential oracles.

Usage::

    biggerfish verify --seeds 25
    biggerfish verify --oracles sim.synthesize,timers.crossing --seeds 5
    biggerfish verify --seed-list 3,17 --sites 1 --traces 1 --shrink
    biggerfish verify --list
    biggerfish verify --seeds 25 --jobs 4 --json verify_report.json

Exit status: 0 when every oracle passes every case, 1 on any failure,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import List, Optional

from repro.verify.driver import VerifyReport, make_cases, sweep
from repro.verify.oracle import ORACLES, list_oracles
from repro.verify.shrink import shrink, shrink_report

#: Same worker-count knob as the experiment runner.
JOBS_ENV_VAR = "BIGGERFISH_JOBS"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="biggerfish verify",
        description=(
            "Run every optimized path against its reference implementation "
            "over a sweep of seeded cases."
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=10,
        metavar="N",
        help="sweep seeds 0..N-1 (default: 10)",
    )
    parser.add_argument(
        "--seed-list",
        default=None,
        metavar="S0,S1,...",
        help="explicit comma-separated seeds (overrides --seeds)",
    )
    parser.add_argument(
        "--oracles",
        default=None,
        metavar="NAME,...",
        help="comma-separated oracle names (default: all registered)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered oracles and exit"
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="minimize the first failing case of each failing oracle",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the JSON report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=f"worker processes (default: ${JOBS_ENV_VAR} or 1)",
    )
    parser.add_argument(
        "--sites", type=int, default=2, help="sites per case (default: 2)"
    )
    parser.add_argument(
        "--traces", type=int, default=2, help="traces per site (default: 2)"
    )
    parser.add_argument(
        "--horizon-ms",
        type=float,
        default=400.0,
        help="simulated horizon per trace in ms (default: 400)",
    )
    return parser


def _parse_seeds(args: argparse.Namespace, parser: argparse.ArgumentParser) -> List[int]:
    if args.seed_list is not None:
        try:
            seeds = [int(part) for part in args.seed_list.split(",") if part.strip()]
        except ValueError:
            parser.error(f"--seed-list must be comma-separated integers, got {args.seed_list!r}")
        if not seeds:
            parser.error("--seed-list is empty")
        return seeds
    if args.seeds < 1:
        parser.error(f"--seeds must be positive, got {args.seeds}")
    return list(range(args.seeds))


def _resolve_jobs(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.jobs is not None:
        jobs = args.jobs
    else:
        raw = os.environ.get(JOBS_ENV_VAR, "1")
        try:
            jobs = int(raw)
        except ValueError:
            parser.error(f"${JOBS_ENV_VAR} must be an integer, got {raw!r}")
    if jobs < 1:
        parser.error(f"--jobs must be positive, got {jobs}")
    return jobs


def _print_oracle_list() -> None:
    import repro.verify.oracles  # noqa: F401 - registration side effect

    width = max(len(name) for name in list_oracles())
    for name in list_oracles():
        oracle = ORACLES[name]
        print(f"{name:<{width}}  [{oracle.mode:>9}]  {oracle.description}")


def _print_report(report: VerifyReport) -> None:
    for name in sorted(report.oracles):
        oracle_report = report.oracles[name]
        status = "PASS" if oracle_report.ok else "FAIL"
        print(f"{status}  {name}  ({len(oracle_report.results)} cases)")
        counterexample = oracle_report.counterexample
        if counterexample is not None:
            print(f"      case: {counterexample.case.describe()}")
            print(f"      {counterexample.failure}")
    verdict = "all oracles agree" if report.ok else (
        f"{report.n_failures} of {report.n_cases} cases failed"
    )
    print(f"verify: {verdict} in {report.elapsed_s:.1f}s")


def _write_json(report_dict: dict, destination: str) -> None:
    text = json.dumps(report_dict, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        pathlib.Path(destination).write_text(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        _print_oracle_list()
        return 0

    seeds = _parse_seeds(args, parser)
    jobs = _resolve_jobs(args, parser)
    oracle_names = None
    if args.oracles is not None:
        oracle_names = [part.strip() for part in args.oracles.split(",") if part.strip()]
        if not oracle_names:
            parser.error("--oracles is empty")

    try:
        cases = make_cases(
            seeds, sites=args.sites, traces=args.traces, horizon_ms=args.horizon_ms
        )
    except ValueError as exc:
        parser.error(str(exc))
    try:
        report = sweep(cases, oracles=oracle_names, jobs=jobs)
    except KeyError as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))

    _print_report(report)

    report_dict = report.as_dict()
    if not report.ok and args.shrink:
        shrunk = []
        for name in sorted(report.oracles):
            counterexample = report.oracles[name].counterexample
            if counterexample is None:
                continue
            result = shrink(name, counterexample.case)
            print(shrink_report(result))
            shrunk.append(result.as_dict())
        report_dict["shrunk"] = shrunk

    if args.json:
        _write_json(report_dict, args.json)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
