"""``python -m repro.verify`` — differential-oracle sweep entry point."""

import sys

from repro.verify.cli import main

sys.exit(main())
