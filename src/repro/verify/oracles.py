"""Built-in differential oracles.

Every optimized path the repo has accumulated is paired here with its
reference semantics over seeded :class:`~repro.verify.oracle.Case`
inputs:

====================== ========== =================================================
oracle                 mode       certifies
====================== ========== =================================================
``sim.synthesize``     bit        vectorized interrupt synthesis == retained
                                  scalar reference (``sim/interrupts_ref.py``)
``engine.parallel``    bit        2-worker engine collection == serial collection
``engine.trace_cache`` bit        a cache round-trip returns the stored trace
``serve.batched``      bit        micro-batched server probs == direct
                                  ``predict_proba`` over the same vectors
``ml.artifact``        bit        save→load→predict == in-memory predict
``sim.gap_timeline``   invariant  serialization identity, trusted-vs-validated
                                  gap construction, stolen-time query algebra
``timers.crossing``    invariant  monotone reads + first_crossing contract for
                                  quantized / jittered / randomized timers
``data.roundtrip``     bit        sharded store build -> streaming read-back ==
                                  the same collection held in memory
====================== ========== =================================================

All callables derive every RNG stream from the case alone, so a failing
``(oracle, case)`` pair reproduces from its one-line repro command.
"""

from __future__ import annotations

import dataclasses
import tempfile
from typing import List, Optional

import numpy as np

from repro.core.collector import TraceCollector
from repro.engine.cache import TraceCache, cache_key
from repro.engine.engine import ExecutionEngine
from repro.ml.artifact import load_artifact
from repro.ml.models import FeatureFingerprinter
from repro.sim.events import MS
from repro.sim.interrupts_ref import ReferenceInterruptSynthesizer
from repro.sim.machine import InterruptSynthesizer, MachineConfig
from repro.sim.timeline import GapTimeline
from repro.timers.spec import CHROME_TIMER, FIREFOX_TIMER, RANDOMIZED_DEFENSE_TIMER
from repro.verify.oracle import Case, Oracle, register
from repro.workload.browser import CHROME
from repro.workload.catalog import closed_world

#: Fixed shape of the synthetic serving/ml dataset (kept small: every
#: case retrains a model from scratch).
_ML_CLASSES = 4
_ML_DIM = 64
_ML_TRAIN_PER_CLASS = 6
_ML_EPOCHS = 12


def _horizon_ns(case: Case) -> int:
    return int(case.horizon_ms * MS)


def _case_sites(case: Case):
    return closed_world(case.sites)


def _case_browser(case: Case):
    return dataclasses.replace(CHROME, trace_seconds=case.horizon_ms / 1000.0)


# ----------------------------------------------------------------------
# sim.synthesize — vectorized synthesizer vs retained scalar reference
# ----------------------------------------------------------------------


def _core_struct(core) -> dict:
    return {
        "arrivals": core.arrivals,
        "durations": core.handler_durations,
        "type_codes": core.type_codes,
        "cause_codes": core.cause_codes,
        "cause_names": list(core.cause_names),
        "starts": core.starts,
        "ends": core.ends,
        "record_gap_index": core.record_gap_index,
        "gap_starts": core.gaps.gap_starts,
        "gap_ends": core.gaps.gap_ends,
    }


def _run_struct(run) -> dict:
    return {
        "cores": [_core_struct(core) for core in run.cores],
        "frequency_boundaries": run.frequency.boundaries_ns,
        "frequency_ghz": run.frequency.ghz,
        "occupancy_times": run.occupancy_times,
        "occupancy_victim": run.occupancy_victim,
        "occupancy_ambient": run.occupancy_ambient,
    }


def _synthesize_with(case: Case, synthesizer_cls) -> List[dict]:
    config = MachineConfig()
    horizon = _horizon_ns(case)
    runs = []
    for site in _case_sites(case):
        timeline = site.generate_load(
            np.random.default_rng(case.seed * 7_919 + site.seed), horizon
        )
        run = synthesizer_cls(config).synthesize(
            timeline,
            style=site.style,
            rng=np.random.default_rng(case.seed * 1_000_003 + site.seed),
        )
        runs.append(_run_struct(run))
    return runs


def _synthesize_reference(case: Case) -> List[dict]:
    return _synthesize_with(case, ReferenceInterruptSynthesizer)


def _synthesize_optimized(case: Case) -> List[dict]:
    return _synthesize_with(case, InterruptSynthesizer)


# ----------------------------------------------------------------------
# engine.parallel — parallel engine collection vs serial collection
# ----------------------------------------------------------------------


def _trace_struct(trace) -> dict:
    return {
        "observed_starts": trace.observed_starts,
        "counters": trace.counters,
        "label": trace.label,
        "attacker": trace.attacker,
        "horizon_ns": float(trace.spec.horizon_ns),
        "period_ns": float(trace.spec.period_ns),
    }


def _collect_traces(case: Case, jobs: int) -> List[dict]:
    engine = ExecutionEngine(jobs=jobs) if jobs > 1 else None
    collector = TraceCollector(
        MachineConfig(),
        _case_browser(case),
        seed=case.seed,
        engine=engine,
        cache=None,
    )
    batch = collector.collect(_case_sites(case), case.traces)
    return [_trace_struct(trace) for trace in batch]


def _collect_serial(case: Case) -> List[dict]:
    return _collect_traces(case, jobs=1)


def _collect_parallel(case: Case) -> List[dict]:
    return _collect_traces(case, jobs=2)


# ----------------------------------------------------------------------
# engine.trace_cache — cache hit vs the trace that was stored
# ----------------------------------------------------------------------


def _collect_one_trace(case: Case):
    collector = TraceCollector(
        MachineConfig(), _case_browser(case), seed=case.seed, cache=None
    )
    return collector.collect(_case_sites(case)[:1], 1)[0]


def _cache_reference(case: Case) -> dict:
    return _trace_struct(_collect_one_trace(case))


def _cache_optimized(case: Case) -> dict:
    trace = _collect_one_trace(case)
    with tempfile.TemporaryDirectory(prefix="biggerfish-verify-") as tmp:
        cache = TraceCache(tmp, max_bytes=1 << 30)
        key = cache_key({"verify": "trace_cache", "case": case.as_dict()})
        cache.put(key, trace)
        loaded = cache.get(key)
    if loaded is None:
        raise RuntimeError("trace cache lost a freshly-written entry")
    return _trace_struct(loaded)


# ----------------------------------------------------------------------
# serve.batched / ml.artifact — model paths
# ----------------------------------------------------------------------


def _ml_dataset(case: Case):
    """Seeded synthetic (train, eval) matrices with class structure."""
    rng = np.random.default_rng(case.seed * 104_729 + 17)
    profiles = rng.normal(0.0, 0.3, size=(_ML_CLASSES, _ML_DIM))
    x_train = np.concatenate(
        [
            1.0 + profiles[c] + rng.normal(0.0, 0.05, size=(_ML_TRAIN_PER_CLASS, _ML_DIM))
            for c in range(_ML_CLASSES)
        ]
    )
    y_train = np.repeat(np.arange(_ML_CLASSES), _ML_TRAIN_PER_CLASS)
    n_eval = max(2 * case.traces, 4)
    eval_classes = rng.integers(0, _ML_CLASSES, size=n_eval)
    x_eval = 1.0 + profiles[eval_classes] + rng.normal(
        0.0, 0.05, size=(n_eval, _ML_DIM)
    )
    return x_train, y_train, x_eval


def _ml_model(case: Case):
    x_train, y_train, _ = _ml_dataset(case)
    model = FeatureFingerprinter(seed=case.seed & 0x7FFFFFFF, epochs=_ML_EPOCHS)
    return model.fit(x_train, y_train, _ML_CLASSES)


def _serve_direct(case: Case) -> dict:
    _, _, x_eval = _ml_dataset(case)
    model = _ml_model(case)
    return {"probs": model.predict_proba(x_eval)}


def _serve_batched(case: Case) -> dict:
    from repro.serve.registry import ModelRegistry
    from repro.serve.server import FingerprintServer

    _, _, x_eval = _ml_dataset(case)
    model = _ml_model(case)
    classes = [f"site{i}.example" for i in range(_ML_CLASSES)]
    with tempfile.TemporaryDirectory(prefix="biggerfish-verify-") as tmp:
        artifact = f"{tmp}/model"
        model.save(artifact, classes=classes, provenance={"verify": case.as_dict()})
        registry = ModelRegistry()
        registry.add("default", artifact)
        # One batch for everything: batched == direct bit-identity holds
        # per predict_proba call, so the oracle forces a single call.
        with FingerprintServer(
            registry, max_batch=len(x_eval), max_wait_ms=100.0
        ) as server:
            results = server.predict_many(list(x_eval))
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(f"serve oracle request failed: {failed[0].error}")
    return {"probs": np.stack([r.probs for r in results])}


def _artifact_memory(case: Case) -> dict:
    _, _, x_eval = _ml_dataset(case)
    return {"probs": _ml_model(case).predict_proba(x_eval)}


def _artifact_roundtrip(case: Case) -> dict:
    _, _, x_eval = _ml_dataset(case)
    model = _ml_model(case)
    classes = [f"site{i}.example" for i in range(_ML_CLASSES)]
    with tempfile.TemporaryDirectory(prefix="biggerfish-verify-") as tmp:
        artifact = f"{tmp}/model"
        model.save(artifact, classes=classes, provenance={"verify": case.as_dict()})
        loaded = load_artifact(artifact)
        probs = loaded.predict_proba(x_eval)
    return {"probs": probs}


# ----------------------------------------------------------------------
# sim.gap_timeline — merge/query invariants
# ----------------------------------------------------------------------


def _check_gap_timeline(case: Case) -> Optional[str]:
    site = _case_sites(case)[0]
    horizon = _horizon_ns(case)
    timeline = site.generate_load(
        np.random.default_rng(case.seed * 7_919 + site.seed), horizon
    )
    run = InterruptSynthesizer(MachineConfig()).synthesize(
        timeline,
        style=site.style,
        rng=np.random.default_rng(case.seed * 1_000_003 + site.seed),
    )
    core = run.attacker_timeline
    if len(core) == 0:
        return "attacker core timeline is empty; nothing to verify"

    # 1. Serialization identity: the vectorized cumsum form must match a
    #    scalar recurrence (allclose — the float op order differs).
    starts_ref = np.empty(len(core))
    ends_ref = np.empty(len(core))
    prev_end = -np.inf
    for i in range(len(core)):
        start = max(core.arrivals[i], prev_end)
        prev_end = start + core.handler_durations[i]
        starts_ref[i] = start
        ends_ref[i] = prev_end
    if not np.allclose(core.starts, starts_ref, rtol=1e-9, atol=1e-3):
        worst = int(np.argmax(np.abs(core.starts - starts_ref)))
        return (
            f"serialize_handlers diverges from scalar recurrence at record "
            f"{worst}: {core.starts[worst]} vs {starts_ref[worst]}"
        )
    if not np.allclose(core.ends, ends_ref, rtol=1e-9, atol=1e-3):
        return "serialize_handlers end times diverge from scalar recurrence"

    # 2. Trusted construction == validated construction.
    gaps = core.gaps
    validated = GapTimeline(gaps.gap_starts, gaps.gap_ends)  # raises if malformed
    if not np.array_equal(validated._cum_before, gaps._cum_before):
        return "trusted GapTimeline prefix sums differ from validated construction"

    # 3. stolen_before: nondecreasing, bounded, and equal to a brute-force
    #    overlap sum on a deterministic probe grid.
    grid = np.linspace(0.0, float(horizon), 257)
    stolen = gaps.stolen_before(grid)
    if np.any(np.diff(stolen) < -1e-6):
        return "stolen_before is not monotone nondecreasing"
    brute = np.array(
        [
            float(
                np.sum(
                    np.clip(
                        np.minimum(gaps.gap_ends, t) - gaps.gap_starts, 0.0, None
                    )
                )
            )
            for t in grid
        ]
    )
    if not np.allclose(stolen, brute, rtol=1e-9, atol=1e-3):
        worst = int(np.argmax(np.abs(stolen - brute)))
        return (
            f"stolen_before({grid[worst]:.0f}) = {stolen[worst]} but brute-force "
            f"overlap sum is {brute[worst]}"
        )
    if stolen[-1] > gaps.total_stolen_ns + 1e-3:
        return "stolen_before(horizon) exceeds total_stolen_ns"

    # 4. Interval algebra: executed + stolen partitions every window.
    probe_rng = np.random.default_rng(case.seed + 5)
    for _ in range(16):
        t0, t1 = np.sort(probe_rng.uniform(0.0, float(horizon), 2))
        executed = gaps.executed_between(t0, t1)
        stolen_between = gaps.stolen_between(t0, t1)
        if not np.isclose(executed + stolen_between, t1 - t0, rtol=1e-9, atol=1e-3):
            return (
                f"executed_between + stolen_between != window length on "
                f"[{t0:.0f}, {t1:.0f})"
            )
        if stolen_between < -1e-6 or stolen_between > (t1 - t0) + 1e-6:
            return f"stolen_between out of [0, window] on [{t0:.0f}, {t1:.0f})"

    # 5. Gap lookup consistency on every gap midpoint.
    for idx in range(len(gaps)):
        mid = 0.5 * (gaps.gap_starts[idx] + gaps.gap_ends[idx])
        if gaps.gap_ends[idx] > gaps.gap_starts[idx]:
            if gaps.gap_index_at(mid) != idx:
                return f"gap_index_at(midpoint of gap {idx}) != {idx}"
            if gaps.next_execution_time(mid) != gaps.gap_ends[idx]:
                return f"next_execution_time inside gap {idx} is not its end"

    # 6. Record/gap partition: every record maps into exactly one gap.
    sizes = [len(core.records_in_gap(g)) for g in range(len(gaps))]
    if sum(sizes) != len(core):
        return "records_in_gap does not partition the record set"
    if np.any(np.diff(core.record_gap_index) < 0):
        return "record_gap_index is not nondecreasing"
    return None


# ----------------------------------------------------------------------
# timers.crossing — monotonicity + crossing contract
# ----------------------------------------------------------------------

_TIMER_SPECS = (
    ("jittered", CHROME_TIMER),
    ("quantized", FIREFOX_TIMER),
    ("randomized", RANDOMIZED_DEFENSE_TIMER),
)
_CROSSING_ELAPSED_NS = 5.0 * MS
_SCAN_STEP_NS = 0.05 * MS
_SCAN_LIMIT_NS = 500.0 * MS


def _check_one_timer(kind: str, spec, seed: int) -> Optional[str]:
    timer = spec.build(seed=seed)
    timer.reset()
    # Monotone reads over an increasing grid.
    last = -np.inf
    for t in np.linspace(0.0, 50.0 * MS, 201):
        value = timer.read(float(t))
        if value < last:
            return f"{kind}: read() decreased at t={t:.0f}ns"
        last = value
    # Crossing contract from t0 = 0.
    timer = spec.build(seed=seed)
    timer.reset()
    start_value = timer.read(0.0)
    crossing = timer.first_crossing(0.0, _CROSSING_ELAPSED_NS)
    if crossing < 0.0:
        return f"{kind}: first_crossing returned {crossing} < t0"
    # Read-after-crossing: intermediate queries must stay legal and the
    # walked state consistent with a timer that never peeked ahead.
    fresh = spec.build(seed=seed)
    fresh.reset()
    fresh.read(0.0)
    for t in (crossing / 2, crossing, crossing + 7.0 * MS):
        try:
            walked_value = timer.read(t)
        except ValueError as exc:
            return f"{kind}: read({t:.0f}) after first_crossing raised {exc}"
        if walked_value != fresh.read(t):
            return (
                f"{kind}: state walked by first_crossing diverges from a "
                f"fresh timer at t={t:.0f}ns"
            )
    # The crossing satisfies the elapsed contract...
    check = spec.build(seed=seed)
    check.reset()
    if check.read(crossing) - start_value < _CROSSING_ELAPSED_NS:
        return (
            f"{kind}: observed elapsed at crossing "
            f"{check.read(crossing) - start_value:.0f}ns < requested "
            f"{_CROSSING_ELAPSED_NS:.0f}ns"
        )
    # ...and is minimal up to the scan step: a brute-force walk on an
    # independent instance must not cross earlier.
    probe = spec.build(seed=seed)
    probe.reset()
    base = probe.read(0.0)
    scan = None
    for t in np.arange(0.0, _SCAN_LIMIT_NS, _SCAN_STEP_NS):
        if probe.read(float(t)) - base >= _CROSSING_ELAPSED_NS:
            scan = float(t)
            break
    if scan is None:
        return f"{kind}: brute-force scan never observed the crossing"
    if scan + 1e-6 < crossing:
        return (
            f"{kind}: first_crossing={crossing:.0f}ns but a scan observed the "
            f"crossing at {scan:.0f}ns"
        )
    if scan - crossing > _SCAN_STEP_NS + 1e-6:
        return (
            f"{kind}: first_crossing={crossing:.0f}ns is earlier than any "
            f"observable crossing (scan found {scan:.0f}ns)"
        )
    return None


def _check_timers(case: Case) -> Optional[str]:
    for kind, spec in _TIMER_SPECS:
        failure = _check_one_timer(kind, spec, seed=case.seed)
        if failure:
            return failure
    return None


# ----------------------------------------------------------------------
# data.roundtrip — sharded store build + streaming read vs memory
# ----------------------------------------------------------------------


def _data_config(case: Case):
    from repro.data.manifest import DatasetConfig

    return DatasetConfig(
        n_sites=case.sites,
        traces_per_site=case.traces,
        trace_seconds=case.horizon_ms / 1000.0,
        seed=case.seed,
    )


def _data_memory(case: Case) -> dict:
    """The collection the store should hold, straight from the collector."""
    from repro.data.writer import collector_for, config_sites

    config = _data_config(case)
    collector = collector_for(config)
    x, labels = collector.collect(
        config_sites(config), config.traces_per_site
    ).stacked()
    return {"x": x, "labels": list(labels)}


def _data_streamed(case: Case) -> dict:
    """Build a maximally-sharded store, stream it back, restore row order.

    ``shard_sites=1`` forces one shard per site so the round trip crosses
    as many shard boundaries as the case allows; reading goes through the
    seeded streaming iterator (odd batch size, so partial batches are
    exercised) and the permutation is inverted afterwards — certifying
    the writer, the mmap reader, the batch gather and the global row
    order in one comparison.
    """
    from repro.data.reader import ShardedDataset
    from repro.data.writer import build_dataset

    config = _data_config(case)
    with tempfile.TemporaryDirectory(prefix="biggerfish-verify-") as tmp:
        store_dir = f"{tmp}/store"
        build_dataset(store_dir, config, shard_sites=1)
        store = ShardedDataset(store_dir)
        x = np.empty((store.n_rows, store.trace_length))
        labels = np.empty(store.n_rows, dtype=store.labels.dtype)
        order = store.stream_order(case.seed)
        cursor = 0
        for batch_x, batch_labels in store.stream_batches(3, seed=case.seed):
            rows = order[cursor : cursor + len(batch_x)]
            x[rows] = batch_x
            labels[rows] = batch_labels
            cursor += len(batch_x)
    if cursor != store.n_rows:
        raise RuntimeError(f"streamed {cursor} of {store.n_rows} rows")
    return {"x": x, "labels": [str(label) for label in labels]}


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------

register(
    Oracle(
        name="sim.synthesize",
        description=(
            "vectorized InterruptSynthesizer vs the retained scalar "
            "reference (sim/interrupts_ref.py), every core array bit-identical"
        ),
        mode="bit",
        reference=_synthesize_reference,
        optimized=_synthesize_optimized,
    )
)

register(
    Oracle(
        name="engine.parallel",
        description=(
            "TraceCollector.collect through a 2-worker ExecutionEngine vs "
            "the same collection run serially"
        ),
        mode="bit",
        reference=_collect_serial,
        optimized=_collect_parallel,
    )
)

register(
    Oracle(
        name="engine.trace_cache",
        description="a TraceCache put/get round-trip vs the trace it stored",
        mode="bit",
        reference=_cache_reference,
        optimized=_cache_optimized,
    )
)

register(
    Oracle(
        name="serve.batched",
        description=(
            "FingerprintServer micro-batched probabilities vs direct "
            "predict_proba over the same vectors in one call"
        ),
        mode="bit",
        reference=_serve_direct,
        optimized=_serve_batched,
    )
)

register(
    Oracle(
        name="ml.artifact",
        description="model save -> load -> predict vs in-memory predict",
        mode="bit",
        reference=_artifact_memory,
        optimized=_artifact_roundtrip,
    )
)

register(
    Oracle(
        name="sim.gap_timeline",
        description=(
            "GapTimeline construction and stolen-time query algebra on a "
            "synthesized attacker core"
        ),
        mode="invariant",
        check=_check_gap_timeline,
    )
)

register(
    Oracle(
        name="data.roundtrip",
        description=(
            "sharded store build -> seeded streaming read-back vs the same "
            "collection held in memory, rows and labels bit-identical"
        ),
        mode="bit",
        reference=_data_memory,
        optimized=_data_streamed,
    )
)

register(
    Oracle(
        name="timers.crossing",
        description=(
            "monotone reads and the first_crossing contract for the "
            "jittered, quantized and randomized timers"
        ),
        mode="invariant",
        check=_check_timers,
    )
)
