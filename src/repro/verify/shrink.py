"""Greedy counterexample shrinking.

Given an oracle and a failing :class:`~repro.verify.oracle.Case`, the
shrinker minimizes the case along the three workload dimensions (sites,
traces, horizon) while preserving the failure, and prints the one-line
command that reproduces the minimized case.  The seed is never changed:
a differential failure is a property of one RNG stream, and hunting for
a "smaller" seed would be a different bug, not a smaller one.

Strategy: first jump straight to the floor (most real failures are not
scale-dependent, so one probe usually finishes the job), then walk each
dimension down by halving to a fixpoint.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import obs
from repro.verify.oracle import Case, get_oracle

#: Smallest workload the shrinker will propose.
MIN_SITES = 1
MIN_TRACES = 1
MIN_HORIZON_MS = 50.0


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing (oracle, case) pair."""

    oracle: str
    original: Case
    shrunk: Case
    failure: str  # failure description at the shrunk case
    attempts: int  # oracle evaluations spent shrinking
    steps: List[str] = field(default_factory=list)

    @property
    def repro_command(self) -> str:
        return repro_command(self.oracle, self.shrunk)

    def as_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "original": self.original.as_dict(),
            "shrunk": self.shrunk.as_dict(),
            "failure": self.failure,
            "attempts": self.attempts,
            "steps": list(self.steps),
            "repro_command": self.repro_command,
        }


def repro_command(oracle: str, case: Case) -> str:
    """One-line command that replays exactly this (oracle, case) pair."""
    return (
        "PYTHONPATH=src python -m repro.verify"
        f" --oracles {oracle}"
        f" --seed-list {case.seed}"
        f" --sites {case.sites}"
        f" --traces {case.traces}"
        f" --horizon-ms {case.horizon_ms:g}"
    )


def _floor(case: Case) -> Case:
    return dataclasses.replace(
        case,
        sites=MIN_SITES,
        traces=MIN_TRACES,
        horizon_ms=min(case.horizon_ms, MIN_HORIZON_MS),
    )


def _halve_steps(case: Case) -> List[Tuple[str, Case]]:
    """Candidate one-dimension reductions of ``case``, largest first."""
    steps: List[Tuple[str, Case]] = []
    if case.horizon_ms > MIN_HORIZON_MS:
        smaller = max(case.horizon_ms / 2.0, MIN_HORIZON_MS)
        steps.append(
            (f"horizon_ms {case.horizon_ms:g} -> {smaller:g}",
             dataclasses.replace(case, horizon_ms=smaller))
        )
    if case.sites > MIN_SITES:
        smaller_sites = max(case.sites // 2, MIN_SITES)
        steps.append(
            (f"sites {case.sites} -> {smaller_sites}",
             dataclasses.replace(case, sites=smaller_sites))
        )
    if case.traces > MIN_TRACES:
        smaller_traces = max(case.traces // 2, MIN_TRACES)
        steps.append(
            (f"traces {case.traces} -> {smaller_traces}",
             dataclasses.replace(case, traces=smaller_traces))
        )
    return steps


def shrink(oracle_name: str, case: Case, max_attempts: int = 64) -> ShrinkResult:
    """Minimize a failing case while preserving its failure.

    Raises :class:`ValueError` if ``case`` does not actually fail the
    oracle (shrinking a passing case would "minimize" noise).
    """
    import repro.verify.oracles  # noqa: F401 - registration side effect

    oracle = get_oracle(oracle_name)
    failure = oracle.run_case(case)
    attempts = 1
    if failure is None:
        raise ValueError(
            f"case ({case.describe()}) passes oracle {oracle_name!r}; "
            "there is nothing to shrink"
        )

    steps: List[str] = []
    current = case
    with obs.span("verify.shrink", oracle=oracle_name, seed=int(case.seed)):
        # Phase 1: probe the floor directly.
        floor = _floor(current)
        if floor != current and attempts < max_attempts:
            floor_failure = oracle.run_case(floor)
            attempts += 1
            if floor_failure is not None:
                steps.append(f"floor probe {current.describe()} -> {floor.describe()}")
                current, failure = floor, floor_failure

        # Phase 2: halve one dimension at a time to a fixpoint.
        progressed = True
        while progressed and attempts < max_attempts:
            progressed = False
            for step_label, candidate in _halve_steps(current):
                if attempts >= max_attempts:
                    break
                candidate_failure = oracle.run_case(candidate)
                attempts += 1
                if candidate_failure is not None:
                    steps.append(step_label)
                    current, failure = candidate, candidate_failure
                    progressed = True
                    break  # re-derive candidates from the smaller case

    obs.counter("verify.shrinks").inc()
    return ShrinkResult(
        oracle=oracle_name,
        original=case,
        shrunk=current,
        failure=failure,
        attempts=attempts,
        steps=steps,
    )


def shrink_report(result: ShrinkResult) -> str:
    """Human-readable shrink summary ending in the repro command."""
    lines = [
        f"shrunk {result.oracle} counterexample in {result.attempts} attempt(s):",
        f"  {result.original.describe()}  ->  {result.shrunk.describe()}",
        f"  failure: {result.failure}",
        f"  repro: {result.repro_command}",
    ]
    return "\n".join(lines)


__all__ = [
    "MIN_HORIZON_MS",
    "MIN_SITES",
    "MIN_TRACES",
    "ShrinkResult",
    "repro_command",
    "shrink",
    "shrink_report",
]
