"""Differential-oracle verification harness.

Every optimized path in the repo — the vectorized interrupt synthesizer,
the parallel execution engine, the batched inference server, the trace
cache, the artifact round-trip — is paired with a *reference*
computation over the same seeded inputs and a comparison mode
(bit-identical / allclose / invariant).  :func:`sweep` fans seeds ×
oracles through the execution engine; :func:`shrink` minimizes a
failing case and emits a one-line repro command.

CLI: ``biggerfish verify`` or ``python -m repro.verify``; see
``docs/VERIFY.md``.
"""

from repro.verify.compare import diff_structures
from repro.verify.driver import (
    CaseResult,
    OracleReport,
    VerifyReport,
    make_cases,
    sweep,
)
from repro.verify.oracle import (
    COMPARISON_MODES,
    ORACLES,
    Case,
    Oracle,
    get_oracle,
    list_oracles,
    register,
)
from repro.verify.shrink import ShrinkResult, repro_command, shrink

__all__ = [
    "COMPARISON_MODES",
    "ORACLES",
    "Case",
    "CaseResult",
    "Oracle",
    "OracleReport",
    "ShrinkResult",
    "VerifyReport",
    "diff_structures",
    "get_oracle",
    "list_oracles",
    "make_cases",
    "register",
    "repro_command",
    "shrink",
    "sweep",
]
