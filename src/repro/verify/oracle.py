"""Differential-oracle model and registry.

An :class:`Oracle` names a *reference* computation and an *optimized*
computation over the same seeded :class:`Case` inputs, plus a comparison
mode.  Three modes exist:

* ``bit`` — outputs must be bit-identical (``np.array_equal`` on every
  array, exact equality on scalars).  The strongest claim: the
  optimization changed *how*, not *what*.
* ``allclose`` — outputs must agree within ``rtol``/``atol``.  For pairs
  whose floating-point operation *order* legitimately differs (e.g. a
  cumulative-sum identity vs a scalar recurrence).
* ``invariant`` — no reference/optimized pair; a single ``check``
  callable evaluates structural properties of one implementation and
  returns a failure description (or ``None``).

Oracles register into the process-global :data:`ORACLES` table by name.
The registry is rebuilt on import in every process, so sweep tasks can
cross process boundaries carrying only ``(oracle name, Case)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.verify.compare import diff_structures

#: Every comparison mode an oracle may declare.
COMPARISON_MODES = ("bit", "allclose", "invariant")


@dataclass(frozen=True)
class Case:
    """One seeded input configuration an oracle is evaluated on.

    The four fields are exactly the dimensions the shrinker minimizes:
    the seed picks the RNG streams, ``sites``/``traces`` scale the
    workload, and ``horizon_ms`` scales each simulated trace.
    """

    seed: int
    sites: int = 2
    traces: int = 2
    horizon_ms: float = 400.0

    def __post_init__(self) -> None:
        if self.sites < 1 or self.traces < 1:
            raise ValueError("cases need at least one site and one trace")
        if self.horizon_ms <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon_ms}")

    def describe(self) -> str:
        return (
            f"seed={self.seed} sites={self.sites} traces={self.traces} "
            f"horizon_ms={self.horizon_ms:g}"
        )

    def as_dict(self) -> dict:
        return {
            "seed": int(self.seed),
            "sites": int(self.sites),
            "traces": int(self.traces),
            "horizon_ms": float(self.horizon_ms),
        }


@dataclass(frozen=True)
class Oracle:
    """One differential (or invariant) correctness oracle."""

    name: str
    description: str
    mode: str
    reference: Optional[Callable[[Case], Any]] = None
    optimized: Optional[Callable[[Case], Any]] = None
    check: Optional[Callable[[Case], Optional[str]]] = None
    rtol: float = 1e-9
    atol: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in COMPARISON_MODES:
            raise ValueError(
                f"unknown comparison mode {self.mode!r}; pick from {COMPARISON_MODES}"
            )
        if self.mode == "invariant":
            if self.check is None or self.reference or self.optimized:
                raise ValueError(
                    f"oracle {self.name}: invariant mode takes exactly a check callable"
                )
        elif self.reference is None or self.optimized is None or self.check:
            raise ValueError(
                f"oracle {self.name}: {self.mode} mode takes reference + optimized"
            )

    def run_case(self, case: Case) -> Optional[str]:
        """Evaluate one case; ``None`` on agreement, a description on failure."""
        if self.mode == "invariant":
            return self.check(case)
        reference = self.reference(case)
        optimized = self.optimized(case)
        return diff_structures(
            reference, optimized, mode=self.mode, rtol=self.rtol, atol=self.atol
        )


#: Process-global oracle registry, keyed by oracle name.
ORACLES: Dict[str, Oracle] = {}


def register(oracle: Oracle) -> Oracle:
    """Add ``oracle`` to the registry; names must be unique."""
    if oracle.name in ORACLES:
        raise ValueError(f"oracle {oracle.name!r} is already registered")
    ORACLES[oracle.name] = oracle
    return oracle


def get_oracle(name: str) -> Oracle:
    """Look up a registered oracle, with a helpful error."""
    try:
        return ORACLES[name]
    except KeyError:
        known = ", ".join(list_oracles()) or "<none>"
        raise KeyError(f"unknown oracle {name!r}; registered: {known}") from None


def list_oracles() -> List[str]:
    """All registered oracle names, sorted."""
    return sorted(ORACLES)
