"""Seed-sweep driver: fan cases × oracles through the execution engine.

:func:`sweep` evaluates every requested oracle on every seeded case and
aggregates the outcomes into a :class:`VerifyReport`.  With ``jobs > 1``
the (oracle, case) tasks are distributed over the repo's own
:class:`~repro.engine.engine.ExecutionEngine` — tasks carry only the
oracle *name* plus the frozen :class:`~repro.verify.oracle.Case`, and the
worker process rebuilds the registry by importing
:mod:`repro.verify.oracles`, so nothing unpicklable crosses the process
boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.verify.oracle import Case, get_oracle, list_oracles


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one (oracle, case) evaluation."""

    oracle: str
    case: Case
    failure: Optional[str]  # None on agreement
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return self.failure is None

    def as_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "case": self.case.as_dict(),
            "ok": self.ok,
            "failure": self.failure,
            "elapsed_s": round(self.elapsed_s, 4),
        }


@dataclass
class OracleReport:
    """All case outcomes for one oracle."""

    name: str
    mode: str
    description: str
    results: List[CaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.ok]

    @property
    def counterexample(self) -> Optional[CaseResult]:
        """First failing case, or ``None`` when the oracle passed."""
        failures = self.failures
        return failures[0] if failures else None

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "description": self.description,
            "ok": self.ok,
            "cases": len(self.results),
            "failures": [r.as_dict() for r in self.failures],
        }


@dataclass
class VerifyReport:
    """Aggregated sweep outcome, JSON-serializable via :meth:`as_dict`."""

    oracles: Dict[str, OracleReport]
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.oracles.values())

    @property
    def n_cases(self) -> int:
        return sum(len(report.results) for report in self.oracles.values())

    @property
    def n_failures(self) -> int:
        return sum(len(report.failures) for report in self.oracles.values())

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cases": self.n_cases,
            "failures": self.n_failures,
            "elapsed_s": round(self.elapsed_s, 3),
            "oracles": {
                name: self.oracles[name].as_dict() for name in sorted(self.oracles)
            },
        }


def _run_case(task: Tuple[str, Case]) -> CaseResult:
    """Evaluate one (oracle name, case) task; the engine's unit of work.

    Module-level and name-keyed so the task pickles cleanly; importing
    the built-in oracle module (re)populates the registry in whichever
    process this lands in.
    """
    import repro.verify.oracles  # noqa: F401 - registration side effect

    name, case = task
    oracle = get_oracle(name)
    started = time.perf_counter()
    with obs.span("verify.case", oracle=name, seed=int(case.seed)):
        failure = oracle.run_case(case)
    elapsed = time.perf_counter() - started
    obs.counter("verify.cases").inc()
    if failure is not None:
        obs.counter("verify.failures").inc()
    return CaseResult(oracle=name, case=case, failure=failure, elapsed_s=elapsed)


def make_cases(
    seeds: Sequence[int],
    sites: int = 2,
    traces: int = 2,
    horizon_ms: float = 400.0,
) -> List[Case]:
    """One case per seed at a fixed workload shape."""
    return [
        Case(seed=int(seed), sites=sites, traces=traces, horizon_ms=horizon_ms)
        for seed in seeds
    ]


def sweep(
    cases: Sequence[Case],
    oracles: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> VerifyReport:
    """Run every requested oracle on every case.

    ``oracles`` defaults to the full registry.  ``jobs > 1`` distributes
    the (oracle, case) grid over an :class:`ExecutionEngine` process
    pool; the serial path stays engine-free so failures surface with
    their original tracebacks.
    """
    import repro.verify.oracles  # noqa: F401 - registration side effect

    if not cases:
        raise ValueError("sweep needs at least one case")
    names = list(oracles) if oracles is not None else list_oracles()
    resolved = {name: get_oracle(name) for name in names}  # fail fast on typos
    tasks = [(name, case) for name in names for case in cases]

    started = time.perf_counter()
    with obs.span("verify.sweep", oracles=len(names), cases=len(cases), jobs=jobs):
        if jobs > 1:
            from repro.engine.engine import ExecutionEngine

            results = ExecutionEngine(jobs=jobs).map(_run_case, tasks, stage="verify")
        else:
            results = [_run_case(task) for task in tasks]

    report = VerifyReport(
        oracles={
            name: OracleReport(
                name=name, mode=oracle.mode, description=oracle.description
            )
            for name, oracle in resolved.items()
        },
        elapsed_s=time.perf_counter() - started,
    )
    for result in results:
        report.oracles[result.oracle].results.append(result)
    obs.gauge("verify.sweep.failures").set(report.n_failures)
    return report


__all__ = [
    "CaseResult",
    "OracleReport",
    "VerifyReport",
    "make_cases",
    "sweep",
]
