"""AST-based determinism and reproducibility linter.

Every claim this reproduction makes rests on the guarantee that a
simulated trace is a pure function of ``(spec, seed)``: the engine
asserts parallel == serial bit-identity and the obs layer asserts
profiling never perturbs results, but those properties depend on coding
invariants — seeded RNG plumbing, simulated-time-only in the simulator,
order-stable iteration — that nothing used to enforce.  This package
turns them into machine-checked rules:

The analyzer runs in two phases.  Phase 1 parses *every* file under
the linted paths and builds a project-wide symbol table
(:mod:`repro.lint.project`): which classes own locks, the types of
tracked attributes, base-class links across modules, thread
entrypoints, mutable module globals.  Phase 2 then runs each rule over
each module with that :class:`~repro.lint.project.ProjectSummary` in
hand, so a rule can answer cross-module questions — "does this class
inherit a lock from a base defined in another file?" — that a
one-file-at-a-time walker structurally cannot.

* :mod:`repro.lint.walker` — file discovery, AST parsing, parent links
  and module-name resolution;
* :mod:`repro.lint.project` — phase 1: per-class/per-module summaries
  and the cross-module :class:`~repro.lint.project.ProjectSummary`;
* :mod:`repro.lint.registry` — the rule registry, rule metadata
  (family, severity) and the ``Finding`` type;
* :mod:`repro.lint.rules` — one module per rule, in two families:
  ``determinism`` (``unseeded-rng``, ``wall-clock-in-sim``,
  ``unsorted-dir-iteration``, ``set-iteration-order``,
  ``mutable-default-arg``, ``env-dependent-hash``) and
  ``concurrency`` (``unlocked-shared-write``,
  ``blocking-call-under-lock``, ``condition-wait-without-predicate``,
  ``nondaemon-unjoined-thread``, ``shared-state-into-worker``);
* :mod:`repro.lint.suppress` — inline ``# lint: disable=<rule>``
  comments and the checked-in JSON baseline for grandfathered findings;
* :mod:`repro.lint.reporters` — text, JSON and SARIF 2.1.0 output;
* :mod:`repro.lint.cli` — the ``biggerfish lint`` subcommand
  (also ``python -m repro.lint``).

The linter's own logic is stdlib-``ast`` only — no new dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.lint import rules as _rules  # noqa: F401  (rule registration)
from repro.lint.project import ProjectSummary, build_project
from repro.lint.registry import (
    Finding,
    Rule,
    all_rules,
    get_rule,
    rule_families,
    rule_ids,
)
from repro.lint.suppress import Baseline, suppressed_rules
from repro.lint.walker import SourceModule, discover, load_module

__all__ = [
    "Baseline",
    "Finding",
    "LintRun",
    "ProjectSummary",
    "Rule",
    "all_rules",
    "build_project",
    "get_rule",
    "lint_paths",
    "rule_families",
    "rule_ids",
]


@dataclass
class LintRun:
    """Outcome of one linter invocation."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def _matches(rule: Rule, requested: set[str]) -> bool:
    """A select/ignore entry matches a rule id or a whole family."""
    return rule.id in requested or rule.family in requested


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> list[Rule]:
    known = set(rule_ids()) | set(rule_families())
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(requested)
    chosen = all_rules()
    if select:
        wanted = set(select)
        chosen = [rule for rule in chosen if _matches(rule, wanted)]
    if ignore:
        unwanted = set(ignore)
        chosen = [rule for rule in chosen if not _matches(rule, unwanted)]
    return chosen


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintRun:
    """Lint ``paths`` (files or directories) and return a :class:`LintRun`.

    Phase 1 parses every discovered file and assembles the cross-module
    :class:`~repro.lint.project.ProjectSummary`; phase 2 runs the
    selected rules over each module with that summary available, so
    cross-file facts (inherited locks, imported mutable globals) are
    visible to every rule regardless of file order.

    ``select``/``ignore`` entries may be rule ids or family names
    (``determinism``, ``concurrency``).  Findings suppressed by an
    inline ``# lint: disable=<rule>`` comment or recorded in
    ``baseline`` are split out of ``findings`` so callers can still
    report them.  Raises :class:`KeyError` for an unknown rule id or
    family in ``select``/``ignore``.
    """
    chosen = _select_rules(select, ignore)
    run = LintRun()
    # Phase 1: load everything, then summarize project-wide.
    modules: list[SourceModule] = []
    for path in discover(paths):
        module = load_module(path)
        run.files_checked += 1
        if module.parse_error is not None:
            run.findings.append(module.parse_error)
            continue
        modules.append(module)
    project = build_project(modules)
    # Phase 2: rules see each module plus the whole-project summary.
    for module in modules:
        disabled = suppressed_rules(module.lines)
        for rule in chosen:
            for finding in rule.check(module, project):
                line_disabled = disabled.get(finding.line, frozenset())
                if rule.id in line_disabled or "all" in line_disabled:
                    run.suppressed.append(finding)
                elif baseline is not None and baseline.contains(finding):
                    run.baselined.append(finding)
                else:
                    run.findings.append(finding)
    run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return run
