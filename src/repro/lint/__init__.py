"""AST-based determinism and reproducibility linter.

Every claim this reproduction makes rests on the guarantee that a
simulated trace is a pure function of ``(spec, seed)``: the engine
asserts parallel == serial bit-identity and the obs layer asserts
profiling never perturbs results, but those properties depend on coding
invariants — seeded RNG plumbing, simulated-time-only in the simulator,
order-stable iteration — that nothing used to enforce.  This package
turns them into machine-checked rules:

* :mod:`repro.lint.walker` — file discovery, AST parsing, parent links
  and module-name resolution;
* :mod:`repro.lint.registry` — the rule registry and ``Finding`` type;
* :mod:`repro.lint.rules` — one module per rule (``unseeded-rng``,
  ``wall-clock-in-sim``, ``unsorted-dir-iteration``,
  ``set-iteration-order``, ``mutable-default-arg``,
  ``env-dependent-hash``);
* :mod:`repro.lint.suppress` — inline ``# lint: disable=<rule>``
  comments and the checked-in JSON baseline for grandfathered findings;
* :mod:`repro.lint.reporters` — text and JSON output;
* :mod:`repro.lint.cli` — the ``biggerfish lint`` subcommand
  (also ``python -m repro.lint``).

The linter's own logic is stdlib-``ast`` only — no new dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.lint import rules as _rules  # noqa: F401  (rule registration)
from repro.lint.registry import Finding, Rule, all_rules, get_rule, rule_ids
from repro.lint.suppress import Baseline, suppressed_rules
from repro.lint.walker import SourceModule, discover, load_module

__all__ = [
    "Baseline",
    "Finding",
    "LintRun",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "rule_ids",
]


@dataclass
class LintRun:
    """Outcome of one linter invocation."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> list[Rule]:
    known = set(rule_ids())
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(requested)
    chosen = all_rules()
    if select:
        chosen = [rule for rule in chosen if rule.id in set(select)]
    if ignore:
        chosen = [rule for rule in chosen if rule.id not in set(ignore)]
    return chosen


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintRun:
    """Lint ``paths`` (files or directories) and return a :class:`LintRun`.

    Findings suppressed by an inline ``# lint: disable=<rule>`` comment
    or recorded in ``baseline`` are split out of ``findings`` so callers
    can still report them.  Raises :class:`KeyError` for an unknown rule
    id in ``select``/``ignore``.
    """
    chosen = _select_rules(select, ignore)
    run = LintRun()
    for path in discover(paths):
        module = load_module(path)
        run.files_checked += 1
        if module.parse_error is not None:
            run.findings.append(module.parse_error)
            continue
        disabled = suppressed_rules(module.lines)
        for rule in chosen:
            for finding in rule.check(module):
                line_disabled = disabled.get(finding.line, frozenset())
                if rule.id in line_disabled or "all" in line_disabled:
                    run.suppressed.append(finding)
                elif baseline is not None and baseline.contains(finding):
                    run.baselined.append(finding)
                else:
                    run.findings.append(finding)
    run.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return run
