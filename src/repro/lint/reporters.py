"""Text, JSON and SARIF renderers for lint results.

The SARIF output targets version 2.1.0 — the interchange format GitHub
code scanning ingests, so CI can upload the report and findings appear
as PR annotations with per-rule metadata.  Inline-suppressed findings
are emitted with ``suppressions: [{"kind": "inSource"}]`` and
baselined ones with ``kind: "external"``, matching the linter's own
three-way split; only unsuppressed results gate the build.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.lint import Finding, LintRun, all_rules, get_rule
from repro.lint.registry import Rule

#: The published 2.1.0 schema URI (referenced, never fetched).
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"


def _rule_for(finding: Finding) -> Optional[Rule]:
    """Registry entry for a finding, or None for pseudo-rules.

    ``syntax-error`` findings are synthesized by the walker, not by a
    registered rule, so metadata lookups must tolerate their absence.
    """
    try:
        return get_rule(finding.rule)
    except KeyError:
        return None


def _finding_dict(finding: Finding) -> dict:
    rule = _rule_for(finding)
    payload = finding.as_dict()
    payload["severity"] = rule.severity if rule is not None else "error"
    payload["family"] = rule.family if rule is not None else "parse"
    return payload


def render_text(run: LintRun, verbose_clean: bool = True) -> str:
    """Human-readable report: one ``path:line:col: rule message`` per line."""
    lines = [finding.render() for finding in run.findings]
    tail = (
        f"found {len(run.findings)} problem(s) in {run.files_checked} file(s)"
        if run.findings
        else (f"checked {run.files_checked} file(s): clean" if verbose_clean else "")
    )
    extras = []
    if run.suppressed:
        extras.append(f"{len(run.suppressed)} suppressed inline")
    if run.baselined:
        extras.append(f"{len(run.baselined)} grandfathered by baseline")
    if extras and tail:
        tail += f" ({', '.join(extras)})"
    if tail:
        lines.append(tail)
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """Machine-readable report; round-trips through ``json.loads``."""
    payload = {
        "version": 1,
        "files_checked": run.files_checked,
        "findings": [_finding_dict(finding) for finding in run.findings],
        "suppressed": [_finding_dict(finding) for finding in run.suppressed],
        "baselined": [_finding_dict(finding) for finding in run.baselined],
        "counts": {
            "findings": len(run.findings),
            "suppressed": len(run.suppressed),
            "baselined": len(run.baselined),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(
    finding: Finding, rule_index: dict, suppression: Optional[str]
) -> dict:
    rule = _rule_for(finding)
    level = rule.severity if rule is not None else "error"
    result = {
        "ruleId": finding.rule,
        "level": level,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"biggerfishLint/v1": finding.fingerprint()},
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if suppression is not None:
        result["suppressions"] = [{"kind": suppression}]
    return result


def render_sarif(run: LintRun) -> str:
    """SARIF 2.1.0 report carrying the same findings as the JSON form."""
    from repro import __version__  # deferred: repro lazy-loads submodules

    rules = all_rules()
    rule_index = {rule.id: index for index, rule in enumerate(rules)}
    driver_rules = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": (rule.docs or rule.summary).strip()},
            "defaultConfiguration": {"level": rule.severity},
            "properties": {"family": rule.family},
        }
        for rule in rules
    ]
    results = (
        [_sarif_result(f, rule_index, None) for f in run.findings]
        + [_sarif_result(f, rule_index, "inSource") for f in run.suppressed]
        + [_sarif_result(f, rule_index, "external") for f in run.baselined]
    )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "biggerfish-lint",
                        "version": __version__,
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
