"""Text and JSON renderers for lint results."""

from __future__ import annotations

import json

from repro.lint import LintRun


def render_text(run: LintRun, verbose_clean: bool = True) -> str:
    """Human-readable report: one ``path:line:col: rule message`` per line."""
    lines = [finding.render() for finding in run.findings]
    tail = (
        f"found {len(run.findings)} problem(s) in {run.files_checked} file(s)"
        if run.findings
        else (f"checked {run.files_checked} file(s): clean" if verbose_clean else "")
    )
    extras = []
    if run.suppressed:
        extras.append(f"{len(run.suppressed)} suppressed inline")
    if run.baselined:
        extras.append(f"{len(run.baselined)} grandfathered by baseline")
    if extras and tail:
        tail += f" ({', '.join(extras)})"
    if tail:
        lines.append(tail)
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """Machine-readable report; round-trips through ``json.loads``."""
    payload = {
        "version": 1,
        "files_checked": run.files_checked,
        "findings": [finding.as_dict() for finding in run.findings],
        "suppressed": [finding.as_dict() for finding in run.suppressed],
        "baselined": [finding.as_dict() for finding in run.baselined],
        "counts": {
            "findings": len(run.findings),
            "suppressed": len(run.suppressed),
            "baselined": len(run.baselined),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
